# Convenience targets; `make check` is the full gate (see scripts/check.sh).

.PHONY: build test test-all clippy check figures bench sim service-bench durability-bench crowdscale-bench net-bench planner-bench bench-summary

# Seed count for the deterministic-simulation sweep (`make sim SEEDS=10000`).
SEEDS ?= 10000

build:
	cargo build --release

test:
	cargo test -q

test-all:
	cargo test -q --workspace

clippy:
	cargo clippy --workspace -- -D warnings

check:
	./scripts/check.sh

figures:
	cargo run --release -p oassis-bench --bin figures -- all

bench:
	cargo bench --workspace

# Long-form schedule exploration; failing seeds print a one-line repro.
sim:
	cargo run --release -p oassis-simtest --bin sim -- sweep $(SEEDS)

# Multi-query service benchmark: N=4 overlapping queries through one
# OassisService vs 4 serial runs; writes BENCH_service.json.
service-bench:
	cargo run --release -p oassis-bench --bin figures -- service

# Durability benchmark: cold OassisService::recover vs write-ahead-log
# length, with and without snapshot compaction; writes BENCH_durability.json.
durability-bench:
	cargo run --release -p oassis-bench --bin figures -- durability

# Crowd-scale benchmark: members x sessions grid with sharded dispatch and
# question waves, every cell checked against its 1-shard/1-wave reference;
# writes BENCH_crowdscale.json. Takes ~10 minutes (100k-member cells).
crowdscale-bench:
	cargo run --release -p oassis-bench --bin figures -- crowd-scale

# Wire-protocol benchmark: sessions served over TCP loopback vs the same
# sessions in-process, plus the raw Hello round-trip; writes BENCH_net.json.
net-bench:
	cargo run --release -p oassis-bench --bin figures -- net

# Query-planner benchmark: canonical vs FILTER-constrained queries, planner
# on vs off (identical answers asserted), pushdown's effect on seed
# assignments and crowd questions; writes BENCH_planner.json.
planner-bench:
	cargo run --release -p oassis-bench --bin figures -- planner

# One line per checked-in BENCH_*.json: headline numbers for quick diffing.
bench-summary:
	./scripts/bench_summary.sh
