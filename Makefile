# Convenience targets; `make check` is the full gate (see scripts/check.sh).

.PHONY: build test test-all clippy check figures bench

build:
	cargo build --release

test:
	cargo test -q

test-all:
	cargo test -q --workspace

clippy:
	cargo clippy --workspace -- -D warnings

check:
	./scripts/check.sh

figures:
	cargo run --release -p oassis-bench --bin figures -- all

bench:
	cargo bench --workspace
