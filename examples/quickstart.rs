//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 ontology, wraps the two Table 3 personal databases as
//! crowd members, executes the Figure 2 OASSIS-QL query ("popular
//! combinations of an activity at a child-friendly NYC attraction and a
//! nearby restaurant, plus other relevant advice"), and prints the concise,
//! aggregated answers — including the paper's headline result:
//! *"Go biking in Central Park and eat at Maoz Vegetarian (tip: rent the
//! bikes at the Boathouse)"*.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::store::ontology::figure1_ontology;

const QUERY: &str = r#"
    SELECT FACT-SETS
    WHERE
      $w subClassOf* Attraction.
      $x instanceOf $w.
      $x inside NYC.
      $x hasLabel "child-friendly".
      $y subClassOf* Activity.
      $z instanceOf Restaurant.
      $z nearBy $x
    SATISFYING
      $y+ doAt $x.
      [] eatAt $z.
      MORE
    WITH SUPPORT = 0.4
"#;

fn main() {
    // The general-knowledge side: the Figure 1 ontology.
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());

    // The individual-knowledge side: crowd members u1 and u2 with the
    // (virtual) personal databases of Table 3.
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
        Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
    ];

    let engine = Oassis::new(ontology);
    // Two members total: aggregate after both answered (Example 3.1
    // averages u1 and u2).
    let mut config = EngineConfig::builder().aggregator_sample(2).build();

    // The MORE clause mines extra co-occurring advice. Candidates come from
    // open-ended crowd answers: survey the members with "what else do you do
    // when ...?" prompts — u1's history volunteers renting bikes at the
    // Boathouse (Example 2.4).
    let query = engine.parse(QUERY).expect("query parses");
    config.more_domain = engine
        .discover_more_domain(&query, &mut members, &config, 200)
        .expect("survey succeeds");
    println!(
        "Crowd-suggested MORE facts: {}",
        config
            .more_domain
            .iter()
            .map(|f| vocab.fact_to_string(f))
            .collect::<Vec<_>>()
            .join("; ")
    );

    println!("Executing Ann's query against the crowd...\n{QUERY}");
    let result = engine
        .execute(QUERY, &mut members, &config)
        .expect("query executes");

    println!("Answers (most specific significant patterns):");
    for answer in &result.answers {
        let support = answer.support.map_or("?".to_owned(), |s| format!("{s:.3}"));
        let validity = if answer.valid { "" } else { "  [generalized]" };
        println!("  - {}  (support {support}){validity}", answer.rendered);
    }
    println!();
    println!(
        "Crowd effort: {} questions in total, {} distinct.",
        result.stats.total_questions, result.stats.unique_questions
    );

    // The paper's headline answer should be among the results.
    let headline = result.answers.iter().any(|a| {
        a.rendered.contains("Biking doAt Central Park")
            && a.rendered.contains("Rent Bikes doAt Boathouse")
    });
    assert!(
        headline,
        "expected the biking-plus-boathouse-tip answer to be discovered"
    );
    println!(
        "Found the paper's answer: go biking in Central Park, eat at Maoz \
              Veg. — and rent the bikes at the Boathouse."
    );
}
