//! Interactive OASSIS console — a terminal stand-in for the paper's web UI
//! (Section 6.2): type OASSIS-QL queries against the Figure 1 ontology and
//! have them evaluated by the simulated u1/u2 crowd of Table 3.
//!
//! ```text
//! cargo run --release --example interactive
//! oassis> SELECT FACT-SETS WHERE $y subClassOf* Activity
//!         SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3
//! ```
//!
//! Commands: a query (may span lines; finish with `WITH SUPPORT = θ`),
//! `:ontology` to list the ontology facts, `:quit` to exit.
//! Reads until EOF, so it is also scriptable: `echo ... | interactive`.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::store::ontology::figure1_ontology;

fn main() {
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());
    let engine = Oassis::new(ontology.clone());

    println!("OASSIS interactive console — Figure 1 ontology, crowd = u1 + u2 (Table 3).");
    println!("Finish a query with `WITH SUPPORT = <θ>`; `:ontology` lists facts; `:quit` exits.");

    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("oassis> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed == ":quit" {
            break;
        }
        if trimmed == ":ontology" {
            for t in ontology.store().iter() {
                println!("  {}", ontology.triple_to_string(t));
            }
            print!("oassis> ");
            io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // A query is complete once the WITH SUPPORT clause has a value.
        let complete = buffer.to_uppercase().contains("WITH SUPPORT")
            && buffer
                .rsplit('=')
                .next()
                .is_some_and(|tail| tail.trim().parse::<f64>().is_ok());
        if !complete {
            print!("   ...> ");
            io::stdout().flush().ok();
            continue;
        }

        let src = std::mem::take(&mut buffer);
        // Fresh members per query (answers are deterministic anyway).
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![
            Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
            Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
        ];
        let config = EngineConfig::builder().aggregator_sample(2).build();
        match engine.execute(&src, &mut members, &config) {
            Ok(result) => {
                if result.answers.is_empty() {
                    println!("No significant patterns at this threshold.");
                } else {
                    println!("Answers:");
                    for a in &result.answers {
                        let support = a.support.map_or("?".to_owned(), |s| format!("{s:.3}"));
                        let tag = if a.valid { "" } else { "  [generalized]" };
                        println!("  - {}  (support {support}){tag}", a.rendered);
                    }
                }
                println!(
                    "({} crowd questions, {} distinct)",
                    result.stats.total_questions, result.stats.unique_questions
                );
            }
            Err(e) => println!("error: {e}"),
        }
        print!("oassis> ");
        io::stdout().flush().ok();
    }
    println!("\nbye");
}
