//! Culinary preferences: mining dish-and-drink combinations, including
//! multiplicity patterns (the paper's "steak with fries and a coke").
//!
//! The culinary query asks for *sets* of dishes (`$d+`) consumed with a
//! drink; the crowd's co-occurring transactions surface multiplicity MSPs —
//! combinations of several dishes with the same drink — exactly the §6.3
//! "Multiplicities" findings.
//!
//! ```text
//! cargo run --release --example culinary_menu
//! ```

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::CrowdMember;
use oassis::datagen::{culinary_domain, generate_crowd, CrowdGenConfig};

fn main() {
    let domain = culinary_domain();
    let crowd_cfg = CrowdGenConfig {
        members: 40,
        transactions_per_member: 25,
        popular_patterns: 10,
        popularity: 0.85,
        zipf: 0.8,
        // Rich transactions: several dishes per occasion → co-occurrence.
        facts_per_transaction: 3,
        discretize: false,
        seed: 3,
    };
    let crowd = generate_crowd(&domain, &crowd_cfg);
    let mut members: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .into_iter()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();

    let engine = Oassis::new(domain.ontology.clone());
    let result = engine
        .execute(&domain.query, &mut members, &EngineConfig::default())
        .expect("query executes");

    println!("Popular dish-and-drink combinations (threshold 0.2):");
    let mut multiplicity_found = 0usize;
    for answer in &result.answers {
        let multi = !answer.assignment.is_single_valued();
        if multi {
            multiplicity_found += 1;
        }
        let tag = if multi { "  [combination]" } else { "" };
        println!("  - {}{tag}", answer.rendered);
    }
    println!(
        "\n{} answers, {} with multiplicities; {} crowd questions.",
        result.answers.len(),
        multiplicity_found,
        result.stats.total_questions
    );
    println!(
        "All MSPs valid (class-level query, as in the paper's culinary domain): {}",
        result.answers.iter().all(|a| a.valid)
    );

    // A diversified top-3 shortlist (the §8 diversified-answers extension):
    // three combinations that differ from each other, not three variants of
    // the most popular one.
    println!("\nDiversified top-3 menu suggestions:");
    for a in oassis::core::diversify_answers(&result.answers, 3) {
        println!("  - {}", a.rendered);
    }

    // Association rules derived from the already-collected answers (no new
    // crowd questions): "people who have X also have Y".
    let rules = oassis::core::mine_rules(&result.cache, 0.1, 0.6);
    println!("\nAssociation rules (support ≥ 0.1, confidence ≥ 0.6):");
    let vocab = domain.ontology.vocabulary();
    for r in rules.iter().take(5) {
        println!(
            "  {}  ⇒  {}   (conf {:.2}, supp {:.2})",
            vocab.factset_to_string(&r.antecedent),
            vocab.factset_to_string(&r.consequent),
            r.confidence,
            r.support
        );
    }
    if rules.is_empty() {
        println!("  (none at these thresholds)");
    }
}
