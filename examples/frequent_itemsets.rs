//! Frequent-itemset mining as an OASSIS-QL query — the paper's expressivity
//! claim (Section 4.1): *"to capture mining for frequent itemsets, use an
//! empty WHERE clause and `$x+ [] []` as the SATISFYING clause"*.
//!
//! We build a small market-basket vocabulary (items under a `Product`
//! taxonomy, a single `boughtIn Basket` relation), give crowd members
//! shopping histories, and run exactly that query. The discovered MSPs are
//! the maximal frequent itemsets, with the taxonomy letting the engine
//! report category-level patterns ("Dairy products") when no specific item
//! clears the threshold.
//!
//! ```text
//! cargo run --release --example frequent_itemsets
//! ```

use std::sync::Arc;

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::{CrowdMember, DbMember, MemberId, PersonalDb};
use oassis::store::Ontology;
use oassis::vocab::{Fact, FactSet};

fn main() {
    // A market-basket ontology: a small product taxonomy.
    let mut b = Ontology::builder();
    b.subclass("Dairy", "Product")
        .subclass("Milk", "Dairy")
        .subclass("Butter", "Dairy")
        .subclass("Cheese", "Dairy")
        .subclass("Bakery", "Product")
        .subclass("Bread", "Bakery")
        .subclass("Bagel", "Bakery")
        .subclass("Produce", "Product")
        .subclass("Apples", "Produce")
        .subclass("Bananas", "Produce");
    b.element("Basket");
    b.relation("boughtIn");
    let ontology = b.build().expect("market ontology");
    let vocab = Arc::new(ontology.vocabulary().clone());

    // Shoppers: each transaction is one basket.
    let baskets: [&[&str]; 3] = [
        // Shopper 0: the classic bread-and-butter buyer.
        &["Bread", "Butter", "Milk"],
        // Shopper 1 favours bread + butter, sometimes apples.
        &["Bread", "Butter", "Apples"],
        // Shopper 2 buys dairy of varying kinds with bread.
        &["Bread", "Cheese", "Milk"],
    ];
    let fact = |item: &str| {
        Fact::new(
            vocab.element(item).unwrap(),
            vocab.relation("boughtIn").unwrap(),
            vocab.element("Basket").unwrap(),
        )
    };
    let mut members: Vec<Box<dyn CrowdMember>> = baskets
        .iter()
        .enumerate()
        .map(|(i, items)| {
            // Each shopper repeats their basket with small variations.
            let mut db = PersonalDb::new();
            for t in 0..6u64 {
                let mut facts: Vec<Fact> = items.iter().map(|s| fact(s)).collect();
                if t % 3 == 0 {
                    facts.push(fact("Bananas"));
                }
                db.push(oassis::crowd::Transaction::new(
                    t,
                    FactSet::from_facts(facts),
                ));
            }
            Box::new(DbMember::new(MemberId(i as u32), db, Arc::clone(&vocab)))
                as Box<dyn CrowdMember>
        })
        .collect();

    // The paper's reduction: empty WHERE, `$x+ [] []` SATISFYING.
    // (Our relation domain has one relation, so `[]` in relation position
    // resolves to `boughtIn`; the object blank finds `Basket`.)
    let query = "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.6";

    let engine = Oassis::new(ontology);
    let config = EngineConfig::builder().aggregator_sample(3).build();
    let result = engine
        .execute(query, &mut members, &config)
        .expect("query executes");

    println!("Maximal frequent itemsets (support ≥ 0.6):");
    for answer in &result.answers {
        println!(
            "  - {}  (support {})",
            answer.rendered,
            answer.support.map_or("?".to_owned(), |s| format!("{s:.2}"))
        );
    }
    println!(
        "\n{} questions asked; the taxonomy reports category-level itemsets \
         (e.g. Dairy) when no single item is frequent enough.",
        result.stats.total_questions
    );

    // Bread appears in every basket; bread+butter in 2/3 shoppers' baskets.
    assert!(
        result
            .answers
            .iter()
            .any(|a| a.rendered.contains("Bread boughtIn Basket")),
        "bread must be frequent"
    );
}
