//! Self-treatment: what the crowd takes to relieve common symptoms —
//! plus the §6.3 answer-cache / threshold-replay workflow.
//!
//! Runs the smallest experiment domain once at threshold 0.2, then *replays*
//! the cached answers at higher thresholds without asking the crowd any new
//! questions, exactly the CrowdCache methodology the paper uses to produce
//! Figure 4c.
//!
//! ```text
//! cargo run --release --example self_treatment
//! ```

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::CrowdMember;
use oassis::datagen::{generate_crowd, self_treatment_domain, CrowdGenConfig};

fn main() {
    let domain = self_treatment_domain();
    let crowd_cfg = CrowdGenConfig {
        members: 36,
        transactions_per_member: 18,
        popular_patterns: 8,
        popularity: 0.8,
        zipf: 0.9,
        facts_per_transaction: 1,
        discretize: false,
        seed: 11,
    };
    let crowd = generate_crowd(&domain, &crowd_cfg);
    let mut members: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .into_iter()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();

    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");

    // One live execution at the lowest threshold fills the CrowdCache.
    let base = engine
        .execute_parsed(&query, 0.2, &mut members, &EngineConfig::default())
        .expect("query executes");
    println!(
        "Live run at threshold 0.2: {} answers, {} crowd questions, {} cached answers.",
        base.answers.len(),
        base.stats.total_questions,
        base.cache.total_questions()
    );
    for answer in base.answers.iter().take(5) {
        println!("  - {}", answer.rendered);
    }

    // Higher thresholds replay the cache: zero new crowd work.
    println!("\nThreshold replay from the cache (no new crowd questions):");
    println!("threshold  #answers  answers-used");
    for threshold in [0.3, 0.4, 0.5] {
        let replayed = engine
            .replay(&query, threshold, &base.cache, &EngineConfig::default())
            .expect("replay succeeds");
        println!(
            "{threshold:>9}  {:>8}  {:>12}",
            replayed.answers.len(),
            replayed.stats.total_questions
        );
    }
    println!(
        "\nThe replayed executions reuse the answers collected at 0.2 — the \
         paper's §6.3 methodology for Figures 4a–4c."
    );
}
