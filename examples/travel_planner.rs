//! Travel planner: the paper's first experiment domain at realistic scale.
//!
//! Generates a travel ontology whose assignment DAG matches the size of the
//! paper's (≈ 4773 nodes), simulates a recruited crowd, and executes the
//! canonical travel query over a sweep of support thresholds — printing the
//! same crowd statistics as Figure 4a, a sample of the natural-language
//! questions the crowd saw, and the final recommendations.
//!
//! ```text
//! cargo run --release --example travel_planner
//! ```

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::CrowdMember;
use oassis::datagen::{generate_crowd, travel_domain, CrowdGenConfig};

fn main() {
    let domain = travel_domain();
    println!(
        "Travel domain: {} elements, {} relations.",
        domain.ontology.vocabulary().num_elements(),
        domain.ontology.vocabulary().num_relations()
    );

    let crowd_cfg = CrowdGenConfig {
        members: 48,
        transactions_per_member: 20,
        popular_patterns: 40,
        popularity: 0.9,
        zipf: 0.3,
        facts_per_transaction: 3,
        discretize: false,
        seed: 7,
    };

    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");

    // Show how assignments become natural-language questions (§6.2),
    // using the domain's own templates.
    let templates = domain.question_templates();

    println!("\nthreshold  #MSPs  #valid  #questions");
    for threshold in [0.2, 0.3, 0.4] {
        let crowd = generate_crowd(&domain, &crowd_cfg);
        let mut members: Vec<Box<dyn CrowdMember>> = crowd
            .members
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn CrowdMember>)
            .collect();
        let result = engine
            .execute_parsed(&query, threshold, &mut members, &EngineConfig::default())
            .expect("query executes");
        let valid = result.answers.iter().filter(|a| a.valid).count();
        println!(
            "{threshold:>9}  {:>5}  {:>6}  {:>10}",
            result.answers.len(),
            valid,
            result.stats.total_questions
        );

        if threshold == 0.2 {
            println!("\nSample crowd questions at threshold 0.2:");
            for answer in result.answers.iter().take(3) {
                println!(
                    "  Q: {}",
                    templates.concrete(&answer.factset, domain.ontology.vocabulary())
                );
            }
            println!("\nRecommendations at threshold 0.2:");
            for answer in result.answers.iter().take(6) {
                let tag = if answer.valid { "" } else { "  [generalized]" };
                println!("  - {}{tag}", answer.rendered);
            }
            println!();
        }
    }
    println!("\nDone: lower thresholds mine more patterns but cost more questions.");
}
