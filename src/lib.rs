#![warn(missing_docs)]

//! # oassis
//!
//! Facade crate for the OASSIS reproduction ("OASSIS: Query Driven Crowd
//! Mining", SIGMOD 2014). Re-exports every workspace crate so downstream
//! users can depend on a single crate:
//!
//! ```
//! use oassis::vocab::Vocabulary;
//!
//! let mut b = Vocabulary::builder();
//! b.element_isa("Biking", "Sport");
//! let v = b.build().unwrap();
//! let (sport, biking) = (v.element("Sport").unwrap(), v.element("Biking").unwrap());
//! assert!(v.elem_leq(sport, biking)); // Sport ≤E Biking
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-code mapping.

pub use oassis_core as core;
pub use oassis_crowd as crowd;
pub use oassis_datagen as datagen;
pub use oassis_net as net;
pub use oassis_obs as obs;
pub use oassis_ql as ql;
pub use oassis_sparql as sparql;
pub use oassis_store as store;
pub use oassis_store_durable as store_durable;
pub use oassis_vocab as vocab;

/// One-stop imports for the engine's three entry points — see
/// [`oassis_core::prelude`] and the "which API when" table in
/// `docs/engine.md`.
pub mod prelude {
    pub use oassis_core::prelude::*;
}
