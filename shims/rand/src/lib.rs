#![warn(missing_docs)]

//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`rngs::SmallRng`] (a xoshiro256++ generator), [`SeedableRng`],
//! the [`RngExt`] sampling methods (`random`, `random_range`) and
//! [`seq::SliceRandom::shuffle`]. Sampling is deterministic for a fixed
//! seed, which is all the reproduction's experiments and tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, the initialization the
            // xoshiro authors recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a generator's raw words.
pub trait Random: Sized {
    /// Draw one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Convenience sampling methods available on every generator.
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffle the slice with a Fisher–Yates pass.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let n = rng.random_range(0..4);
            assert!((0..4).contains(&n));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
