#![warn(missing_docs)]

//! Vendored, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then a timed loop,
//! reporting mean nanoseconds per iteration to stdout. There is no
//! statistical analysis, outlier rejection, or HTML report — enough to
//! compare relative costs by eye, which is all the repo's benches need.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

/// How `iter_batched` amortizes setup cost; only a sizing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Times the body of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up untimed, then measure for a fixed wall-clock budget.
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let stop = start + MEASURE;
        let mut iters = 0u64;
        while Instant::now() < stop {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Run `routine` over fresh values from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        let deadline = Instant::now() + MEASURE;
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.elapsed = spent;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} no iterations completed");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{name:<50} {ns:>14.1} ns/iter ({} iters)", self.iters);
    }
}

/// A parameterized benchmark name within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// A name distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            parameter: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _size: usize) -> &mut Self {
        self
    }

    /// Benchmark `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark `routine` over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.parameter));
        self
    }

    /// Finish the group (no-op; results are printed as they complete).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark `routine` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Define a benchmark group function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Define `main` to run the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_iterations() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
        assert!(b.elapsed <= MEASURE + WARMUP);
    }
}
