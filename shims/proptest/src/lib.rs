#![warn(missing_docs)]

//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of proptest's API its property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, [`Just`], range
//! and tuple strategies, `prop_oneof!`, `proptest::bool::ANY`,
//! `proptest::collection::vec`, `proptest::option::of`, a permissive
//! string strategy for `&str` regex literals, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully reproducible runs), failures are reported without
//! shrinking, and `&str` strategies only honor a trailing `{m,n}` length
//! repetition rather than full regex syntax.

/// Per-test deterministic random source.
pub mod test_runner {
    /// SplitMix64-based generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test path, perturbed by the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `0..n` (`n` must be positive).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Runner configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!`-style check inside a test case body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, build a dependent strategy from it with `f`,
        /// and generate from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// `&str` literals act as string strategies. Only a trailing `{m,n}`
    /// repetition is honored; the character class is approximated by a
    /// printable pool (including a few multi-byte characters).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const POOL: &[char] = &[
                'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '$', '<', '>',
                '.', '=', '+', '*', '?', '{', '}', '[', ']', '(', ')', '"', '-', '_', '/', '\\',
                '#', 'é', 'λ', '中', '🙂',
            ];
            let (min, max) = parse_repeat(self).unwrap_or((0, 16));
            let len = min + rng.below(max - min + 1);
            (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
        }
    }

    /// Parse a trailing `{m,n}` repetition from a pattern literal.
    fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let brace = body.rfind('{')?;
        let (m, n) = body[brace + 1..].split_once(',')?;
        let lo: usize = m.trim().parse().ok()?;
        let hi: usize = n.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// A strategy generating `None` a quarter of the time and `Some` of the
    /// inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

pub use strategy::{Just, Strategy};

/// Define property tests: each `fn` runs `cases` times with fresh values
/// generated from its strategies. Bodies may use `prop_assert!`-style
/// macros and `return Ok(())` for early exits.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut proptest_rng,
                );)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Check a condition inside a `proptest!` body; on failure the case fails
/// with the condition (or the given formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Check equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case("shim::ranges", 0);
        let s = (2usize..7).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((20..70).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = TestRng::for_case("shim::oneof", 0);
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn vec_and_option_strategies_respect_shapes() {
        let mut rng = TestRng::for_case("shim::vec", 0);
        let s = crate::collection::vec(0usize..5, 1..4);
        let opt = crate::option::of(0usize..5);
        let mut nones = 0;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            if opt.generate(&mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 0, "None must occur");
    }

    #[test]
    fn string_pattern_honors_repeat_bounds() {
        let mut rng = TestRng::for_case("shim::string", 0);
        for _ in 0..100 {
            let s = "\\PC{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assertions and early returns.
        #[test]
        fn macro_end_to_end(a in 0usize..10, b in 5usize..6, flip in crate::bool::ANY) {
            prop_assert!(a < 10, "a = {}", a);
            prop_assert_eq!(b, 5);
            if flip {
                return Ok(());
            }
            prop_assert!(!flip);
        }
    }
}
