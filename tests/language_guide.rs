//! Executes every query snippet from `docs/oassis-ql-guide.md` against the
//! Figure 1 ontology, so the guide can never drift from the implementation.

use oassis::ql::{parse_query, Multiplicity, SelectForm};
use oassis::sparql::{evaluate_where, plan, MatchMode};
use oassis::store::ontology::figure1_ontology;

#[test]
fn section_1_query_anatomy() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity.
          $z instanceOf Restaurant.
          $z nearBy $x
        SATISFYING
          $y+ doAt $x.
          [] eatAt $z.
          MORE
        WITH SUPPORT = 0.4
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.where_clause.required_triples().len(), 7);
    assert!(q.satisfying.more);
}

#[test]
fn section_3_where_grammar() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w
        SATISFYING
          $y doAt $x
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.where_clause.required_triples().len(), 2);
}

#[test]
fn section_4_property_paths() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $z nearBy/inside NYC.
          $y subClassOf+ Activity
        SATISFYING
          $y doAt $z
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    // Compound paths have no single relation; elementary ones do.
    let triples = q.where_clause.required_triples();
    assert!(triples[0].path.relation().is_none());
    assert!(triples[1].path.relation().is_some());
    assert!(!evaluate_where(&o, &q.where_clause, &q.vars, MatchMode::Semantic).is_empty());
}

#[test]
fn section_5_union_optional_filter() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $x instanceOf Park.
          { $y subClassOf Sport } UNION { $y subClassOf Food }.
          OPTIONAL { $x hasLabel "child-friendly" }.
          FILTER($x != <Madison Square>)
        SATISFYING
          $y doAt $x
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    // UNION/OPTIONAL triples ride along but only the top-level triple is
    // required (it alone seeds assignment domains).
    assert_eq!(q.where_clause.required_triples().len(), 1);
    assert!(q.where_clause.pattern.all_triples().len() >= 4);
    let bindings = evaluate_where(&o, &q.where_clause, &q.vars, MatchMode::Semantic);
    assert!(!bindings.is_empty());
    let madison = q.vars.get("x").unwrap();
    let excluded = o.vocabulary().element("Madison Square").unwrap();
    assert!(bindings
        .iter()
        .all(|b| b.get(madison) != Some(excluded.into())));
}

#[test]
fn section_6_solution_modifiers() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $x instanceOf Park.
          $y nearBy $x
          ORDER BY $y DESC LIMIT 2
        SATISFYING
          $z doAt $x
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    assert!(q.where_clause.has_modifiers());
    assert_eq!(q.where_clause.limit, Some(2));
    let bindings = evaluate_where(&o, &q.where_clause, &q.vars, MatchMode::Semantic);
    assert!(bindings.len() <= 2);
}

#[test]
fn section_7_query_planner_explain() {
    let o = figure1_ontology();
    let mut vars = oassis::sparql::VarTable::new();
    let clause = oassis::sparql::parse_where(
        "$w subClassOf* Attraction. $x instanceOf $w. $x inside NYC. \
         FILTER($x IN (<Central Park>, <Madison Square>))",
        &o,
        &mut vars,
    )
    .unwrap();
    let compiled = plan::compile(&o, &clause, MatchMode::Semantic);
    let (optimized, report) = plan::optimize_report(&o, compiled, MatchMode::Semantic);
    assert!(report.pushdowns >= 1, "FILTER values push into the scans");
    assert!(report.unfolds >= 1, "subClassOf* switches to taxo-unfold");
    let rendered = optimized.explain(&o, &vars);
    assert!(rendered.contains("subject∈{Central Park, Madison Square}"));
    assert!(rendered.contains("[taxo-unfold]"));
}

#[test]
fn section_8_satisfying_clause() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y doAt <Central Park>
        WITH SUPPORT = 0.25
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.satisfying.patterns.len(), 1);
}

#[test]
fn section_9_multiplicities() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y{2} doAt <Central Park>
        WITH SUPPORT = 0.2
        "#,
        &o,
    )
    .unwrap();
    let y = q.vars.get("y").unwrap();
    assert_eq!(q.multiplicity_of(y), Multiplicity::Exactly(2));
}

#[test]
fn section_10_more() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y doAt <Central Park>.
          MORE
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    assert!(q.satisfying.more);
}

#[test]
fn section_11_frequent_itemsets() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.6",
        &o,
    )
    .unwrap();
    assert!(q.where_clause.pattern.items.is_empty());
    let x = q.vars.get("x").unwrap();
    assert_eq!(q.multiplicity_of(x), Multiplicity::AtLeastOne);
}

#[test]
fn section_12_select_forms() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT VARIABLES ALL WHERE SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3",
        &o,
    )
    .unwrap();
    assert_eq!(q.select, SelectForm::Variables);
    assert!(q.all);
}

#[test]
fn section_13_relation_variables() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT VARIABLES WHERE SATISFYING $x $p $z WITH SUPPORT = 0.5",
        &o,
    )
    .unwrap();
    assert!(q.satisfying.patterns[0].relation.as_var().is_some());
}

#[test]
fn section_15_rejections() {
    let o = figure1_ontology();
    let bad = [
        // Missing WITH SUPPORT value.
        "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT =",
        // Support out of range.
        "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT = 2",
        // Empty SATISFYING.
        "SELECT FACT-SETS WHERE SATISFYING WITH SUPPORT = 0.2",
        // MORE not last.
        "SELECT FACT-SETS WHERE SATISFYING MORE. $x doAt $y WITH SUPPORT = 0.2",
        // Multiplicity on a constant.
        "SELECT FACT-SETS WHERE SATISFYING Biking{2} doAt $y WITH SUPPORT = 0.2",
        // Conflicting multiplicities.
        "SELECT FACT-SETS WHERE SATISFYING $y+ doAt $x. $y? eatAt $x WITH SUPPORT = 0.2",
        // Unknown name.
        "SELECT FACT-SETS WHERE SATISFYING $y orbits $x WITH SUPPORT = 0.2",
        // FILTER over a variable its group never binds.
        "SELECT FACT-SETS WHERE $x inside NYC. FILTER($y = Biking) \
         SATISFYING $x doAt $y WITH SUPPORT = 0.2",
        // Unbalanced group braces.
        "SELECT FACT-SETS WHERE { $x inside NYC SATISFYING $y doAt $x WITH SUPPORT = 0.2",
        // LIMIT without an integer.
        "SELECT FACT-SETS WHERE $x inside NYC LIMIT SATISFYING $y doAt $x WITH SUPPORT = 0.2",
    ];
    for src in bad {
        assert!(parse_query(src, &o).is_err(), "should reject: {src}");
    }
}

#[test]
fn section_15_errors_carry_spans() {
    let o = figure1_ontology();
    let src = "SELECT FACT-SETS WHERE SATISFYING $y orbits $x WITH SUPPORT = 0.2";
    let err = parse_query(src, &o).unwrap_err();
    let span = err.span().expect("parse errors carry a span");
    assert_eq!(&src[span.start..span.end], "orbits");
}
