//! Executes every query snippet from `docs/oassis-ql-guide.md` against the
//! Figure 1 ontology, so the guide can never drift from the implementation.

use oassis::ql::{parse_query, Multiplicity, SelectForm};
use oassis::store::ontology::figure1_ontology;

#[test]
fn section_1_query_anatomy() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity.
          $z instanceOf Restaurant.
          $z nearBy $x
        SATISFYING
          $y+ doAt $x.
          [] eatAt $z.
          MORE
        WITH SUPPORT = 0.4
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.where_patterns.len(), 7);
    assert!(q.satisfying.more);
}

#[test]
fn section_3_where_clause() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w
        SATISFYING
          $y doAt $x
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.where_patterns.len(), 2);
}

#[test]
fn section_4_satisfying_clause() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y doAt <Central Park>
        WITH SUPPORT = 0.25
        "#,
        &o,
    )
    .unwrap();
    assert_eq!(q.satisfying.patterns.len(), 1);
}

#[test]
fn section_5_multiplicities() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y{2} doAt <Central Park>
        WITH SUPPORT = 0.2
        "#,
        &o,
    )
    .unwrap();
    let y = q.vars.get("y").unwrap();
    assert_eq!(q.multiplicity_of(y), Multiplicity::Exactly(2));
}

#[test]
fn section_6_more() {
    let o = figure1_ontology();
    let q = parse_query(
        r#"
        SELECT FACT-SETS
        WHERE $y subClassOf* Activity
        SATISFYING
          $y doAt <Central Park>.
          MORE
        WITH SUPPORT = 0.3
        "#,
        &o,
    )
    .unwrap();
    assert!(q.satisfying.more);
}

#[test]
fn section_7_frequent_itemsets() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.6",
        &o,
    )
    .unwrap();
    assert!(q.where_patterns.is_empty());
    let x = q.vars.get("x").unwrap();
    assert_eq!(q.multiplicity_of(x), Multiplicity::AtLeastOne);
}

#[test]
fn section_8_select_forms() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT VARIABLES ALL WHERE SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3",
        &o,
    )
    .unwrap();
    assert_eq!(q.select, SelectForm::Variables);
    assert!(q.all);
}

#[test]
fn section_9_relation_variables() {
    let o = figure1_ontology();
    let q = parse_query(
        "SELECT VARIABLES WHERE SATISFYING $x $p $z WITH SUPPORT = 0.5",
        &o,
    )
    .unwrap();
    assert!(q.satisfying.patterns[0].relation.as_var().is_some());
}

#[test]
fn section_11_rejections() {
    let o = figure1_ontology();
    let bad = [
        // Missing WITH SUPPORT value.
        "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT =",
        // Support out of range.
        "SELECT FACT-SETS WHERE SATISFYING $x doAt $y WITH SUPPORT = 2",
        // Empty SATISFYING.
        "SELECT FACT-SETS WHERE SATISFYING WITH SUPPORT = 0.2",
        // MORE not last.
        "SELECT FACT-SETS WHERE SATISFYING MORE. $x doAt $y WITH SUPPORT = 0.2",
        // Multiplicity on a constant.
        "SELECT FACT-SETS WHERE SATISFYING Biking{2} doAt $y WITH SUPPORT = 0.2",
        // Conflicting multiplicities.
        "SELECT FACT-SETS WHERE SATISFYING $y+ doAt $x. $y? eatAt $x WITH SUPPORT = 0.2",
        // Unknown name.
        "SELECT FACT-SETS WHERE SATISFYING $y orbits $x WITH SUPPORT = 0.2",
    ];
    for src in bad {
        assert!(parse_query(src, &o).is_err(), "should reject: {src}");
    }
}
