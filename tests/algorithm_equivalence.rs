//! Property tests over random planted instances: all three mining
//! algorithms agree with the planted ground truth and with each other, the
//! vertical algorithm recovers exactly the planted MSPs, and question
//! budgets are respected.

use proptest::prelude::*;

use oassis::core::{HorizontalMiner, MinerConfig, NaiveMiner, VerticalMiner};
use oassis::crowd::MemberId;
use oassis::datagen::{plant_msps, MspDistribution, PlantedOracle, SynthConfig, SynthInstance};

fn instance(width: usize, depth: usize, seed: u64) -> SynthInstance {
    SynthInstance::generate(&SynthConfig {
        width,
        depth,
        threshold: 0.2,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The vertical algorithm recovers exactly the planted MSP set on
    /// arbitrary tree shapes and planting seeds.
    #[test]
    fn vertical_recovers_planted_msps(
        width in 20usize..80,
        depth in 2usize..6,
        n_msps in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let inst = instance(width, depth, seed);
        let mut planted = plant_msps(
            &inst.space, &inst.valid_nodes, n_msps, MspDistribution::Uniform, seed,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
        let out = VerticalMiner::run(&inst.space, &mut oracle, &MinerConfig::new(0.2));
        let mut found = out.msps.clone();
        planted.sort();
        found.sort();
        prop_assert_eq!(found, planted);
    }

    /// Vertical, horizontal and naive classify every valid assignment
    /// identically (they share the inference scheme and the oracle).
    #[test]
    fn algorithms_agree_on_significance(
        width in 20usize..60,
        depth in 2usize..5,
        n_msps in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let inst = instance(width, depth, seed);
        let planted = plant_msps(
            &inst.space, &inst.valid_nodes, n_msps, MspDistribution::Uniform, seed,
        );
        let cfg = MinerConfig::new(0.2);
        let run = |which: usize| {
            let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
            match which {
                0 => VerticalMiner::run(&inst.space, &mut oracle, &cfg),
                1 => HorizontalMiner::run(&inst.space, &mut oracle, &cfg),
                _ => NaiveMiner::run(&inst.space, &mut oracle, &cfg, &inst.valid_nodes),
            }
        };
        let (v, h, n) = (run(0), run(1), run(2));
        let vocab = inst.space.ontology().vocabulary();
        for a in &inst.valid_nodes {
            let truth = planted.iter().any(|m| a.leq(m, vocab));
            prop_assert_eq!(v.state.is_significant(a, vocab), truth, "vertical wrong at {}", a);
            prop_assert_eq!(h.state.is_significant(a, vocab), truth, "horizontal wrong at {}", a);
            prop_assert_eq!(n.state.is_significant(a, vocab), truth, "naive wrong at {}", a);
        }
        // MSP sets agree too.
        let mut vm = v.msps.clone();
        let mut hm = h.msps.clone();
        vm.sort();
        hm.sort();
        prop_assert_eq!(vm, hm);
    }

    /// The specialization/pruning question mix never changes the result.
    #[test]
    fn question_mix_is_result_invariant(
        seed in 0u64..10_000,
        spec in 0.0f64..1.0,
        prune in 0.0f64..1.0,
    ) {
        let inst = instance(40, 4, seed);
        let mut planted = plant_msps(
            &inst.space, &inst.valid_nodes, 5, MspDistribution::Uniform, seed,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
        let cfg = MinerConfig {
            specialization_ratio: spec,
            pruning_ratio: prune,
            seed,
            ..MinerConfig::new(0.2)
        };
        let out = VerticalMiner::run(&inst.space, &mut oracle, &cfg);
        let mut found = out.msps.clone();
        planted.sort();
        found.sort();
        prop_assert_eq!(found, planted);
    }

    /// Unique questions never exceed the Proposition 4.7 bound argument.
    #[test]
    fn crowd_complexity_bound(seed in 0u64..10_000) {
        let inst = instance(50, 4, seed);
        let planted = plant_msps(
            &inst.space, &inst.valid_nodes, 4, MspDistribution::Uniform, seed,
        );
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
        let out = VerticalMiner::run(&inst.space, &mut oracle, &MinerConfig::new(0.2));
        let vocab = inst.space.ontology().vocabulary();
        let bound = (vocab.num_elements() + vocab.num_relations()) * out.msps.len().max(1)
            + out.state.insignificant_border().len();
        prop_assert!(out.stats.unique_questions <= bound);
    }
}
