//! Three-way differential oracle for the WHERE-clause compiler.
//!
//! For random queries over random generated taxonomies, three independent
//! evaluation legs must agree binding-for-binding:
//!
//! 1. **optimized** — `evaluate_where`: compile → rewrite (constraint
//!    pushdown, taxonomy unfolding, pruning, join reordering) → interpret;
//! 2. **unoptimized** — `run_plan` over the bare `plan::compile` output
//!    (source order, no rewrites, but index-backed scans and memoized
//!    closures);
//! 3. **reference** — `evaluate_reference`: direct AST recursion with
//!    linear scans and fresh DFS per path lookup.
//!
//! The generated ontologies vary taxonomy shape (random parent forests),
//! stored-edge relations (`linkA`/`linkB` plus `instanceOf` edges that
//! break the taxonomy-mirror condition for `subClassOf` unfolding), and
//! the `linkA ≤R linkB` relation order that distinguishes semantic from
//! syntactic matching.

use proptest::prelude::*;

use oassis::sparql::{
    evaluate_reference, evaluate_where, plan, run_plan, MatchMode, VarTable,
};
use oassis::store::Ontology;

const QVARS: &[&str] = &["x", "y", "z"];
const RELS: &[&str] = &["subClassOf", "instanceOf", "linkA", "linkB"];

fn elem(i: usize, n: usize) -> String {
    format!("n{}", i % n)
}

/// Build an ontology with `n` elements, a random parent forest (element
/// `i+1` optionally gets parent `parents[i] % (i+1)`, so the order is
/// acyclic by construction), and random stored edges.
fn build_ontology(
    n: usize,
    parents: &[(bool, usize)],
    edges: &[(u8, usize, usize)],
    link_isa: bool,
) -> Ontology {
    let mut b = Ontology::builder();
    for i in 0..n {
        b.element(&elem(i, n));
    }
    b.relation("subClassOf");
    b.relation("instanceOf");
    b.relation("linkA");
    b.relation("linkB");
    if link_isa {
        // linkB ≤R linkA: a `linkA` pattern also matches stored linkB
        // triples in semantic mode.
        b.relation_isa("linkB", "linkA");
    }
    for (i, &(has, pick)) in parents.iter().enumerate().take(n.saturating_sub(1)) {
        if has {
            b.subclass(&elem(i + 1, n), &elem(pick % (i + 1), n));
        }
    }
    for &(r, s, o) in edges {
        let (s, o) = (s % n, o % n);
        match r % 3 {
            0 => {
                b.triple(&elem(s, n), "linkA", &elem(o, n));
            }
            1 => {
                b.triple(&elem(s, n), "linkB", &elem(o, n));
            }
            // instanceOf edges also extend the element order; keep them
            // pointing from a higher to a strictly lower index so the
            // combined order stays acyclic.
            _ if s != o => {
                b.triple(&elem(s.max(o), n), "instanceOf", &elem(s.min(o), n));
            }
            _ => {}
        }
    }
    b.build().expect("generated ontology is acyclic")
}

/// Render one path: elementary shapes 0–3, `/`-sequence 4, `|`-alternation
/// 5, mixed `a/b|c` 6.
fn path_str(spec: &(u8, usize, usize, u8, u8)) -> String {
    let step = |kind: u8, r: usize| {
        let rel = RELS[r % RELS.len()];
        match kind % 4 {
            0 => rel.to_string(),
            1 => format!("{rel}*"),
            2 => format!("{rel}+"),
            _ => format!("{rel}?"),
        }
    };
    let &(shape, r1, r2, k1, k2) = spec;
    match shape % 7 {
        s @ 0..=3 => step(s, r1),
        4 => format!("{}/{}", step(k1, r1), step(k2, r2)),
        5 => format!("{}|{}", step(k1, r1), step(k2, r2)),
        _ => format!(
            "{}/{}|{}",
            RELS[r1 % RELS.len()],
            RELS[r2 % RELS.len()],
            step(k1, r1)
        ),
    }
}

type TripleSpec = ((u8, usize, usize, u8, u8), usize, (bool, usize));

/// Render one triple pattern `$var path (var|element)`.
fn triple_str(spec: &TripleSpec, n: usize) -> String {
    let (path, subj, (obj_is_var, obj)) = spec;
    let object = if *obj_is_var {
        format!("${}", QVARS[obj % QVARS.len()])
    } else {
        elem(*obj, n)
    };
    format!("${} {} {}", QVARS[subj % QVARS.len()], path_str(path), object)
}

type ItemSpec = (u8, TripleSpec, Vec<TripleSpec>, Vec<TripleSpec>, (u8, Vec<usize>));

/// Assemble a WHERE-clause source string from item specs. The first item
/// is always a plain triple so FILTERs have a bound anchor variable.
fn where_str(items: &[ItemSpec], mods: &(bool, Vec<(usize, bool)>, Option<u64>, u64), n: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut anchor: Option<String> = None;
    for (i, (kind, triple, group_a, group_b, (filter_op, consts))) in items.iter().enumerate() {
        let kind = if i == 0 { 0 } else { kind % 4 };
        match kind {
            1 => {
                let inner: Vec<String> = group_a.iter().map(|t| triple_str(t, n)).collect();
                parts.push(format!("OPTIONAL {{ {} }}", inner.join(". ")));
            }
            2 => {
                let a: Vec<String> = group_a.iter().map(|t| triple_str(t, n)).collect();
                let b: Vec<String> = group_b.iter().map(|t| triple_str(t, n)).collect();
                parts.push(format!("{{ {} }} UNION {{ {} }}", a.join(". "), b.join(". ")));
            }
            3 if anchor.is_some() => {
                let a = anchor.clone().expect("checked");
                let list = consts
                    .iter()
                    .map(|&c| elem(c, n))
                    .collect::<Vec<_>>()
                    .join(", ");
                parts.push(match filter_op % 4 {
                    0 => format!("FILTER({a} = {})", elem(consts[0], n)),
                    1 => format!("FILTER({a} != {})", elem(consts[0], n)),
                    2 => format!("FILTER({a} IN ({list}))"),
                    _ => format!("FILTER({a} NOT IN ({list}))"),
                });
            }
            _ => {
                if anchor.is_none() {
                    anchor = Some(format!("${}", QVARS[triple.1 % QVARS.len()]));
                }
                parts.push(triple_str(triple, n));
            }
        }
    }
    let mut src = parts.join(". ");
    let (distinct, order, limit, offset) = mods;
    if *distinct {
        src.push_str(" DISTINCT");
    }
    if !order.is_empty() {
        src.push_str(" ORDER BY");
        for &(v, desc) in order {
            src.push_str(&format!(" ${}", QVARS[v % QVARS.len()]));
            if desc {
                src.push_str(" DESC");
            }
        }
    }
    if let Some(l) = limit {
        src.push_str(&format!(" LIMIT {l}"));
    }
    if *offset > 0 {
        src.push_str(&format!(" OFFSET {offset}"));
    }
    src
}

fn arb_triple() -> impl Strategy<Value = TripleSpec> {
    (
        (0u8..7, 0usize..4, 0usize..4, 0u8..4, 0u8..4),
        0usize..QVARS.len(),
        (proptest::bool::ANY, 0usize..10),
    )
}

fn arb_item() -> impl Strategy<Value = ItemSpec> {
    (
        0u8..4,
        arb_triple(),
        proptest::collection::vec(arb_triple(), 1..3),
        proptest::collection::vec(arb_triple(), 1..3),
        (0u8..4, proptest::collection::vec(0usize..10, 1..3)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// optimized ≡ unoptimized ≡ reference, in both matching modes, on
    /// random queries over random taxonomies.
    #[test]
    fn three_evaluators_agree(
        n in 3usize..9,
        parents in proptest::collection::vec((proptest::bool::ANY, 0usize..8), 8),
        edges in proptest::collection::vec((0u8..3, 0usize..9, 0usize..9), 0..12),
        link_isa in proptest::bool::ANY,
        items in proptest::collection::vec(arb_item(), 1..4),
        mods in (
            proptest::bool::ANY,
            proptest::collection::vec((0usize..QVARS.len(), proptest::bool::ANY), 0..3),
            proptest::option::of(0u64..12),
            0u64..4,
        ),
    ) {
        let o = build_ontology(n, &parents, &edges, link_isa);
        let src = where_str(&items, &mods, n);
        let mut vars = VarTable::new();
        let clause = match oassis::sparql::parse_where(&src, &o, &mut vars) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("generated query failed to parse: {e}\n{src}"))),
        };
        for mode in [MatchMode::Syntactic, MatchMode::Semantic] {
            let optimized = evaluate_where(&o, &clause, &vars, mode);
            let unoptimized = run_plan(&o, &plan::compile(&o, &clause, mode), &vars, mode);
            let reference = evaluate_reference(&o, &clause, &vars, mode);
            prop_assert_eq!(
                &optimized, &unoptimized,
                "optimized vs unoptimized plan under {:?}:\n{}", mode, &src
            );
            prop_assert_eq!(
                &optimized, &reference,
                "planned vs reference under {:?}:\n{}", mode, &src
            );
        }
    }
}
