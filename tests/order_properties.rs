//! Property-based tests of the semantic partial orders (Definitions 2.1,
//! 2.5 and 4.1) and of the inference scheme's soundness (Observation 4.4),
//! over randomly generated taxonomies.

use proptest::prelude::*;

use oassis::core::{AValue, Assignment, ClassificationState};
use oassis::vocab::{ElementId, Fact, FactSet, RelationId, Vocabulary};

/// Build a random forest taxonomy over `n` elements: element `i > 0` gets a
/// random parent among `0..i` (or none), guaranteeing acyclicity.
fn arb_vocabulary(max_elems: usize) -> impl Strategy<Value = Vocabulary> {
    (2..max_elems).prop_flat_map(|n| {
        proptest::collection::vec(proptest::option::of(0..usize::MAX), n - 1).prop_map(
            move |parents| {
                let mut b = Vocabulary::builder();
                for i in 0..n {
                    b.element(&format!("e{i}"));
                }
                b.relation("r0");
                b.relation("r1");
                b.relation_isa("r1", "r0");
                for (i, p) in parents.iter().enumerate() {
                    let child = i + 1;
                    if let Some(p) = p {
                        let parent = p % child;
                        b.element_isa_ids(ElementId(child as u32), ElementId(parent as u32));
                    }
                }
                b.build().expect("forest is acyclic")
            },
        )
    })
}

/// Raw fact material; ids are mapped into the vocabulary's range in-test
/// (rather than filtered with `prop_assume`, which rejects too often).
fn arb_raw_factset() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..1000, 0usize..2, 0usize..1000), 0..4)
}

fn materialize(raw: &[(usize, usize, usize)], n_elems: usize) -> FactSet {
    FactSet::from_facts(raw.iter().map(|&(s, r, o)| {
        Fact::new(
            ElementId((s % n_elems) as u32),
            RelationId((r % 2) as u32),
            ElementId((o % n_elems) as u32),
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ≤E is reflexive and transitive on every generated taxonomy.
    #[test]
    fn elem_order_is_a_preorder(v in arb_vocabulary(24), seed in 0usize..1000) {
        let n = v.num_elements();
        let a = ElementId((seed % n) as u32);
        prop_assert!(v.elem_leq(a, a));
        for b in 0..n {
            for c in 0..n {
                let (b, c) = (ElementId(b as u32), ElementId(c as u32));
                if v.elem_leq(a, b) && v.elem_leq(b, c) {
                    prop_assert!(v.elem_leq(a, c), "transitivity failed");
                }
                // Antisymmetry.
                if v.elem_leq(a, b) && v.elem_leq(b, a) {
                    prop_assert_eq!(a, b);
                }
            }
        }
    }

    /// Fact order is component-wise; fact-set order is reflexive,
    /// transitive, and monotone under supersets on the right.
    #[test]
    fn factset_order_laws(
        v in arb_vocabulary(16),
        raw_a in arb_raw_factset(),
        raw_b in arb_raw_factset(),
        raw_c in arb_raw_factset(),
    ) {
        let n = v.num_elements();
        let (a, b, c) = (materialize(&raw_a, n), materialize(&raw_b, n), materialize(&raw_c, n));

        prop_assert!(v.factset_leq(&a, &a), "reflexive");
        if v.factset_leq(&a, &b) && v.factset_leq(&b, &c) {
            prop_assert!(v.factset_leq(&a, &c), "transitive");
        }
        // Right-monotone: A ≤ B implies A ≤ B ∪ C.
        if v.factset_leq(&a, &b) {
            prop_assert!(v.factset_leq(&a, &b.union(&c)));
        }
        // Empty set is bottom.
        prop_assert!(v.factset_leq(&FactSet::new(), &a));
    }

    /// Support is antitone in the fact-set order: A ≤ B ⇒ supp(A) ≥ supp(B)
    /// in every personal DB.
    #[test]
    fn support_is_antitone(
        v in arb_vocabulary(16),
        raw_a in arb_raw_factset(),
        raw_b in arb_raw_factset(),
        raw_txs in proptest::collection::vec(arb_raw_factset(), 1..6),
    ) {
        let n = v.num_elements();
        let (a, b) = (materialize(&raw_a, n), materialize(&raw_b, n));
        let db = oassis::crowd::PersonalDb::from_factsets(
            raw_txs.iter().map(|t| materialize(t, n)),
        );
        if v.factset_leq(&a, &b) {
            prop_assert!(db.support(&a, &v) >= db.support(&b, &v));
        }
    }

    /// Inference soundness: whatever order facts are learned in, the border
    /// state never misclassifies relative to a monotone ground truth.
    #[test]
    fn border_inference_is_sound(
        v in arb_vocabulary(12),
        truth_seed in 0u64..1000,
        asks in proptest::collection::vec((0usize..12, 0usize..12), 1..20),
    ) {
        let n = v.num_elements();
        // Monotone ground truth: φ significant iff φ ≤ some planted node.
        let planted = Assignment::single_valued([
            AValue::Elem(ElementId((truth_seed as usize % n) as u32)),
            AValue::Elem(ElementId(((truth_seed as usize / n) % n) as u32)),
        ]);
        let significant = |phi: &Assignment| phi.leq(&planted, &v);

        let mut state = ClassificationState::new();
        let mut asked: Vec<Assignment> = Vec::new();
        for (x, y) in asks {
            if x >= n || y >= n { continue; }
            let phi = Assignment::single_valued([
                AValue::Elem(ElementId(x as u32)),
                AValue::Elem(ElementId(y as u32)),
            ]);
            if significant(&phi) {
                state.mark_significant(&phi, &v);
            } else {
                state.mark_insignificant(&phi, &v);
            }
            asked.push(phi);
        }
        // Every classification the state infers agrees with the truth.
        for x in 0..n {
            for y in 0..n {
                let phi = Assignment::single_valued([
                    AValue::Elem(ElementId(x as u32)),
                    AValue::Elem(ElementId(y as u32)),
                ]);
                match state.status(&phi, &v) {
                    oassis::core::border::Status::Significant => {
                        prop_assert!(significant(&phi), "false positive at {phi}");
                    }
                    oassis::core::border::Status::Insignificant => {
                        prop_assert!(!significant(&phi), "false negative at {phi}");
                    }
                    oassis::core::border::Status::Unclassified => {}
                }
            }
        }
    }

    /// Assignment order: canonical antichains make ≤ a partial order, and
    /// single-valued assignments order pointwise.
    #[test]
    fn assignment_order_laws(
        v in arb_vocabulary(12),
        xs in proptest::collection::vec((0usize..12, 0usize..12), 3),
    ) {
        let n = v.num_elements();
        let mk = |x: usize, y: usize| Assignment::single_valued([
            AValue::Elem(ElementId((x % n) as u32)),
            AValue::Elem(ElementId((y % n) as u32)),
        ]);
        let a = mk(xs[0].0, xs[0].1);
        let b = mk(xs[1].0, xs[1].1);
        let c = mk(xs[2].0, xs[2].1);
        prop_assert!(a.leq(&a, &v));
        if a.leq(&b, &v) && b.leq(&c, &v) {
            prop_assert!(a.leq(&c, &v));
        }
        if a.leq(&b, &v) && b.leq(&a, &v) {
            prop_assert_eq!(a, b);
        }
    }
}
