//! Integration tests for the crowd-quality machinery of Section 4.2:
//! spammer detection via answer-consistency, noise robustness of the
//! aggregated multi-user execution, and member quotas.

use std::sync::Arc;

use oassis::core::{EngineConfig, Oassis};
use oassis::crowd::quality::{consistency_violations, is_spammer};
use oassis::crowd::{CrowdMember, MemberId, SpammerMember};
use oassis::datagen::{generate_crowd, self_treatment_domain, CrowdGenConfig};
use oassis::vocab::FactSet;

fn crowd_cfg(seed: u64) -> CrowdGenConfig {
    CrowdGenConfig {
        members: 24,
        transactions_per_member: 15,
        popular_patterns: 5,
        popularity: 0.85,
        zipf: 1.0,
        facts_per_transaction: 1,
        discretize: false,
        seed,
    }
}

/// Honest members produce consistent answer logs; the spammer filter
/// separates them from random answerers on the same question sequence.
#[test]
fn spammer_filter_separates_honest_from_random() {
    let domain = self_treatment_domain();
    let vocab = domain.ontology.vocabulary();
    let crowd = generate_crowd(&domain, &crowd_cfg(5));
    let mut honest = crowd.members[0].clone();
    let mut spammer = SpammerMember::new(MemberId(99), 4);

    // Ask both about a chain of increasingly specific fact-sets, repeatedly.
    let rel = vocab.relation(domain.relation).unwrap();
    let symptom = vocab.element("Symptom").unwrap();
    let mut spam_log = Vec::new();
    for _round in 0..6 {
        for subject in ["Remedy", "Remedy-0", "Remedy-1", "Remedy-2"] {
            let s = vocab.element(subject).unwrap();
            let fs = FactSet::from_facts([oassis::vocab::Fact::new(s, rel, symptom)]);
            honest.ask_concrete(&fs);
            let sp = spammer.ask_concrete(&fs);
            spam_log.push((fs, sp));
        }
    }
    assert!(
        consistency_violations(honest.answer_log(), vocab, 1e-9).is_empty(),
        "honest member must be self-consistent"
    );
    assert!(is_spammer(&spam_log, vocab, 0.0, 0.05));
    assert!(!is_spammer(honest.answer_log(), vocab, 0.0, 0.05));
}

/// A minority of spammers among honest members shifts averages but the top
/// pattern still surfaces (the aggregator averages over five answers).
#[test]
fn execution_tolerates_minority_spam() {
    let domain = self_treatment_domain();
    let crowd = generate_crowd(&domain, &crowd_cfg(9));
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).unwrap();

    // Clean run.
    let mut clean: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .iter()
        .cloned()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();
    let clean_result = engine
        .execute_parsed(&query, 0.2, &mut clean, &EngineConfig::default())
        .unwrap();
    assert!(!clean_result.answers.is_empty());

    // Same crowd plus 3 spammers (11% of members).
    let mut noisy: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .iter()
        .cloned()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();
    for i in 0..3 {
        noisy.push(Box::new(SpammerMember::new(MemberId(200 + i), i as u64)));
    }
    let noisy_result = engine
        .execute_parsed(&query, 0.2, &mut noisy, &EngineConfig::default())
        .unwrap();
    // The most popular clean answer survives the spam.
    let top_clean = &clean_result.answers[0].rendered;
    assert!(
        noisy_result
            .answers
            .iter()
            .any(|a| &a.rendered == top_clean),
        "top clean answer {top_clean:?} lost under spam: {:?}",
        noisy_result
            .answers
            .iter()
            .map(|a| &a.rendered)
            .collect::<Vec<_>>()
    );
}

/// Answer noise within the aggregator's tolerance does not change the top
/// answers.
#[test]
fn small_answer_noise_is_tolerated() {
    let domain = self_treatment_domain();
    let crowd = generate_crowd(&domain, &crowd_cfg(13));
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).unwrap();

    let run = |noise: f64| {
        let mut members: Vec<Box<dyn CrowdMember>> = crowd
            .members
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| {
                let m = if noise > 0.0 {
                    m.with_noise(noise, i as u64)
                } else {
                    m
                };
                Box::new(m) as Box<dyn CrowdMember>
            })
            .collect();
        engine
            .execute_parsed(&query, 0.2, &mut members, &EngineConfig::default())
            .unwrap()
    };
    let clean = run(0.0);
    let noisy = run(0.02);
    let top_clean = &clean.answers[0].rendered;
    assert!(
        noisy.answers.iter().any(|a| &a.rendered == top_clean),
        "top answer unstable under 2% noise"
    );
}

/// Members leaving early (quotas) degrade coverage gracefully: the run
/// terminates and never exceeds the members' combined willingness.
#[test]
fn quotas_bound_total_questions() {
    let domain = self_treatment_domain();
    let ontology = Arc::new(domain.ontology.clone());
    let crowd = generate_crowd(&domain, &crowd_cfg(21));
    let quota = 10usize;
    let mut members: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .into_iter()
        .map(|m| Box::new(m.with_quota(quota)) as Box<dyn CrowdMember>)
        .collect();
    let n_members = members.len();
    let engine = Oassis::from_arc(ontology);
    let result = engine
        .execute(&domain.query, &mut members, &EngineConfig::default())
        .unwrap();
    assert!(
        result.stats.total_questions <= n_members * (quota + 1),
        "{} questions for {} members with quota {}",
        result.stats.total_questions,
        n_members,
        quota
    );
}
