//! Property tests for the multi-query service layer, run on the
//! deterministic simulation executor (see `crates/simtest`): whatever the
//! seed-driven arrival schedule does, no admitted session starves, and
//! sessions over disjoint crowds behave byte-for-byte as if they ran
//! alone. Reproduce any failing seed with
//! `cargo run --release -p oassis-simtest --bin sim -- repro <seed>`.

use proptest::prelude::*;

use oassis_simtest::{
    check_service_seed, disjoint_plans, max_dispatch_gap, service_plans, simulate_service,
    STARVATION_BOUND,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No admitted session starves: with 2–4 concurrent sessions over an
    /// instant shared crowd, the round-robin scheduler keeps every
    /// session's dispatch cadence within the fairness bound — between two
    /// crowd questions of one session, the others get at most
    /// `STARVATION_BOUND` questions in.
    #[test]
    fn no_admitted_session_starves(
        seed in 0u64..10_000,
        n_sessions in 2usize..5,
    ) {
        let outcome = simulate_service(seed, &service_plans(n_sessions), false);
        for (i, s) in outcome.sessions.iter().enumerate() {
            prop_assert_eq!(
                s.status.as_str(), "Completed",
                "seed {}: session {} did not complete", seed, i
            );
        }
        let gap = max_dispatch_gap(&outcome);
        prop_assert!(
            gap <= STARVATION_BOUND,
            "seed {}: dispatch gap {} exceeds bound {} with {} sessions",
            seed, gap, STARVATION_BOUND, n_sessions
        );
    }

    /// Concurrent sessions over disjoint crowds are perfectly isolated:
    /// the combined run's per-session outcomes (MSP sets, question counts,
    /// store traffic, status) are byte-identical to running each session
    /// alone — across seed-varied latency schedules.
    #[test]
    fn disjoint_rosters_equal_isolated_runs(seed in 0u64..10_000) {
        let (plan_a, plan_b) = disjoint_plans();
        let combined = simulate_service(seed, &[plan_a.clone(), plan_b.clone()], true);
        let alone_a = simulate_service(seed, &[plan_a], true);
        let alone_b = simulate_service(seed, &[plan_b], true);
        prop_assert_eq!(&combined.sessions[0], &alone_a.sessions[0], "seed {}", seed);
        prop_assert_eq!(&combined.sessions[1], &alone_b.sessions[0], "seed {}", seed);
    }

    /// The full service oracle suite (replay, single-session differential,
    /// starvation, isolation) holds for arbitrary seeds, not just the
    /// `0..N` sweep range.
    #[test]
    fn service_oracles_hold_for_arbitrary_seeds(seed in 0u64..1_000_000) {
        if let Err(failure) = check_service_seed(seed) {
            prop_assert!(false, "{}", failure);
        }
    }
}
