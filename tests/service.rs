//! Integration tests for the multi-query service layer ([`OassisService`]):
//! the differential invariant (a single session through the service is
//! byte-for-byte the single-query `MultiUserMiner::run` path), cross-query
//! answer reuse through the `AnswerStore`, per-session budgets,
//! cancellation, and priority scheduling.

use std::sync::{Arc, Mutex};

use oassis::core::{
    EngineConfig, Oassis, OassisService, QueryResult, SessionRuntime, SessionSpec, SessionStatus,
};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::datagen::{
    culinary_domain, generate_crowd, self_treatment_domain, travel_domain, CrowdGenConfig, Domain,
};
use oassis::obs::{names, EventSink, InMemorySink};
use oassis::store::ontology::figure1_ontology;
use oassis::store_durable::{InMemory, SharedPersistence, WalRecord};
use oassis::vocab::{ElementId, FactSet};

const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

fn figure1_crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

fn valid_msp_set(result: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = result
        .answers
        .iter()
        .filter(|a| a.valid)
        .map(|a| a.rendered.clone())
        .collect();
    v.sort();
    v
}

fn domain_crowd(domain: &Domain, members: usize, seed: u64) -> Vec<Box<dyn CrowdMember>> {
    let crowd = generate_crowd(
        domain,
        &CrowdGenConfig {
            members,
            transactions_per_member: 20,
            popular_patterns: 6,
            seed,
            ..Default::default()
        },
    );
    crowd
        .members
        .into_iter()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect()
}

/// The tentpole invariant, per experiment domain: one session admitted to
/// the service (empty store) produces exactly the valid-MSP set and the
/// question count of the single-query `MultiUserMiner::run` path.
#[test]
fn single_session_matches_multiuser_run_per_domain() {
    for (domain, members, seed) in [
        (travel_domain(), 8, 3u64),
        (culinary_domain(), 8, 5),
        (self_treatment_domain(), 10, 7),
    ] {
        let cfg = EngineConfig::builder().seed(seed).build();

        // Serial baseline: the single-query path (`execute` drives
        // `run_direct`, which `runtime_concurrency.rs` proves identical to
        // the pooled `MultiUserMiner::run` for pure members).
        let engine = Oassis::new(domain.ontology.clone());
        let mut serial_members = domain_crowd(&domain, members, seed);
        let serial = engine.execute(&domain.query, &mut serial_members, &cfg).unwrap();

        // The same query as the only session of a fresh service.
        let engine = Oassis::new(domain.ontology.clone());
        let runtime = SessionRuntime::new(domain_crowd(&domain, members, seed));
        let mut service = OassisService::start(engine, runtime);
        let spec = SessionSpec::builder(&domain.query).config(cfg.clone()).build();
        service.submit(spec).unwrap();
        let mut reports = service.run();
        assert_eq!(reports.len(), 1);
        let report = reports.remove(0);

        assert_eq!(report.status, SessionStatus::Completed, "{}", domain.name);
        assert_eq!(
            valid_msp_set(&serial),
            valid_msp_set(&report.result),
            "{}: service session diverged from MultiUserMiner::run",
            domain.name
        );
        assert_eq!(
            serial.stats.total_questions, report.result.stats.total_questions,
            "{}: different question count",
            domain.name
        );
        assert_eq!(report.store_hits, 0, "{}: empty store cannot hit", domain.name);
        assert!(
            !valid_msp_set(&report.result).is_empty(),
            "{}: vacuous comparison",
            domain.name
        );
    }
}

/// Two sessions with the same query submitted together: both reports match
/// the serial baseline exactly, but the store shares answers between them,
/// so the crowd is asked fewer questions than two serial runs would ask.
#[test]
fn overlapping_sessions_share_the_crowd() {
    let cfg = EngineConfig::default();
    let engine = Oassis::new(figure1_ontology());
    let mut members = figure1_crowd(2);
    let serial = engine.execute(QUERY, &mut members, &cfg).unwrap();
    let serial_msps = valid_msp_set(&serial);
    let serial_questions = serial.stats.total_questions;

    let mem = InMemorySink::shared();
    let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start_with_sink(engine, runtime, sink);
    for _ in 0..2 {
        let spec = SessionSpec::builder(QUERY).config(cfg.clone()).build();
        service.submit(spec).unwrap();
    }
    let reports = service.run();
    assert_eq!(reports.len(), 2);

    let mut total_crowd = 0;
    let mut total_reuse = 0;
    for report in &reports {
        assert_eq!(report.status, SessionStatus::Completed);
        assert_eq!(serial_msps, valid_msp_set(&report.result));
        // Per-session accounting is untouched by sharing: each session
        // still *sees* the serial number of answers...
        assert_eq!(serial_questions, report.result.stats.total_questions);
        total_crowd += report.crowd_questions;
        total_reuse += report.store_hits;
    }
    // ...but the crowd answered fewer than 2x serial questions.
    assert!(
        total_crowd < 2 * serial_questions,
        "no sharing: {total_crowd} crowd questions vs {serial_questions} serial"
    );
    assert!(total_reuse > 0, "expected dispatch-time store hits");
    let snap = mem.snapshot();
    assert_eq!(
        snap.counter(&format!("{}[serve]", names::ANSWERSTORE_HIT)) as usize,
        total_reuse
    );
    assert_eq!(
        snap.counter_across_labels(names::SERVICE_QUESTION_DISPATCHED) as usize,
        total_crowd
    );
}

/// A session admitted after an identical one completed is seeded from the
/// answer store and barely touches the crowd — and still reports the same
/// answers and question count as a fresh serial run.
#[test]
fn completed_answers_seed_later_sessions() {
    let cfg = EngineConfig::default();
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start(engine, runtime);

    let spec = SessionSpec::builder(QUERY).config(cfg.clone()).build();
    service.submit(spec).unwrap();
    let first = service.run().remove(0);
    assert!(first.crowd_questions > 0);

    let spec = SessionSpec::builder(QUERY).config(cfg.clone()).build();
    service.submit(spec).unwrap();
    let second = service.run().remove(0);

    assert_eq!(second.status, SessionStatus::Completed);
    assert_eq!(valid_msp_set(&first.result), valid_msp_set(&second.result));
    // Seeded answers are pre-knowledge, not questions: the second session
    // classifies from the seed sweep and asks (almost) nothing.
    assert!(
        second.result.stats.total_questions < first.result.stats.total_questions,
        "seeding did not shrink the question count: {} vs {}",
        second.result.stats.total_questions,
        first.result.stats.total_questions
    );
    assert!(
        second.crowd_questions < first.crowd_questions,
        "seeded session re-asked the crowd: {} vs {}",
        second.crowd_questions,
        first.crowd_questions
    );
}

/// The per-session budget caps *crowd* dispatches and yields a partial
/// result with the dedicated status.
#[test]
fn budget_exhaustion_is_reported() {
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start(engine, runtime);
    let spec = SessionSpec::builder(QUERY).budget(3).build();
    service.submit(spec).unwrap();
    let report = service.run().remove(0);
    assert_eq!(report.status, SessionStatus::BudgetExhausted);
    assert!(report.crowd_questions <= 3, "{}", report.crowd_questions);
}

/// A question wave larger than the remaining budget must not overrun it:
/// speculative prefetches count against the grant too, so the session
/// still stops at the cap with the dedicated status and a partial result.
#[test]
fn waves_never_overrun_the_budget() {
    let budget = 3usize;
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start(engine, runtime);
    // Every wave asks for more questions than the whole grant allows.
    service.set_wave_size(2 * budget);
    let spec = SessionSpec::builder(QUERY).budget(budget).build();
    service.submit(spec).unwrap();
    let report = service.run().remove(0);
    assert_eq!(report.status, SessionStatus::BudgetExhausted);
    assert!(
        report.crowd_questions <= budget,
        "wave overran the budget: {} > {budget}",
        report.crowd_questions
    );
    assert!(report.crowd_questions > 0, "the grant was never used");
}

/// Resuming a session whose budget was fully spent before the crash must
/// not dispatch fresh crowd questions: the recovered grant is the original
/// minus the watermarked spend — zero — so the resumed leg reports
/// `BudgetExhausted` immediately as a partial result.
#[test]
fn resume_of_spent_budget_session_dispatches_nothing() {
    let budget = 3usize;
    let mem = Arc::new(Mutex::new(InMemory::new()));
    let persistence: SharedPersistence = Arc::clone(&mem) as SharedPersistence;
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start_with_persistence(
        engine,
        runtime,
        oassis::obs::null_sink(),
        persistence,
    );
    service
        .submit(SessionSpec::builder(QUERY).budget(budget).build())
        .unwrap();
    let report = service.run().remove(0);
    assert_eq!(report.status, SessionStatus::BudgetExhausted);
    drop(service);

    // Crash right before the Close record: the last Budget watermark (the
    // full grant) is durable, the session's end is not.
    let crash: SharedPersistence = {
        let log = mem.lock().unwrap();
        let close_idx = log
            .history()
            .iter()
            .position(|r| matches!(r, WalRecord::Close { .. }))
            .expect("the run closed its session");
        Arc::new(Mutex::new(log.crashed_at(close_idx)))
    };

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, mut recovered) =
        OassisService::recover_with(engine, runtime, oassis::obs::null_sink(), crash)
            .expect("crash image replays");
    assert_eq!(recovered.len(), 1, "the interrupted session is recovered");
    let session = recovered.remove(0);
    assert_eq!(
        session.spent, budget,
        "the watermark recorded the exhausted grant"
    );
    service.resume(session).unwrap();
    let resumed = service.run().remove(0);
    assert_eq!(
        resumed.status,
        SessionStatus::BudgetExhausted,
        "a spent grant must resume straight into exhaustion"
    );
    assert_eq!(
        resumed.crowd_questions, 0,
        "a spent grant must not buy fresh dispatches"
    );
}

/// Cancellation before `run` ends the session immediately; the other
/// admitted session is unaffected and still matches the serial baseline.
#[test]
fn cancellation_leaves_other_sessions_intact() {
    let cfg = EngineConfig::default();
    let engine = Oassis::new(figure1_ontology());
    let mut members = figure1_crowd(2);
    let serial = engine.execute(QUERY, &mut members, &cfg).unwrap();

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start(engine, runtime);
    let keep = SessionSpec::builder(QUERY).config(cfg.clone()).build();
    let keep_id = service.submit(keep).unwrap();
    let drop_spec = SessionSpec::builder(QUERY).config(cfg.clone()).build();
    let drop_id = service.submit(drop_spec).unwrap();
    assert!(service.cancel(drop_id));
    assert!(!service.cancel(drop_id) || drop_id != keep_id); // idempotent-ish

    let reports = service.run();
    let kept = reports.iter().find(|r| r.id == keep_id).unwrap();
    let dropped = reports.iter().find(|r| r.id == drop_id).unwrap();
    assert_eq!(kept.status, SessionStatus::Completed);
    assert_eq!(dropped.status, SessionStatus::Cancelled);
    assert_eq!(dropped.crowd_questions, 0, "cancelled before any dispatch");
    assert_eq!(valid_msp_set(&serial), valid_msp_set(&kept.result));

    // A cancelled or unknown id can no longer be cancelled.
    assert!(!service.cancel(drop_id));
}

/// A member wrapper that logs every concrete question it is asked, so a
/// test can observe crowd-side dispatch *order*.
struct RecordingMember {
    inner: Box<dyn CrowdMember>,
    log: Arc<Mutex<Vec<FactSet>>>,
}

impl CrowdMember for RecordingMember {
    fn id(&self) -> MemberId {
        self.inner.id()
    }
    fn ask_concrete(&mut self, a: &FactSet) -> f64 {
        self.log.lock().unwrap().push(a.clone());
        self.inner.ask_concrete(a)
    }
    fn ask_specialization(
        &mut self,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<(usize, f64)> {
        self.inner.ask_specialization(base, candidates)
    }
    fn irrelevant_elements(&mut self, a: &FactSet) -> Vec<ElementId> {
        self.inner.irrelevant_elements(a)
    }
}

/// With one shared crowd seat, the first dispatch of every cycle goes to
/// the highest-priority session — even when it was admitted last.
#[test]
fn priority_beats_admission_order() {
    let log: Arc<Mutex<Vec<FactSet>>> = Arc::new(Mutex::new(Vec::new()));
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, _) = table3_dbs(&vocab);
    let members: Vec<Box<dyn CrowdMember>> = vec![Box::new(RecordingMember {
        inner: Box::new(DbMember::new(MemberId(0), d1, Arc::clone(&vocab))),
        log: Arc::clone(&log),
    })];

    // Two queries over disjoint SATISFYING objects, so every concrete
    // question is attributable to its session.
    let park = "SELECT FACT-SETS WHERE $y subClassOf* Activity \
                SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3";
    let zoo = "SELECT FACT-SETS WHERE $y subClassOf* Activity \
               SATISFYING $y doAt <Bronx Zoo> WITH SUPPORT = 0.3";

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(members);
    let mut service = OassisService::start(engine, runtime);
    let low = SessionSpec::builder(park).build(); // admitted first, priority 0
    service.submit(low).unwrap();
    let high = SessionSpec::builder(zoo).priority(5).build();
    service.submit(high).unwrap();
    let reports = service.run();
    assert!(reports.iter().all(|r| r.status == SessionStatus::Completed));

    let log = log.lock().unwrap();
    let first = log.first().expect("at least one crowd question");
    let rendered = vocab.factset_to_string(first);
    assert!(
        rendered.contains("Bronx Zoo"),
        "first dispatch should be the high-priority session's, got {rendered}"
    );
}

/// Rosters restrict which seats a session may ask; an out-of-range seat is
/// rejected at admission.
#[test]
fn rosters_are_validated_and_respected() {
    let log: Arc<Mutex<Vec<FactSet>>> = Arc::new(Mutex::new(Vec::new()));
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(0), d1, Arc::clone(&vocab))),
        Box::new(RecordingMember {
            inner: Box::new(DbMember::new(MemberId(1), d2, Arc::clone(&vocab))),
            log: Arc::clone(&log),
        }),
    ];
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(members);
    let mut service = OassisService::start(engine, runtime);

    let bad = SessionSpec::builder(QUERY).roster(vec![0, 2]).build();
    assert!(service.submit(bad).is_err(), "seat 2 of 2 must be rejected");

    let only_first = SessionSpec::builder(QUERY).roster(vec![0]).build();
    service.submit(only_first).unwrap();
    let report = service.run().remove(0);
    assert_eq!(report.status, SessionStatus::Completed);
    assert!(
        log.lock().unwrap().is_empty(),
        "seat 1 is outside the roster and must never be asked"
    );
}
