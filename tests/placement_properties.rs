//! Property tests for the hash-placement layer (`oassis::crowd::placement`)
//! and the `AnswerStore`'s canonical serialization. Placement must be a
//! pure function of the value being placed — invariant to the insertion
//! order of a fact-set's facts and consistent across every structure
//! sizing — and `to_records` must render the same canonical record
//! sequence no matter how many stripes the store was built with (that
//! order is what service snapshots embed, so a restart with a different
//! stripe configuration must not perturb the durable image).

use proptest::prelude::*;

use oassis::crowd::placement::{
    factset_stripe, hash_factset, hash_member, index_for, member_shard,
};
use oassis::crowd::{AnswerStore, MemberId};
use oassis::vocab::{ElementId, Fact, FactSet, RelationId};

/// A small universe keeps collisions (distinct tuples, same fact-set)
/// common enough to matter.
fn materialize(raw: &[(usize, usize, usize)]) -> FactSet {
    FactSet::from_facts(raw.iter().map(|&(s, r, o)| {
        Fact::new(
            ElementId((s % 13) as u32),
            RelationId((r % 3) as u32),
            ElementId((o % 13) as u32),
        )
    }))
}

/// Stripe/shard counts worth probing: degenerate, odd, power-of-two, and
/// larger-than-typical.
const COUNTS: [usize; 5] = [1, 2, 7, 16, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fact-set hash — and with it every stripe assignment — depends
    /// only on the *set*, not on the order its facts were inserted in.
    #[test]
    fn factset_placement_ignores_insertion_order(
        raw in proptest::collection::vec((0usize..64, 0usize..64, 0usize..64), 1..8),
        rotate in 0usize..8,
    ) {
        let fs = materialize(&raw);
        let mut rotated = raw.clone();
        rotated.rotate_left(rotate % raw.len().max(1));
        let fs_rot = materialize(&rotated);
        prop_assert_eq!(hash_factset(&fs), hash_factset(&fs_rot));
        for count in COUNTS {
            prop_assert_eq!(factset_stripe(&fs, count), factset_stripe(&fs_rot, count));
        }
    }

    /// Changing a structure's stripe/shard count never changes the placed
    /// value's identity: every assignment is `index_for(hash, count)` of
    /// the *same* hash, stays in range, and two layers sized alike place
    /// the fact-set (or member) in the same bucket.
    #[test]
    fn placement_is_stable_across_stripe_counts(
        raw in proptest::collection::vec((0usize..64, 0usize..64, 0usize..64), 1..8),
        member in 0u32..10_000,
    ) {
        let fs = materialize(&raw);
        let fs_hash = hash_factset(&fs);
        let m_hash = hash_member(MemberId(member));
        for count in COUNTS {
            let stripe = factset_stripe(&fs, count);
            prop_assert!(stripe < count);
            prop_assert_eq!(stripe, index_for(fs_hash, count));
            let shard = member_shard(MemberId(member), count);
            prop_assert!(shard < count);
            prop_assert_eq!(shard, index_for(m_hash, count));
        }
    }

    /// `AnswerStore::to_records` renders the same canonical sequence for
    /// any stripe count: stores built with different stripe counts but fed
    /// the same recordings serialize identically (fact-sets in text order,
    /// answers within a fact-set in insertion order).
    #[test]
    fn to_records_is_invariant_to_stripe_count(
        entries in proptest::collection::vec(
            ((0usize..64, 0usize..64, 0usize..64), 0u32..6, 0u32..10),
            1..12,
        ),
    ) {
        let stores: Vec<AnswerStore> =
            COUNTS.iter().map(|&c| AnswerStore::with_stripes(c)).collect();
        for (raw, member, support) in &entries {
            let fs = materialize(std::slice::from_ref(raw));
            let support = f64::from(*support) / 10.0;
            for store in &stores {
                store.record(&fs, MemberId(*member), support);
            }
        }
        let reference = stores[0].to_records();
        prop_assert!(!reference.is_empty());
        for store in &stores[1..] {
            prop_assert_eq!(&store.to_records(), &reference);
        }
    }
}
