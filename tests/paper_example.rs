//! End-to-end replay of the paper's running example: Figure 1 ontology,
//! Table 3 personal databases, Figure 2 query, and the worked numbers of
//! Examples 2.6–4.6.

use std::sync::Arc;

use oassis::core::{
    AValue, AssignSpace, Assignment, EngineConfig, MinerConfig, Oassis, VerticalMiner,
};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId, ScriptedMember};
use oassis::sparql::MatchMode;
use oassis::store::ontology::figure1_ontology;
use oassis::vocab::{Fact, FactSet, Vocabulary};

const FIGURE2: &str = r#"
    SELECT FACT-SETS
    WHERE
      $w subClassOf* Attraction.
      $x instanceOf $w.
      $x inside NYC.
      $x hasLabel "child-friendly".
      $y subClassOf* Activity.
      $z instanceOf Restaurant.
      $z nearBy $x
    SATISFYING
      $y+ doAt $x.
      [] eatAt $z.
      MORE
    WITH SUPPORT = 0.4
"#;

fn fact(v: &Vocabulary, s: &str, r: &str, o: &str) -> Fact {
    Fact::new(
        v.element(s).unwrap(),
        v.relation(r).unwrap(),
        v.element(o).unwrap(),
    )
}

/// Example 3.1: supp(φ16(A_SAT)) = avg(1/3, 1/2) = 5/12 ≥ 0.4 (significant);
/// supp(φ20(A_SAT)) = avg(1/6, 1/2) = 1/3 < 0.4 (insignificant).
#[test]
fn example_3_1_significance() {
    let o = figure1_ontology();
    let v = o.vocabulary();
    let (d1, d2) = table3_dbs(v);

    let phi16 = FactSet::from_facts([
        fact(v, "Biking", "doAt", "Central Park"),
        fact(v, "Falafel", "eatAt", "Maoz Veg."),
    ]);
    let avg16 = (d1.support(&phi16, v) + d2.support(&phi16, v)) / 2.0;
    assert!((avg16 - 5.0 / 12.0).abs() < 1e-12);
    assert!(avg16 >= 0.4);

    let phi20 = FactSet::from_facts([
        fact(v, "Baseball", "doAt", "Central Park"),
        fact(v, "Falafel", "eatAt", "Maoz Veg."),
    ]);
    let avg20 = (d1.support(&phi20, v) + d2.support(&phi20, v)) / 2.0;
    assert!((avg20 - 1.0 / 3.0).abs() < 1e-12);
    assert!(avg20 < 0.4);
}

/// Example 3.2: extending φ16 with the MORE fact `Rent Bikes doAt
/// Boathouse` is significant (implied by T3, T4, T7 ⇒ avg 5/12), while
/// extending with multiplicity 2 ({Biking, Ball Game}) is not.
#[test]
fn example_3_2_extensions() {
    let o = figure1_ontology();
    let v = o.vocabulary();
    let (d1, d2) = table3_dbs(v);

    let with_more = FactSet::from_facts([
        fact(v, "Biking", "doAt", "Central Park"),
        fact(v, "Falafel", "eatAt", "Maoz Veg."),
        fact(v, "Rent Bikes", "doAt", "Boathouse"),
    ]);
    let avg = (d1.support(&with_more, v) + d2.support(&with_more, v)) / 2.0;
    assert!((avg - 5.0 / 12.0).abs() < 1e-12, "avg = {avg}");

    let with_mult = FactSet::from_facts([
        fact(v, "Biking", "doAt", "Central Park"),
        fact(v, "Ball Game", "doAt", "Central Park"),
        fact(v, "Falafel", "eatAt", "Maoz Veg."),
    ]);
    let avg = (d1.support(&with_mult, v) + d2.support(&with_mult, v)) / 2.0;
    assert!(avg < 0.4, "only the former extension is significant");
}

/// Executing the full Figure 2 query with u1+u2 yields the Introduction's
/// answers: the biking-with-boathouse-tip combo, the ball-games combo, and
/// feeding a monkey at the Bronx Zoo with Pine.
#[test]
fn figure2_query_end_to_end() {
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
        Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
    ];
    let rent_bikes = fact(&vocab, "Rent Bikes", "doAt", "Boathouse");
    let engine = Oassis::new(ontology);
    let config = EngineConfig::builder()
        .aggregator_sample(2)
        .more_domain(vec![rent_bikes])
        .build();
    let result = engine.execute(FIGURE2, &mut members, &config).unwrap();
    let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();

    assert!(
        rendered
            .iter()
            .any(|r| r.contains("Biking doAt Central Park")
                && r.contains("Maoz Veg.")
                && r.contains("Rent Bikes doAt Boathouse")),
        "missing the boathouse-tip answer: {rendered:#?}"
    );
    assert!(
        rendered
            .iter()
            .any(|r| r.contains("Ball Game doAt Central Park") && r.contains("Maoz Veg.")),
        "missing the ball-games answer: {rendered:#?}"
    );
    assert!(
        rendered
            .iter()
            .any(|r| r.contains("Feed a monkey doAt Bronx Zoo") && r.contains("Pine")),
        "missing the monkey answer: {rendered:#?}"
    );
    // φ20 (Baseball) must not appear.
    assert!(!rendered.iter().any(|r| r.contains("Baseball")));
    // Every answer's support meets the threshold.
    for a in &result.answers {
        assert!(a.support.unwrap_or(1.0) + 1e-9 >= 0.4, "{}", a.rendered);
    }
}

/// Example 4.6: running the single-user vertical algorithm for `u_avg`
/// (whose answers are the average of u1 and u2) over the grey-highlighted
/// query fragment identifies node 17 (Ball Game, Central Park) as an MSP.
#[test]
fn example_4_6_uavg_msps() {
    let ontology = figure1_ontology();
    let vocab = ontology.vocabulary().clone();
    let (d1, d2) = table3_dbs(&vocab);

    // Build u_avg as a scripted member over all fact-sets we may be asked
    // about: answer = avg(supp_u1, supp_u2), computed on demand via a
    // DbMember-free closure... ScriptedMember needs a table, so instead use
    // two DbMembers and an averaging wrapper.
    struct UAvg {
        d1: oassis::crowd::PersonalDb,
        d2: oassis::crowd::PersonalDb,
        vocab: Vocabulary,
    }
    impl CrowdMember for UAvg {
        fn id(&self) -> MemberId {
            MemberId(99)
        }
        fn ask_concrete(&mut self, a: &FactSet) -> f64 {
            (self.d1.support(a, &self.vocab) + self.d2.support(a, &self.vocab)) / 2.0
        }
        fn ask_specialization(
            &mut self,
            _base: &FactSet,
            candidates: &[FactSet],
        ) -> Option<(usize, f64)> {
            candidates
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    (
                        i,
                        (self.d1.support(c, &self.vocab) + self.d2.support(c, &self.vocab)) / 2.0,
                    )
                })
                .filter(|(_, s)| *s > 0.0)
                .max_by(|a, b| a.1.total_cmp(&b.1))
        }
        fn irrelevant_elements(&mut self, _a: &FactSet) -> Vec<oassis::vocab::ElementId> {
            Vec::new()
        }
    }

    let src = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.4
    "#;
    let query = oassis::ql::parse_query(src, &ontology).unwrap();
    let space = AssignSpace::build(
        Arc::new(ontology.clone()),
        &query,
        MatchMode::Semantic,
        Vec::new(),
    )
    .unwrap();
    let mut uavg = UAvg {
        d1,
        d2,
        vocab: vocab.clone(),
    };
    let out = VerticalMiner::run(&space, &mut uavg, &MinerConfig::new(0.4));

    // Node 17 of Figure 3: (Ball Game, Central Park) — an MSP for u_avg:
    // supp = avg(2/6, 1/2) = 5/12 ≥ 0.4 and both specializations fall below.
    let node17 = Assignment::single_valued([
        AValue::Elem(vocab.element("Ball Game").unwrap()),
        AValue::Elem(vocab.element("Central Park").unwrap()),
    ]);
    assert!(out.msps.contains(&node17), "msps: {:?}", out.msps);
    // Node 20 (Baseball) is insignificant: avg(1/6, 1/2) = 1/3.
    let node20 = Assignment::single_valued([
        AValue::Elem(vocab.element("Baseball").unwrap()),
        AValue::Elem(vocab.element("Central Park").unwrap()),
    ]);
    assert!(out.state.is_insignificant(&node20, &vocab));
}

/// The scripted u_avg of the multi-user tests agrees with inference: a
/// scripted member table built from explicit Example 4.6 values drives the
/// same outcome.
#[test]
fn scripted_member_variant() {
    let ontology = figure1_ontology();
    let v = ontology.vocabulary();
    let mut table = std::collections::HashMap::new();
    // supp for (Sport, Central Park) per u_avg: avg(3/6, 1/2) = 1/2.
    table.insert(
        FactSet::from_facts([fact(v, "Sport", "doAt", "Central Park")]),
        0.5,
    );
    let mut m = ScriptedMember::new(MemberId(5), table, 0.0);
    let q = FactSet::from_facts([fact(v, "Sport", "doAt", "Central Park")]);
    assert_eq!(m.ask_concrete(&q), 0.5);
    let unknown = FactSet::from_facts([fact(v, "Swimming", "doAt", "Central Park")]);
    assert_eq!(m.ask_concrete(&unknown), 0.0);
}
