//! The event/metrics subsystem observed end-to-end: running the paper's
//! travel example with an [`InMemorySink`] attached must yield a snapshot
//! that agrees with the engine's own [`ExecutionStats`] bookkeeping and
//! exposes the paper-facing telemetry (lazy-DAG coverage, crowd-cache
//! traffic, per-algorithm question counts, spans).

use std::sync::Arc;

use oassis::core::{
    AssignSpace, EngineConfig, HorizontalMiner, MinerConfig, NaiveMiner, Oassis, VerticalMiner,
    NODES_TOTAL_CAP,
};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::obs::{names, EventSink, InMemorySink};
use oassis::sparql::MatchMode;
use oassis::store::ontology::figure1_ontology;
use oassis::vocab::Fact;

const FIGURE2: &str = r#"
    SELECT FACT-SETS
    WHERE
      $w subClassOf* Attraction.
      $x instanceOf $w.
      $x inside NYC.
      $x hasLabel "child-friendly".
      $y subClassOf* Activity.
      $z instanceOf Restaurant.
      $z nearBy $x
    SATISFYING
      $y+ doAt $x.
      [] eatAt $z.
      MORE
    WITH SUPPORT = 0.4
"#;

/// The grey-highlighted Figure 3 fragment used by the single-user miners.
const FIG3_FRAGMENT: &str = r#"
    SELECT FACT-SETS
    WHERE
      $w subClassOf* Attraction.
      $x instanceOf $w.
      $x inside NYC.
      $x hasLabel "child-friendly".
      $y subClassOf* Activity
    SATISFYING
      $y+ doAt $x
    WITH SUPPORT = 0.4
"#;

#[test]
fn multiuser_run_snapshot_matches_execution_stats() {
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
        Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
    ];
    let rent_bikes = Fact::new(
        vocab.element("Rent Bikes").unwrap(),
        vocab.relation("doAt").unwrap(),
        vocab.element("Boathouse").unwrap(),
    );

    let mem = InMemorySink::shared();
    let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
    let engine = Oassis::new(ontology);
    let config = EngineConfig::builder()
        .aggregator_sample(2)
        .more_domain(vec![rent_bikes])
        .sink(sink)
        .build();
    let result = engine.execute(FIGURE2, &mut members, &config).unwrap();
    assert!(!result.answers.is_empty());
    let snap = mem.snapshot();

    // The event stream carries exactly the engine's question bookkeeping.
    assert_eq!(
        snap.counter_across_labels(names::QUESTION_ASKED),
        result.stats.total_questions as u64,
        "snapshot question count must match ExecutionStats"
    );
    assert_eq!(
        snap.counter(&format!("{}[multiuser]", names::ALGO_QUESTIONS)),
        result.stats.total_questions as u64,
    );
    assert_eq!(
        snap.counter_across_labels(names::MSP_CONFIRMED),
        result.stats.msp_events.len() as u64,
    );

    // Lazy generation (Section 5): far fewer nodes materialized than exist.
    // The full Figure-2 space (MORE facts + multiplicity nodes) has ~100k
    // nodes, so the total gauge may be capped out — laziness then shows as
    // `generated` staying below even the counting cap.
    let generated = snap.counter(names::DAG_NODES_GENERATED);
    assert!(generated > 0);
    assert_eq!(generated, result.stats.nodes_generated as u64);
    match snap.gauge(names::DAG_NODES_TOTAL) {
        Some(total) => assert!(
            (generated as f64) < total,
            "lazy generation must touch a strict subset: {generated} of {total}"
        ),
        None => assert!(
            generated < NODES_TOTAL_CAP as u64,
            "space exceeds the counting cap, yet {generated} nodes were materialized"
        ),
    }

    // Crowd-cache traffic: every answer-reuse lookup is either a hit or a
    // miss, and every miss became a crowd question.
    let hits = snap.counter(names::CROWD_CACHE_HIT);
    let misses = snap.counter(names::CROWD_CACHE_MISS);
    assert!(misses > 0, "fresh questions go through cache misses");
    assert_eq!(misses, result.stats.total_questions as u64);
    assert_eq!(
        hits + misses,
        snap.counter(names::CROWD_CACHE_HIT) + snap.counter(names::CROWD_CACHE_MISS)
    );

    // Border updates and aggregation quorums were observed.
    assert!(snap.counter_across_labels(names::BORDER_UPDATED) > 0);
    let quorum = snap
        .histogram(names::CROWD_QUORUM_SIZE)
        .expect("decisions were reached");
    assert!(quorum.count > 0);
    assert!(quorum.max <= 2.0, "two members answered");

    // Answer latency was timed per question round-trip.
    let latency = snap
        .histogram(names::CROWD_ANSWER_NANOS)
        .expect("answer latency histogram");
    assert_eq!(latency.count, result.stats.total_questions as u64);
    let roundtrip = snap.span(names::SPAN_ROUNDTRIP).expect("roundtrip span");
    assert_eq!(roundtrip.count, result.stats.total_questions as u64);
    assert_eq!(roundtrip.open, 0);

    // The run and plan/space-build phases are bracketed by spans.
    for name in [names::SPAN_RUN, names::SPAN_PLAN, names::SPAN_SPACE_BUILD] {
        let span = snap.span(name).unwrap_or_else(|| panic!("span {name}"));
        assert_eq!(span.count, 1, "{name} runs once");
        assert_eq!(span.open, 0, "{name} must be closed");
    }

    // The WHERE clause's SPARQL evaluation reported its scans, and the
    // planner reported unfolding the `subClassOf*` scans to taxonomy
    // reachability (which is exactly why no per-binding path BFS — and
    // hence no `sparql.path.depth` histogram — happens on this query).
    assert!(snap.counter_across_labels(names::SPARQL_PATTERN_SCAN) > 0);
    assert!(
        snap.counter(names::SPARQL_PLAN_UNFOLD) >= 1,
        "subClassOf* scans switch to precomputed reachability"
    );
    assert!(
        snap.histogram(names::SPARQL_PATH_DEPTH).is_none(),
        "unfolded paths skip the per-binding BFS entirely"
    );
}

/// On the paper's Figure 3 fragment the space is small enough to count
/// exhaustively, so the snapshot exposes the exact "fraction of the DAG
/// generated" ratio the paper reports — and it must be a strict fraction.
#[test]
fn bounded_space_reports_exact_lazy_generation_ratio() {
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
        Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
    ];

    let mem = InMemorySink::shared();
    let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
    let engine = Oassis::new(ontology);
    let config = EngineConfig::builder().aggregator_sample(2).sink(sink).build();
    let result = engine.execute(FIG3_FRAGMENT, &mut members, &config).unwrap();
    let snap = mem.snapshot();

    let generated = snap.counter(names::DAG_NODES_GENERATED);
    let total = snap
        .gauge(names::DAG_NODES_TOTAL)
        .expect("figure-3 fragment space is countable");
    assert!(generated > 0);
    assert!(total >= 1.0);
    let ratio = generated as f64 / total;
    assert!(
        ratio < 1.0,
        "generated {generated} of {total} nodes (ratio {ratio:.3}) must stay below 1"
    );
    assert_eq!(generated, result.stats.nodes_generated as u64);
}

#[test]
fn single_user_miners_report_per_algorithm_questions() {
    let ontology = figure1_ontology();
    let vocab = Arc::new(ontology.vocabulary().clone());
    let query = oassis::ql::parse_query(FIG3_FRAGMENT, &ontology).unwrap();
    let space = AssignSpace::build(
        Arc::new(ontology.clone()),
        &query,
        MatchMode::Semantic,
        Vec::new(),
    )
    .unwrap();

    let mem = InMemorySink::shared();
    let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
    let cfg = MinerConfig::new(0.4).with_sink(sink);

    let (d1, _) = table3_dbs(&vocab);
    let mut m1 = DbMember::new(MemberId(1), d1.clone(), Arc::clone(&vocab));
    let vertical = VerticalMiner::run(&space, &mut m1, &cfg);
    let mut m2 = DbMember::new(MemberId(2), d1.clone(), Arc::clone(&vocab));
    let horizontal = HorizontalMiner::run(&space, &mut m2, &cfg);
    let mut m3 = DbMember::new(MemberId(3), d1, Arc::clone(&vocab));
    let universe = space.enumerate_single_valued(100_000).unwrap();
    let naive = NaiveMiner::run(&space, &mut m3, &cfg, &universe);

    let snap = mem.snapshot();
    for (algo, outcome) in [
        ("vertical", &vertical),
        ("horizontal", &horizontal),
        ("naive", &naive),
    ] {
        let key = format!("{}[{algo}]", names::ALGO_QUESTIONS);
        assert_eq!(
            snap.counter(&key),
            outcome.stats.total_questions as u64,
            "{algo} question count must match its stats"
        );
        assert!(snap.counter(&key) > 0, "{algo} asked questions");
    }
    // All three miners share one stream; the unlabeled sum covers them all.
    assert_eq!(
        snap.counter_across_labels(names::QUESTION_ASKED),
        (vertical.stats.total_questions
            + horizontal.stats.total_questions
            + naive.stats.total_questions) as u64,
    );
}
