//! Property tests for OASSIS-QL: pretty-print → parse round-trips, and
//! lexer robustness on arbitrary input.

use proptest::prelude::*;

use oassis::ql::{parse_query, Multiplicity};
use oassis::sparql::tokenize;
use oassis::store::ontology::figure1_ontology;

/// Element names usable as bare or angle-bracketed tokens.
const ELEMENTS: &[&str] = &[
    "Activity",
    "Sport",
    "Biking",
    "Ball Game",
    "Central Park",
    "Attraction",
    "Restaurant",
    "NYC",
    "Maoz Veg.",
];
const RELATIONS: &[&str] = &[
    "doAt",
    "eatAt",
    "inside",
    "nearBy",
    "subClassOf",
    "instanceOf",
];
const VARS: &[&str] = &["x", "y", "z", "w"];

fn quote(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_alphanumeric() || c == '-' || c == '_')
    {
        name.to_owned()
    } else {
        format!("<{name}>")
    }
}

fn arb_where_pattern() -> impl Strategy<Value = String> {
    (
        0..VARS.len(),
        0..RELATIONS.len(),
        prop_oneof![Just(""), Just("*"), Just("+")],
        prop_oneof![
            (0..ELEMENTS.len()).prop_map(|i| quote(ELEMENTS[i])),
            (0..VARS.len()).prop_map(|i| format!("${}", VARS[i])),
        ],
    )
        .prop_map(|(v, r, star, obj)| format!("${} {}{} {}", VARS[v], RELATIONS[r], star, obj))
}

fn arb_mult() -> impl Strategy<Value = (Multiplicity, String)> {
    prop_oneof![
        Just((Multiplicity::One, String::new())),
        Just((Multiplicity::AtLeastOne, "+".to_owned())),
        Just((Multiplicity::Any, "*".to_owned())),
        Just((Multiplicity::Optional, "?".to_owned())),
        (2u32..5).prop_map(|n| (Multiplicity::Exactly(n), format!("{{{n}}}"))),
    ]
}

fn arb_sat_pattern() -> impl Strategy<Value = String> {
    (
        0..VARS.len(),
        arb_mult(),
        prop_oneof![
            (0..2usize).prop_map(|i| ["doAt", "eatAt"][i].to_owned()),
            Just("[]".to_owned()),
        ],
        prop_oneof![
            (0..ELEMENTS.len()).prop_map(|i| quote(ELEMENTS[i])),
            (0..VARS.len()).prop_map(|i| format!("${}", VARS[i])),
            Just("[]".to_owned()),
        ],
    )
        .prop_map(|(v, (_, mult), rel, obj)| format!("${}{} {} {}", VARS[v], mult, rel, obj))
}

fn arb_query() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("FACT-SETS"), Just("VARIABLES")],
        proptest::bool::ANY,
        proptest::collection::vec(arb_where_pattern(), 0..4),
        proptest::collection::vec(arb_sat_pattern(), 1..4),
        proptest::bool::ANY,
        (0u32..=100).prop_map(|n| n as f64 / 100.0),
    )
        .prop_map(|(form, all, wheres, sats, more, support)| {
            let mut q = format!("SELECT {form}{}", if all { " ALL" } else { "" });
            q.push_str("\nWHERE\n");
            q.push_str(&wheres.join(".\n"));
            q.push_str("\nSATISFYING\n");
            q.push_str(&sats.join(".\n"));
            if more {
                q.push_str(".\nMORE");
            }
            q.push_str(&format!("\nWITH SUPPORT = {support}"));
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any generated query that parses round-trips through pretty-printing
    /// to a structurally identical query.
    #[test]
    fn printed_queries_reparse_identically(src in arb_query()) {
        let o = figure1_ontology();
        // Some generated queries are invalid (conflicting multiplicities);
        // only round-trip those that parse.
        let Ok(q) = parse_query(&src, &o) else { return Ok(()); };
        let printed = q.to_ql_string(&o);
        let q2 = parse_query(&printed, &o).unwrap_or_else(|e| {
            panic!("printed query failed to reparse: {e}\n{printed}")
        });
        prop_assert_eq!(q.select, q2.select);
        prop_assert_eq!(q.all, q2.all);
        prop_assert_eq!(&q.where_clause, &q2.where_clause);
        prop_assert_eq!(q.satisfying.patterns.len(), q2.satisfying.patterns.len());
        prop_assert_eq!(q.satisfying.more, q2.satisfying.more);
        prop_assert!((q.satisfying.support - q2.satisfying.support).abs() < 1e-12);
        // Multiplicities survive (compare per pattern position).
        for (a, b) in q.satisfying.patterns.iter().zip(&q2.satisfying.patterns) {
            prop_assert_eq!(a.subject_mult, b.subject_mult);
            prop_assert_eq!(a.object_mult, b.object_mult);
        }
        // And printing is a fixpoint.
        prop_assert_eq!(printed.clone(), q2.to_ql_string(&o));
    }

    /// The lexer never panics, whatever bytes it gets.
    #[test]
    fn lexer_total_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = tokenize(&src);
    }

    /// The parser never panics on token soup assembled from valid fragments.
    #[test]
    fn parser_total_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FACT-SETS"), Just("WHERE"), Just("SATISFYING"),
                Just("MORE"), Just("WITH"), Just("SUPPORT"), Just("="), Just("0.3"),
                Just("$x"), Just("doAt"), Just("[]"), Just("."), Just("+"), Just("*"),
                Just("Biking"), Just("<Central Park>"),
            ],
            0..25,
        )
    ) {
        let o = figure1_ontology();
        let src = parts.join(" ");
        let _ = parse_query(&src, &o);
    }

    /// Parsing is deterministic.
    #[test]
    fn parsing_is_deterministic(src in arb_query()) {
        let o = figure1_ontology();
        let a = parse_query(&src, &o);
        let b = parse_query(&src, &o);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a.to_ql_string(&o), b.to_ql_string(&o));
        }
    }
}
