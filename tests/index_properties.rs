//! Property-based equivalence tests for the PR-3 index layer: the indexed
//! border classification (status memo + witness prefilter) must agree with
//! the reference border scan on arbitrary taxonomies — including DAG-shaped
//! ones, where the weight prefilter is disabled — and the Eclat-style
//! tid-list counting must agree with the transaction scan on arbitrary
//! personal databases.

use proptest::prelude::*;

use oassis::core::{AValue, Assignment, ClassificationState};
use oassis::crowd::{PersonalDb, SupportIndex};
use oassis::vocab::{ElementId, Fact, FactSet, RelationId, Vocabulary};

/// Build a random taxonomy over `n` elements where element `i > 0` draws
/// 0–2 parents among `0..i` (acyclic by construction). With two parents
/// the element order is a genuine DAG, not a forest, which forces the
/// witness prefilter onto its mask-only path.
fn arb_vocabulary(max_elems: usize) -> impl Strategy<Value = Vocabulary> {
    (3..max_elems).prop_flat_map(|n| {
        proptest::collection::vec((0usize..3, 0usize..usize::MAX, 0usize..usize::MAX), n - 1)
            .prop_map(move |parents| {
                let mut b = Vocabulary::builder();
                for i in 0..n {
                    b.element(&format!("e{i}"));
                }
                b.relation("r0");
                b.relation("r1");
                b.relation_isa("r1", "r0");
                for (i, &(arity, p0, p1)) in parents.iter().enumerate() {
                    let child = i + 1;
                    if arity >= 1 {
                        b.element_isa_ids(ElementId(child as u32), ElementId((p0 % child) as u32));
                    }
                    if arity == 2 && p1 % child != p0 % child {
                        b.element_isa_ids(ElementId(child as u32), ElementId((p1 % child) as u32));
                    }
                }
                b.build().expect("parent edges point strictly downward")
            })
    })
}

fn assignment(v: &Vocabulary, y: usize, x: usize) -> Assignment {
    let n = v.num_elements();
    Assignment::single_valued([
        AValue::Elem(ElementId((y % n) as u32)),
        AValue::Elem(ElementId((x % n) as u32)),
    ])
}

fn materialize(raw: &[(usize, usize, usize)], n_elems: usize) -> FactSet {
    FactSet::from_facts(raw.iter().map(|&(s, r, o)| {
        Fact::new(
            ElementId((s % n_elems) as u32),
            RelationId((r % 2) as u32),
            ElementId((o % n_elems) as u32),
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After an arbitrary interleaving of mark-significant,
    /// mark-insignificant and prune operations, the indexed state, the
    /// un-indexed state and the reference scan give the same status for
    /// every assignment — and repeated (memoized) queries don't drift.
    #[test]
    fn indexed_status_matches_reference_scan(
        v in arb_vocabulary(14),
        ops in proptest::collection::vec((0usize..3, 0usize..1000, 0usize..1000), 1..8),
    ) {
        let mut idx = ClassificationState::new();
        let mut plain = ClassificationState::unindexed();
        prop_assert!(idx.is_indexed() && !plain.is_indexed());
        let n = v.num_elements();
        for &(op, y, x) in &ops {
            let a = assignment(&v, y, x);
            match op {
                0 => {
                    idx.mark_significant(&a, &v);
                    plain.mark_significant(&a, &v);
                }
                1 => {
                    idx.mark_insignificant(&a, &v);
                    plain.mark_insignificant(&a, &v);
                }
                _ => {
                    let e = AValue::Elem(ElementId((y % n) as u32));
                    idx.mark_pruned(e);
                    plain.mark_pruned(e);
                }
            }
            // Query the full grid after every mutation so the epoch-tagged
            // memo is exercised across invalidations, not just at the end.
            for qy in 0..n {
                for qx in 0..n {
                    let q = assignment(&v, qy, qx);
                    let got = idx.status(&q, &v);
                    prop_assert_eq!(got, idx.status_reference(&q, &v));
                    prop_assert_eq!(got, plain.status(&q, &v));
                    // Memo hit must return the identical answer.
                    prop_assert_eq!(got, idx.status(&q, &v));
                }
            }
        }
    }

    /// Tid-list intersection counting equals the per-transaction scan for
    /// arbitrary databases and query fact-sets (including the empty set),
    /// so supports are bit-identical f64s.
    #[test]
    fn tidlist_count_matches_transaction_scan(
        v in arb_vocabulary(12),
        raw_db in proptest::collection::vec(
            proptest::collection::vec((0usize..1000, 0usize..2, 0usize..1000), 0..4),
            0..8,
        ),
        raw_queries in proptest::collection::vec(
            proptest::collection::vec((0usize..1000, 0usize..2, 0usize..1000), 0..3),
            1..6,
        ),
    ) {
        let n = v.num_elements();
        let db = PersonalDb::from_factsets(raw_db.iter().map(|t| materialize(t, n)));
        let index = SupportIndex::build(&db, &v);
        prop_assert_eq!(index.transactions(), db.len());
        for raw in &raw_queries {
            let q = materialize(raw, n);
            let scan = db.count_implying(&q, &v);
            prop_assert_eq!(index.count_implying(&q), scan, "query {:?}", q);
            // Same integer counts ⇒ the derived supports are bit-identical.
            prop_assert_eq!(index.support(&q).to_bits(), db.support(&q, &v).to_bits());
        }
        let empty = FactSet::default();
        prop_assert_eq!(index.count_implying(&empty), db.count_implying(&empty, &v));
    }
}
