//! AST-level round-trip property for OASSIS-QL: `parse(display(ast))`
//! reconstructs the exact AST — not just a string that reparses, but the
//! same variables (ids and names), patterns, multiplicities and support.
//!
//! Complements `tests/language_properties.rs`, which starts from generated
//! *strings*; here the generator builds [`Query`] values directly, so the
//! property also pins the printer's treatment of every AST shape the
//! validator admits.

use proptest::prelude::*;

use oassis::ql::{
    validate_query, Multiplicity, QlRel, QlTerm, Query, SatPattern, SatisfyingClause, SelectForm,
};
use oassis::sparql::{PatTerm, PropPath, TriplePattern, VarTable};
use oassis::store::ontology::figure1_ontology;
use oassis::store::{Ontology, Term};

/// Element names from the figure-1 travel ontology, including ones the
/// printer must angle-quote.
const ELEMENTS: &[&str] = &[
    "Activity",
    "Sport",
    "Biking",
    "Ball Game",
    "Central Park",
    "Attraction",
    "Restaurant",
    "NYC",
    "Maoz Veg.",
];
const RELATIONS: &[&str] = &["doAt", "eatAt", "inside", "nearBy", "subClassOf", "instanceOf"];
/// Subject/object variable pool. Disjoint from [`REL_VARS`] so relation
/// variables never carry a multiplicity (the validator forbids it).
const VARS: &[&str] = &["x", "y", "z", "w", "v"];
const REL_VARS: &[&str] = &["p", "q"];

/// One WHERE triple: subject var, relation, path kind, object (var or
/// element).
type WhereSpec = (usize, usize, u8, (bool, usize, usize));
/// One SATISFYING meta-fact: subject var, relation (var or constant),
/// object (var or element).
type SatSpec = (usize, (bool, usize, usize), (bool, usize, usize));

fn arb_mult() -> impl Strategy<Value = Multiplicity> {
    prop_oneof![
        Just(Multiplicity::One),
        Just(Multiplicity::AtLeastOne),
        Just(Multiplicity::Any),
        Just(Multiplicity::Optional),
        (2u32..5).prop_map(Multiplicity::Exactly),
    ]
}

fn arb_where() -> impl Strategy<Value = WhereSpec> {
    (
        0..VARS.len(),
        0..RELATIONS.len(),
        0u8..3,
        (proptest::bool::ANY, 0..VARS.len(), 0..ELEMENTS.len()),
    )
}

fn arb_sat() -> impl Strategy<Value = SatSpec> {
    (
        0..VARS.len(),
        (proptest::bool::ANY, 0..REL_VARS.len(), 0..RELATIONS.len()),
        (proptest::bool::ANY, 0..VARS.len(), 0..ELEMENTS.len()),
    )
}

/// Build a validator-clean query AST from the generated spec. Variables are
/// interned in first-textual-occurrence order — exactly the order the
/// parser assigns ids in — and each subject/object variable uses one fixed
/// multiplicity everywhere it occurs (repeated equal annotations are
/// legal; conflicting ones are not).
fn build_query(
    o: &Ontology,
    select_variables: bool,
    all: bool,
    wheres: &[WhereSpec],
    sats: &[SatSpec],
    mults: &[Multiplicity],
    more: bool,
    support: f64,
) -> Query {
    let vocab = o.vocabulary();
    let elem = |i: usize| vocab.element(ELEMENTS[i]).expect("known element");
    let rel = |i: usize| vocab.relation(RELATIONS[i]).expect("known relation");

    let mut vars = VarTable::new();
    let where_patterns: Vec<TriplePattern> = wheres
        .iter()
        .map(|&(subj, r, path_kind, (obj_is_var, obj_var, obj_elem))| {
            let subject = PatTerm::Var(vars.var(VARS[subj]));
            let path = match path_kind {
                0 => PropPath::Rel(rel(r)),
                1 => PropPath::Star(rel(r)),
                _ => PropPath::Plus(rel(r)),
            };
            let object = if obj_is_var {
                PatTerm::Var(vars.var(VARS[obj_var]))
            } else {
                PatTerm::Const(Term::Element(elem(obj_elem)))
            };
            TriplePattern::new(subject, path, object)
        })
        .collect();

    let patterns: Vec<SatPattern> = sats
        .iter()
        .map(|&(subj, (rel_is_var, rel_var, rel_const), (obj_is_var, obj_var, obj_elem))| {
            let subject = QlTerm::Var(vars.var(VARS[subj]));
            let subject_mult = mults[subj];
            let relation = if rel_is_var {
                QlRel::Var(vars.var(REL_VARS[rel_var]))
            } else {
                QlRel::Relation(rel(rel_const))
            };
            let (object, object_mult) = if obj_is_var {
                (QlTerm::Var(vars.var(VARS[obj_var])), mults[obj_var])
            } else {
                (QlTerm::Element(elem(obj_elem)), Multiplicity::One)
            };
            SatPattern {
                subject,
                subject_mult,
                relation,
                object,
                object_mult,
            }
        })
        .collect();

    Query {
        select: if select_variables {
            SelectForm::Variables
        } else {
            SelectForm::FactSets
        },
        all,
        where_patterns,
        satisfying: SatisfyingClause {
            patterns,
            more,
            support,
        },
        vars,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(ast)) == ast`: the printer loses nothing the parser
    /// needs, and the parser reconstructs the same structure (same
    /// variable ids, since both sides number by first occurrence).
    #[test]
    fn displayed_ast_reparses_to_the_same_ast(
        select_variables in proptest::bool::ANY,
        all in proptest::bool::ANY,
        wheres in proptest::collection::vec(arb_where(), 0..4),
        sats in proptest::collection::vec(arb_sat(), 1..4),
        mults in proptest::collection::vec(arb_mult(), VARS.len()),
        more in proptest::bool::ANY,
        support in (0u32..=100).prop_map(|n| n as f64 / 100.0),
    ) {
        let o = figure1_ontology();
        let ast = build_query(&o, select_variables, all, &wheres, &sats, &mults, more, support);
        prop_assert!(
            validate_query(&ast).is_ok(),
            "the generator must only build validator-clean ASTs"
        );

        let printed = ast.to_ql_string(&o);
        let reparsed = match oassis::ql::parse_query(&printed, &o) {
            Ok(q) => q,
            Err(e) => return Err(TestCaseError::fail(format!(
                "printed AST failed to reparse: {e}\n{printed}"
            ))),
        };

        prop_assert_eq!(ast.select, reparsed.select);
        prop_assert_eq!(ast.all, reparsed.all);
        prop_assert_eq!(&ast.where_patterns, &reparsed.where_patterns, "\n{}", &printed);
        prop_assert_eq!(&ast.satisfying, &reparsed.satisfying, "\n{}", &printed);
        // Variable identity survives: same count, names and id order.
        prop_assert_eq!(ast.vars.len(), reparsed.vars.len(), "\n{}", &printed);
        for v in ast.vars.iter() {
            prop_assert_eq!(ast.vars.name(v), reparsed.vars.name(v), "\n{}", &printed);
        }
        // And display is a fixpoint.
        prop_assert_eq!(printed.clone(), reparsed.to_ql_string(&o));
    }
}
