//! AST-level round-trip property for OASSIS-QL: `parse(display(ast))`
//! reconstructs the exact AST — not just a string that reparses, but the
//! same variables (ids and names), patterns, multiplicities and support.
//!
//! The WHERE generator exercises every grammar construct: all four
//! elementary path modifiers (`rel`, `rel*`, `rel+`, `rel?`), compound
//! `/`-sequences and `|`-alternations, `OPTIONAL { ... }` groups,
//! `{ ... } UNION { ... }`, `FILTER` with `=` / `!=` / `IN` / `NOT IN`,
//! and the solution modifiers `DISTINCT` / `ORDER BY` / `LIMIT` /
//! `OFFSET`.
//!
//! Complements `tests/language_properties.rs`, which starts from generated
//! *strings*; here the generator builds [`Query`] values directly, so the
//! property also pins the printer's treatment of every AST shape the
//! validator admits.

use proptest::prelude::*;

use oassis::ql::{
    validate_query, Multiplicity, QlRel, QlTerm, Query, SatPattern, SatisfyingClause, SelectForm,
};
use oassis::sparql::{
    FilterExpr, FilterTerm, GraphPattern, GroupItem, PatTerm, PropPath, SortDir, TriplePattern,
    Var, VarTable, WhereClause,
};
use oassis::store::ontology::figure1_ontology;
use oassis::store::{Ontology, Term};

/// Element names from the figure-1 travel ontology, including ones the
/// printer must angle-quote.
const ELEMENTS: &[&str] = &[
    "Activity",
    "Sport",
    "Biking",
    "Ball Game",
    "Central Park",
    "Attraction",
    "Restaurant",
    "NYC",
    "Maoz Veg.",
];
const RELATIONS: &[&str] = &["doAt", "eatAt", "inside", "nearBy", "subClassOf", "instanceOf"];
/// Subject/object variable pool. Disjoint from [`REL_VARS`] so relation
/// variables never carry a multiplicity (the validator forbids it).
const VARS: &[&str] = &["x", "y", "z", "w", "v"];
const REL_VARS: &[&str] = &["p", "q"];

/// A property path: `(shape, rel1, rel2, kind1, kind2)`. Shapes 0–3 are the
/// elementary modifiers on `rel1`; 4 is `step1/step2`, 5 is `step1|step2`,
/// 6 is the mixed-precedence `rel1/rel2|step1`.
type PathSpec = (u8, usize, usize, u8, u8);
/// One WHERE triple: subject var, path, object (var or element).
type TripleSpec = (usize, PathSpec, (bool, usize, usize));
/// One FILTER: `(op, rhs-is-var, rhs var, const elems)` — applied to the
/// subject variable of the group's first triple, which is always bound.
type FilterSpec = (u8, bool, usize, Vec<usize>);
/// One top-level WHERE item: `(kind, triple, groupA, groupB, filter)`.
/// Kind 0 = triple, 1 = OPTIONAL groupA (+ nested filter), 2 = groupA UNION
/// groupB, 3 = top-level FILTER (downgraded to a triple when no top-level
/// triple precedes it to bind the filter's variable).
type ItemSpec = (u8, TripleSpec, Vec<TripleSpec>, Vec<TripleSpec>, Option<FilterSpec>);
/// Solution modifiers: distinct, ORDER BY keys `(var-pick, desc)`, limit,
/// offset.
type ModSpec = (bool, Vec<(usize, bool)>, Option<u64>, u64);
/// One SATISFYING meta-fact: subject var, relation (var or constant),
/// object (var or element).
type SatSpec = (usize, (bool, usize, usize), (bool, usize, usize));

fn arb_mult() -> impl Strategy<Value = Multiplicity> {
    prop_oneof![
        Just(Multiplicity::One),
        Just(Multiplicity::AtLeastOne),
        Just(Multiplicity::Any),
        Just(Multiplicity::Optional),
        (2u32..5).prop_map(Multiplicity::Exactly),
    ]
}

fn arb_path() -> impl Strategy<Value = PathSpec> {
    (0u8..7, 0..RELATIONS.len(), 0..RELATIONS.len(), 0u8..4, 0u8..4)
}

fn arb_triple() -> impl Strategy<Value = TripleSpec> {
    (
        0..VARS.len(),
        arb_path(),
        (proptest::bool::ANY, 0..VARS.len(), 0..ELEMENTS.len()),
    )
}

fn arb_filter() -> impl Strategy<Value = FilterSpec> {
    (
        0u8..4,
        proptest::bool::ANY,
        0..VARS.len(),
        proptest::collection::vec(0..ELEMENTS.len(), 1..3),
    )
}

fn arb_item() -> impl Strategy<Value = ItemSpec> {
    (
        0u8..4,
        arb_triple(),
        proptest::collection::vec(arb_triple(), 1..3),
        proptest::collection::vec(arb_triple(), 1..3),
        proptest::option::of(arb_filter()),
    )
}

fn arb_mods() -> impl Strategy<Value = ModSpec> {
    (
        proptest::bool::ANY,
        proptest::collection::vec((0..VARS.len(), proptest::bool::ANY), 0..3),
        proptest::option::of(0u64..20),
        0u64..5,
    )
}

fn arb_sat() -> impl Strategy<Value = SatSpec> {
    (
        0..VARS.len(),
        (proptest::bool::ANY, 0..REL_VARS.len(), 0..RELATIONS.len()),
        (proptest::bool::ANY, 0..VARS.len(), 0..ELEMENTS.len()),
    )
}

fn build_path(o: &Ontology, spec: &PathSpec) -> PropPath {
    let rel = |i: usize| o.vocabulary().relation(RELATIONS[i]).expect("known relation");
    let step = |kind: u8, r: usize| match kind {
        0 => PropPath::Rel(rel(r)),
        1 => PropPath::Star(rel(r)),
        2 => PropPath::Plus(rel(r)),
        _ => PropPath::Opt(rel(r)),
    };
    let &(shape, r1, r2, k1, k2) = spec;
    match shape {
        0..=3 => step(shape, r1),
        4 => PropPath::Seq(vec![step(k1, r1), step(k2, r2)]),
        5 => PropPath::Alt(vec![step(k1, r1), step(k2, r2)]),
        // `/` binds tighter than `|`: Alt over a Seq and a step.
        _ => PropPath::Alt(vec![
            PropPath::Seq(vec![PropPath::Rel(rel(r1)), PropPath::Rel(rel(r2))]),
            step(k1, r1),
        ]),
    }
}

fn build_triple(o: &Ontology, vars: &mut VarTable, spec: &TripleSpec) -> TriplePattern {
    let elem = |i: usize| o.vocabulary().element(ELEMENTS[i]).expect("known element");
    let &(subj, ref path, (obj_is_var, obj_var, obj_elem)) = spec;
    let subject = PatTerm::Var(vars.var(VARS[subj]));
    let path = build_path(o, path);
    let object = if obj_is_var {
        PatTerm::Var(vars.var(VARS[obj_var]))
    } else {
        PatTerm::Const(Term::Element(elem(obj_elem)))
    };
    TriplePattern::new(subject, path, object)
}

/// Build a filter whose variables are guaranteed bound: the left operand is
/// `anchor` (the subject of a triple in the same group) and a variable
/// right-hand side reuses the anchor too unless `rhs_var` happens to be
/// bound there already (we keep it simple and always anchor).
fn build_filter(o: &Ontology, anchor: Var, spec: &FilterSpec) -> FilterExpr {
    let elem = |i: usize| Term::Element(o.vocabulary().element(ELEMENTS[i]).expect("known"));
    let &(op, rhs_is_var, _rhs_var, ref consts) = spec;
    let rhs = if rhs_is_var {
        FilterTerm::Var(anchor)
    } else {
        FilterTerm::Const(elem(consts[0]))
    };
    match op {
        0 => FilterExpr::Eq(FilterTerm::Var(anchor), rhs),
        1 => FilterExpr::Ne(FilterTerm::Var(anchor), rhs),
        2 => FilterExpr::In(anchor, consts.iter().map(|&i| elem(i)).collect()),
        _ => FilterExpr::NotIn(anchor, consts.iter().map(|&i| elem(i)).collect()),
    }
}

/// Build a nested group from triples plus an optional trailing filter
/// anchored on the first triple's subject.
fn build_group(
    o: &Ontology,
    vars: &mut VarTable,
    triples: &[TripleSpec],
    filter: &Option<FilterSpec>,
) -> GraphPattern {
    let mut items: Vec<GroupItem> = Vec::new();
    let mut anchor = None;
    for t in triples {
        let triple = build_triple(o, vars, t);
        if anchor.is_none() {
            anchor = triple.subject.as_var();
        }
        items.push(GroupItem::Triple(triple));
    }
    if let (Some(f), Some(a)) = (filter, anchor) {
        items.push(GroupItem::Filter(build_filter(o, a, f)));
    }
    GraphPattern { items }
}

fn build_where(
    o: &Ontology,
    vars: &mut VarTable,
    items: &[ItemSpec],
    mods: &ModSpec,
) -> WhereClause {
    let mut out: Vec<GroupItem> = Vec::new();
    let mut top_anchor: Option<Var> = None;
    for (kind, triple, group_a, group_b, filter) in items {
        match kind {
            1 => out.push(GroupItem::Optional(build_group(o, vars, group_a, filter))),
            2 => out.push(GroupItem::Union(vec![
                build_group(o, vars, group_a, &None),
                build_group(o, vars, group_b, &None),
            ])),
            3 if top_anchor.is_some() && filter.is_some() => out.push(GroupItem::Filter(
                build_filter(o, top_anchor.unwrap(), filter.as_ref().unwrap()),
            )),
            // Kind 0, or a filter with nothing to anchor on: plain triple.
            _ => {
                let t = build_triple(o, vars, triple);
                if top_anchor.is_none() {
                    top_anchor = t.subject.as_var();
                }
                out.push(GroupItem::Triple(t));
            }
        }
    }
    let (distinct, order, limit, offset) = mods;
    // ORDER BY keys must be query variables; reuse the pattern's vars.
    let available: Vec<Var> = {
        let mut seen = std::collections::HashSet::new();
        let pattern = GraphPattern { items: out.clone() };
        pattern
            .all_triples()
            .iter()
            .flat_map(|t| t.vars())
            .filter(|v| seen.insert(*v))
            .collect()
    };
    let mut order_by: Vec<(Var, SortDir)> = Vec::new();
    if !available.is_empty() {
        for &(pick, desc) in order {
            let v = available[pick % available.len()];
            order_by.push((v, if desc { SortDir::Desc } else { SortDir::Asc }));
        }
    }
    WhereClause {
        pattern: GraphPattern { items: out },
        distinct: *distinct,
        order_by,
        limit: *limit,
        offset: *offset,
    }
}

/// Build a validator-clean query AST from the generated spec. Variables are
/// interned in first-textual-occurrence order — exactly the order the
/// parser assigns ids in — and each subject/object variable uses one fixed
/// multiplicity everywhere it occurs (repeated equal annotations are
/// legal; conflicting ones are not).
#[allow(clippy::too_many_arguments)]
fn build_query(
    o: &Ontology,
    select_variables: bool,
    all: bool,
    wheres: &[ItemSpec],
    mods: &ModSpec,
    sats: &[SatSpec],
    mults: &[Multiplicity],
    more: bool,
    support: f64,
) -> Query {
    let vocab = o.vocabulary();
    let elem = |i: usize| vocab.element(ELEMENTS[i]).expect("known element");
    let rel = |i: usize| vocab.relation(RELATIONS[i]).expect("known relation");

    let mut vars = VarTable::new();
    let where_clause = build_where(o, &mut vars, wheres, mods);

    let patterns: Vec<SatPattern> = sats
        .iter()
        .map(|&(subj, (rel_is_var, rel_var, rel_const), (obj_is_var, obj_var, obj_elem))| {
            let subject = QlTerm::Var(vars.var(VARS[subj]));
            let subject_mult = mults[subj];
            let relation = if rel_is_var {
                QlRel::Var(vars.var(REL_VARS[rel_var]))
            } else {
                QlRel::Relation(rel(rel_const))
            };
            let (object, object_mult) = if obj_is_var {
                (QlTerm::Var(vars.var(VARS[obj_var])), mults[obj_var])
            } else {
                (QlTerm::Element(elem(obj_elem)), Multiplicity::One)
            };
            SatPattern {
                subject,
                subject_mult,
                relation,
                object,
                object_mult,
            }
        })
        .collect();

    Query {
        select: if select_variables {
            SelectForm::Variables
        } else {
            SelectForm::FactSets
        },
        all,
        where_clause,
        satisfying: SatisfyingClause {
            patterns,
            more,
            support,
        },
        vars,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(ast)) == ast`: the printer loses nothing the parser
    /// needs, and the parser reconstructs the same structure (same
    /// variable ids, since both sides number by first occurrence).
    #[test]
    fn displayed_ast_reparses_to_the_same_ast(
        select_variables in proptest::bool::ANY,
        all in proptest::bool::ANY,
        wheres in proptest::collection::vec(arb_item(), 0..4),
        mods in arb_mods(),
        sats in proptest::collection::vec(arb_sat(), 1..4),
        mults in proptest::collection::vec(arb_mult(), VARS.len()),
        more in proptest::bool::ANY,
        support in (0u32..=100).prop_map(|n| n as f64 / 100.0),
    ) {
        let o = figure1_ontology();
        let ast = build_query(
            &o, select_variables, all, &wheres, &mods, &sats, &mults, more, support,
        );
        prop_assert!(
            validate_query(&ast).is_ok(),
            "the generator must only build validator-clean ASTs"
        );

        let printed = ast.to_ql_string(&o);
        let reparsed = match oassis::ql::parse_query(&printed, &o) {
            Ok(q) => q,
            Err(e) => return Err(TestCaseError::fail(format!(
                "printed AST failed to reparse: {e}\n{printed}"
            ))),
        };

        prop_assert_eq!(ast.select, reparsed.select);
        prop_assert_eq!(ast.all, reparsed.all);
        prop_assert_eq!(&ast.where_clause, &reparsed.where_clause, "\n{}", &printed);
        prop_assert_eq!(&ast.satisfying, &reparsed.satisfying, "\n{}", &printed);
        // Variable identity survives: same count, names and id order.
        prop_assert_eq!(ast.vars.len(), reparsed.vars.len(), "\n{}", &printed);
        for v in ast.vars.iter() {
            prop_assert_eq!(ast.vars.name(v), reparsed.vars.name(v), "\n{}", &printed);
        }
        // And display is a fixpoint.
        prop_assert_eq!(printed.clone(), reparsed.to_ql_string(&o));
    }
}
