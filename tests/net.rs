//! End-to-end smoke tests for the wire protocol (`oassis-net`) over real
//! TCP loopback: a served session must produce exactly the valid-MSP set
//! of the in-process serial run, `Submit` tokens must deduplicate, and
//! protocol-version mismatches must be refused.
//!
//! The adversarial cases — crashes, partitions, drops, duplicates — live
//! in the deterministic protocol crash oracle (`oassis-simtest`, `sim
//! net-sweep`); these tests only pin the happy path onto real sockets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oassis::core::{EngineConfig, Oassis, OassisService, QueryResult, SessionRuntime, SessionSpec};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::net::{
    NetClient, NetServer, Request, Response, TcpNetServer, TcpTransport, WireStatus,
    PROTOCOL_VERSION,
};
use oassis::store::ontology::figure1_ontology;

const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

fn figure1_crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

/// A small aggregator sample keeps the figure-1 valid-MSP set non-empty
/// (the whole-crowd default averages the two answer databases below the
/// support threshold).
fn test_config() -> EngineConfig {
    EngineConfig::builder().aggregator_sample(4).build()
}

fn valid_msp_set(result: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = result
        .answers
        .iter()
        .filter(|a| a.valid)
        .map(|a| a.rendered.clone())
        .collect();
    v.sort();
    v
}

/// Spin up a served loopback service and hand the client side to `drive`.
/// The service (and its boxed crowd) is not `Send`, so the *server* stays
/// on this thread and the client runs on a spawned one; the server loop
/// exits once the client is done, and a client panic is re-raised here.
fn with_loopback_server(drive: impl FnOnce(&mut NetClient<TcpTransport>) + Send + 'static) {
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let service = OassisService::start(engine, runtime);
    let mut tcp = TcpNetServer::bind("127.0.0.1:0", NetServer::new(service)).expect("bind");
    let addr = tcp.local_addr().expect("bound").to_string();

    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let handle = std::thread::spawn(move || {
        let transport = TcpTransport::connect(addr).expect("connect");
        let mut client = NetClient::new(transport);
        drive(&mut client);
        client.close();
        done_flag.store(true, Ordering::Relaxed);
    });

    tcp.serve_until(|| done.load(Ordering::Relaxed) || handle.is_finished())
        .expect("serve");
    handle.join().expect("client thread");
}

/// One round-trip; panics unless exactly one response frame comes back.
fn call_one(client: &mut NetClient<TcpTransport>, req: &Request) -> Response {
    let mut batch = client.call(req).expect("call");
    assert_eq!(batch.len(), 1, "expected a single-frame batch: {batch:?}");
    batch.remove(0)
}

#[test]
fn tcp_loopback_session_matches_in_process_run() {
    // Serial in-process baseline.
    let engine = Oassis::new(figure1_ontology());
    let mut members = figure1_crowd(2);
    let serial = engine.execute(QUERY, &mut members, &test_config()).unwrap();
    let serial_msps = valid_msp_set(&serial);
    assert!(!serial_msps.is_empty(), "vacuous baseline");

    with_loopback_server(move |client| {
        match call_one(client, &Request::Hello { version: PROTOCOL_VERSION }) {
            Response::Welcome { version, crowd } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(crowd, 4);
            }
            other => panic!("expected Welcome, got {other:?}"),
        }

        let spec = SessionSpec::builder(QUERY)
            .config(test_config())
            .build()
            .to_admit(Some(17));
        let session = match call_one(client, &Request::Submit { spec: spec.clone() }) {
            Response::Admitted { session } => session,
            other => panic!("expected Admitted, got {other:?}"),
        };

        // Token dedup: retrying the same Submit lands on the same session.
        match call_one(client, &Request::Submit { spec }) {
            Response::Admitted { session: again } => assert_eq!(again, session),
            other => panic!("expected deduplicated Admitted, got {other:?}"),
        }

        // Poll until the terminal update; partial Answer frames stream in
        // ahead of it and must never exceed the final valid set.
        let mut streamed: Vec<String> = Vec::new();
        let final_update = loop {
            let batch = client.call(&Request::Poll { session }).expect("poll");
            let (terminal, partials): (Vec<_>, Vec<_>) =
                batch.into_iter().partition(Response::is_terminal);
            for p in partials {
                match p {
                    Response::Answer { valid, rendered, .. } => {
                        if valid {
                            streamed.push(rendered);
                        }
                    }
                    other => panic!("non-terminal frame must be Answer, got {other:?}"),
                }
            }
            assert_eq!(terminal.len(), 1, "every batch ends in one terminal frame");
            match terminal.into_iter().next().unwrap() {
                Response::Update { status, msps, crowd_questions, .. }
                    if status != WireStatus::Running =>
                {
                    assert_eq!(status, WireStatus::Completed);
                    assert!(crowd_questions > 0, "the crowd was never asked");
                    break msps;
                }
                Response::Update { .. } => {} // still running; poll again
                other => panic!("expected Update, got {other:?}"),
            }
        };

        assert_eq!(final_update, serial_msps, "served session diverged");
        streamed.sort();
        streamed.dedup();
        assert!(
            streamed.iter().all(|m| serial_msps.contains(m)),
            "streamed partial outside the final valid set"
        );

        // A finished session's report replays identically on a re-poll.
        let batch = client.call(&Request::Poll { session }).expect("re-poll");
        match batch.last().expect("terminal") {
            Response::Update { status, msps, .. } => {
                assert_eq!(*status, WireStatus::Completed);
                assert_eq!(*msps, serial_msps);
            }
            other => panic!("expected Update, got {other:?}"),
        }

        assert!(matches!(call_one(client, &Request::Close), Response::Bye));
    });
}

#[test]
fn tcp_loopback_rejects_version_and_unknown_sessions() {
    with_loopback_server(|client| {
        match call_one(client, &Request::Hello { version: PROTOCOL_VERSION + 1 }) {
            Response::Error { detail } => assert!(detail.contains("version")),
            other => panic!("expected version Error, got {other:?}"),
        }
        // The connection survives a refused Hello.
        match call_one(client, &Request::Hello { version: PROTOCOL_VERSION }) {
            Response::Welcome { .. } => {}
            other => panic!("expected Welcome, got {other:?}"),
        }
        match client
            .call(&Request::Poll { session: 999 })
            .expect("poll")
            .pop()
            .expect("one frame")
        {
            Response::Error { detail } => assert!(detail.contains("unknown session")),
            other => panic!("expected unknown-session Error, got {other:?}"),
        }
        // Submit without a token is refused outright.
        let spec = SessionSpec::builder(QUERY).build().to_admit(None);
        match call_one(client, &Request::Submit { spec }) {
            Response::Error { detail } => assert!(detail.contains("token")),
            other => panic!("expected token Error, got {other:?}"),
        }
    });
}
