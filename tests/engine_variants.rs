//! Integration tests for engine variants: pluggable aggregators, syntactic
//! matching mode, relation-variable mining, and question caps.

use std::sync::Arc;

use oassis::core::{AssignSpace, EngineConfig, MultiUserMiner, Oassis};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{
    CrowdMember, DbMember, MajorityVoteAggregator, MemberId, SequentialAggregator,
};
use oassis::sparql::MatchMode;
use oassis::store::ontology::figure1_ontology;

const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

fn crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

fn space_for(engine: &Oassis, cfg: &EngineConfig) -> AssignSpace {
    let query = engine.parse(QUERY).unwrap();
    engine.space(&query, cfg).unwrap()
}

/// Majority voting changes borderline outcomes: Biking@CP has per-member
/// supports (1/3, 1/2, ...): the average is 5/12 ≥ 0.4 but only half the
/// members individually meet 0.4, so the vote still passes (≥ half), while
/// Monkey@BronxZoo (2/3 and 1/2) passes both.
#[test]
fn majority_vote_aggregator_plugs_in() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::default();
    let space = space_for(&engine, &cfg);
    let miner = MultiUserMiner::new(&space, 0.4, &cfg)
        .with_aggregator(Box::new(MajorityVoteAggregator { sample_size: 4 }));
    let mut members = crowd(2);
    let (result, _) = miner.run_direct(&mut members);
    let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();
    assert!(
        rendered.iter().any(|r| r.contains("Feed a monkey")),
        "answers: {rendered:?}"
    );
    // Every reported answer had at least half its voters at/above 0.4.
    for a in &result.answers {
        let votes = result.cache.supports(&a.factset);
        if votes.is_empty() {
            continue;
        }
        let yes = votes.iter().filter(|&&s| s >= 0.4).count();
        assert!(2 * yes >= votes.len(), "{} lost its vote", a.rendered);
    }
}

/// The sequential aggregator early-stops on clear-cut assignments: a run
/// with it never needs more answers per assignment than its max_samples.
#[test]
fn sequential_aggregator_bounds_answers_per_assignment() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::default();
    let space = space_for(&engine, &cfg);
    let agg = SequentialAggregator {
        min_samples: 2,
        max_samples: 4,
        z: 1.96,
    };
    let miner = MultiUserMiner::new(&space, 0.4, &cfg).with_aggregator(Box::new(agg));
    let mut members = crowd(3);
    let (result, cache) = miner.run_direct(&mut members);
    assert!(!result.answers.is_empty());
    // The root (support 1.0 for everyone) must have been decided at
    // min_samples, not at the fixed five of the default rule.
    let max_answers = cache.iter().map(|(_, a)| a.len()).max().unwrap_or(0);
    assert!(
        max_answers <= 6,
        "sequential should stop early, got {max_answers}"
    );
}

/// Syntactic matching mode restricts the WHERE solutions (no instanceOf
/// traversal for subClassOf*), shrinking the space.
#[test]
fn syntactic_mode_yields_smaller_space() {
    let engine = Oassis::new(figure1_ontology());
    let semantic = EngineConfig::builder().mode(MatchMode::Semantic).build();
    let syntactic = EngineConfig::builder().mode(MatchMode::Syntactic).build();
    let sem_space = space_for(&engine, &semantic);
    let syn_space = space_for(&engine, &syntactic);
    assert!(
        syn_space.base_count() < sem_space.base_count(),
        "syntactic {} vs semantic {}",
        syn_space.base_count(),
        sem_space.base_count()
    );
}

/// Relation-variable mining: `$y $p <Central Park>` discovers which
/// relation connects activities to the park.
#[test]
fn relation_variable_mining() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::builder().aggregator_sample(1).build();
    let mut members = crowd(1);
    members.truncate(1); // u1 only
    let result = engine
        .execute(
            "SELECT VARIABLES WHERE $y subClassOf* Activity \
             SATISFYING $y $p <Central Park> WITH SUPPORT = 0.3",
            &mut members,
            &cfg,
        )
        .unwrap();
    assert!(
        result
            .answers
            .iter()
            .any(|a| a.rendered.contains("p: doAt")),
        "answers: {:?}",
        result
            .answers
            .iter()
            .map(|a| &a.rendered)
            .collect::<Vec<_>>()
    );
}

/// max_questions caps the multi-user run.
#[test]
fn question_cap_is_respected() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::builder().max_questions(7).build();
    let mut members = crowd(3);
    let result = engine.execute(QUERY, &mut members, &cfg).unwrap();
    assert!(result.stats.total_questions <= 7);
}

/// Enumeration caps report `None` instead of silently truncating.
#[test]
fn enumeration_cap_returns_none() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::default();
    let space = space_for(&engine, &cfg);
    assert!(space.enumerate_single_valued(3).is_none());
    assert!(space.enumerate_single_valued(1_000_000).is_some());
}

/// A constants-only SATISFYING clause (no variables at all) asks exactly
/// one question per member sample and returns the single pattern iff
/// significant.
#[test]
fn constant_only_satisfying_clause() {
    let engine = Oassis::new(figure1_ontology());
    let cfg = EngineConfig::builder().aggregator_sample(2).build();
    let mut members = crowd(1);
    let result = engine
        .execute(
            "SELECT FACT-SETS WHERE \
             SATISFYING <Feed a monkey> doAt <Bronx Zoo> WITH SUPPORT = 0.5",
            &mut members,
            &cfg,
        )
        .unwrap();
    // avg(4/6, 1/2) = 7/12 ≥ 0.5: the constant pattern is the one answer.
    assert_eq!(result.answers.len(), 1);
    assert!(result.answers[0].rendered.contains("Feed a monkey"));
    assert_eq!(result.stats.unique_questions, 1);

    // And an insignificant constant pattern yields no answers.
    let mut members = crowd(1);
    let none = engine
        .execute(
            "SELECT FACT-SETS WHERE \
             SATISFYING Basketball doAt <Central Park> WITH SUPPORT = 0.5",
            &mut members,
            &cfg,
        )
        .unwrap();
    assert!(none.answers.is_empty());
}

/// Zero crowd members: the run terminates immediately with no answers.
#[test]
fn empty_crowd_terminates() {
    let engine = Oassis::new(figure1_ontology());
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    let result = engine
        .execute(QUERY, &mut members, &EngineConfig::default())
        .unwrap();
    assert!(result.answers.is_empty());
    assert_eq!(result.stats.total_questions, 0);
}

/// A WHERE clause with no solutions yields an empty space and no questions.
#[test]
fn unsatisfiable_where_clause() {
    let engine = Oassis::new(figure1_ontology());
    let mut members = crowd(1);
    // Restaurants are not subclasses of Activity.
    let result = engine
        .execute(
            "SELECT FACT-SETS WHERE \
               $y subClassOf* Activity. $y instanceOf Restaurant \
             SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3",
            &mut members,
            &EngineConfig::default(),
        )
        .unwrap();
    assert!(result.answers.is_empty());
    assert_eq!(result.stats.total_questions, 0);
}
