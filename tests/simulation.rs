//! The deterministic simulation harness driven in-tree (see
//! `docs/testing.md` and `crates/simtest`).
//!
//! Everything here runs on the runtime's single-threaded simulation
//! executor: a seeded scheduler owns every interleaving decision, waiting
//! happens on a virtual clock, and a whole concurrent session replays
//! bit-identically from one `u64` seed. Reproduce any failing seed with
//! `OASSIS_SIM_SEED=<seed> cargo test --test simulation` or the driver:
//! `cargo run --release -p oassis-simtest --bin sim -- repro <seed>`.

use oassis_simtest::{check_seed, durability_sweep, simulate, sweep, SimOptions, REGRESSION_SEEDS};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Same seed ⇒ byte-identical transcript (question order, retries,
/// exclusions) and identical scheduling decisions, across two consecutive
/// runs — the harness's foundational property.
#[test]
fn same_seed_replays_byte_identical_transcripts() {
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let a = simulate(seed, &SimOptions::default());
        let b = simulate(seed, &SimOptions::default());
        assert_eq!(
            a.transcript.as_bytes(),
            b.transcript.as_bytes(),
            "seed {seed}: transcripts must be byte-identical"
        );
        assert_eq!(a.decisions, b.decisions, "seed {seed}");
        assert!(!a.transcript.is_empty(), "seed {seed}: empty transcript");
        assert!(a.error.is_none(), "seed {seed}: {:?}", a.error);
    }
}

/// A seed sweep with faults enabled passes every oracle (replay,
/// concurrent≡sequential, indexed≡unindexed, obs-event conservation).
/// Default is a smoke-sized sweep to keep `cargo test` snappy;
/// `OASSIS_SIM_SEEDS=256 cargo test --test simulation` (or
/// `make sim SEEDS=10000`, which uses the release driver) runs the long
/// version.
#[test]
fn fault_sweep_passes_all_oracles() {
    let n = env_u64("OASSIS_SIM_SEEDS").unwrap_or(16);
    let report = sweep(0..n);
    assert!(
        report.failures.is_empty(),
        "{} of {} seeds failed; first: {}",
        report.failures.len(),
        n,
        report.failures[0]
    );
    assert_eq!(report.passed, n);
}

/// The regression corpus: seeds that pin down fixed bug classes — most
/// importantly the timeout-vs-late-answer race (the latency family scripts
/// member 0's first answer to land exactly on the deadline; it must be
/// committed, never excluded; see `oassis_simtest::REGRESSION_SEEDS`).
#[test]
fn regression_seed_corpus_passes() {
    for &seed in REGRESSION_SEEDS {
        if let Err(failure) = check_seed(seed) {
            panic!("regression corpus: {failure}");
        }
    }
}

/// The crash-restart oracle, smoke-sized: durable service runs killed at
/// sampled WAL indices and recovered must reproduce the uninterrupted
/// valid-MSP sets (overlapping sessions) and crowd-question counts
/// (disjoint sessions). The 64-seed version runs in `scripts/check.sh`
/// via `sim durability-sweep`.
#[test]
fn durability_sweep_passes_all_oracles() {
    let n = env_u64("OASSIS_SIM_SEEDS").unwrap_or(8);
    let report = durability_sweep(0..n);
    assert!(
        report.failures.is_empty(),
        "{} of {} seeds failed; first: {}",
        report.failures.len(),
        n,
        report.failures[0]
    );
    assert_eq!(report.passed, n);
}

/// Replay one seed from the environment (the printed repro one-liner lands
/// here). Without `OASSIS_SIM_SEED` this replays seed 42 as a smoke check.
#[test]
fn repro_seed_from_env() {
    let seed = env_u64("OASSIS_SIM_SEED").unwrap_or(42);
    if let Err(failure) = check_seed(seed) {
        let outcome = simulate(seed, &SimOptions::default());
        panic!(
            "{failure}\ntranscript tail:\n{}",
            outcome
                .transcript
                .lines()
                .rev()
                .take(12)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
