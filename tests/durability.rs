//! Integration tests for the durability layer: a file-backed service
//! surviving restart, exhaustive kill-point recovery on a small plan,
//! conservative budget accounting across a crash, and torn-tail /
//! corrupt-log handling through `OassisService::recover`.

use std::sync::{Arc, Mutex};

use oassis::core::{
    EngineConfig, Oassis, OassisError, OassisService, SessionRuntime, SessionSpec, SessionStatus,
};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId};
use oassis::store::ontology::figure1_ontology;
use oassis::store_durable::{InMemory, SharedPersistence, WalRecord, WAL_FILE};
use oassis_simtest::{
    finish_after_crash, service_plans, simulate_durable_service, SIM_SNAPSHOT_EVERY,
};

const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

fn figure1_crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oassis-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A file-backed service persists across a restart: the second process
/// sees no open sessions (the first closed cleanly) but inherits the
/// answer store, so an identical session is seeded and barely asks the
/// crowd.
#[test]
fn file_backed_service_survives_restart() {
    let dir = temp_dir("restart");

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, recovered) =
        OassisService::recover(engine, runtime, &dir).expect("fresh dir opens empty");
    assert!(recovered.is_empty(), "an empty log recovers nothing");
    service
        .submit(SessionSpec::builder(QUERY).build())
        .unwrap();
    let first = service.run().remove(0);
    assert_eq!(first.status, SessionStatus::Completed);
    assert!(first.crowd_questions > 0);
    drop(service);
    assert!(dir.join(WAL_FILE).exists(), "the WAL file must be on disk");

    // "Restart": a brand-new process image over the same directory.
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, recovered) =
        OassisService::recover(engine, runtime, &dir).expect("log replays");
    assert!(recovered.is_empty(), "the only session closed cleanly");
    service
        .submit(SessionSpec::builder(QUERY).build())
        .unwrap();
    let second = service.run().remove(0);
    assert_eq!(second.status, SessionStatus::Completed);
    assert_eq!(
        first
            .result
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.clone())
            .collect::<std::collections::BTreeSet<_>>(),
        second
            .result
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.clone())
            .collect::<std::collections::BTreeSet<_>>(),
        "recovered store changed the answers"
    );
    assert!(
        second.crowd_questions < first.crowd_questions,
        "recovered answers must seed the new session: {} vs {}",
        second.crowd_questions,
        first.crowd_questions
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing a single-session durable run at *every* append index and
/// recovering always reproduces the uninterrupted valid-MSP set (the
/// sampled sweep in `oassis-simtest` covers many seeds; this nails every
/// index for one).
#[test]
fn every_kill_point_recovers_the_same_answers() {
    let seed = 7;
    let plans = service_plans(1);
    let run = simulate_durable_service(seed, &plans, false, Some(SIM_SNAPSHOT_EVERY));
    let log = run.log.lock().unwrap();
    assert!(log.snapshot_count() > 0, "the sweep must cross a compaction");
    let expected = &run.outcome.sessions[0].msps;
    assert!(!expected.is_empty(), "vacuous comparison");
    for k in 0..=log.history_len() {
        let finished = finish_after_crash(seed, &plans, false, &log, k);
        let got = finished[0].as_ref().map_or(expected, |o| &o.msps);
        assert_eq!(
            got, expected,
            "kill at {k}/{} diverged",
            log.history_len()
        );
    }
}

/// Budget accounting survives a crash conservatively: the resumption's
/// grant is the original minus the watermarked spend, so the two run
/// legs together never dispatch more than the original budget.
#[test]
fn budget_is_never_overspent_across_a_crash() {
    let budget = 3usize;
    let mem = Arc::new(Mutex::new(InMemory::new()));
    let persistence: SharedPersistence = Arc::clone(&mem) as SharedPersistence;
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start_with_persistence(
        engine,
        runtime,
        oassis::obs::null_sink(),
        persistence,
    );
    service
        .submit(SessionSpec::builder(QUERY).budget(budget).build())
        .unwrap();
    let report = service.run().remove(0);
    assert_eq!(report.status, SessionStatus::BudgetExhausted);
    drop(service);

    let log = mem.lock().unwrap();
    // Crash right before the session closed: the last Budget watermark is
    // the committed spend.
    let close_idx = log
        .history()
        .iter()
        .position(|r| matches!(r, WalRecord::Close { .. }))
        .expect("the run closed its session");
    let crash: SharedPersistence = Arc::new(Mutex::new(log.crashed_at(close_idx)));
    drop(log);

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, mut recovered) =
        OassisService::recover_with(engine, runtime, oassis::obs::null_sink(), crash)
            .expect("crash image replays");
    assert_eq!(recovered.len(), 1, "the interrupted session is recovered");
    let session = recovered.remove(0);
    assert!(session.spent > 0, "the watermark recorded the spend");
    assert!(session.spent <= budget, "spend within the grant");
    assert_eq!(session.spec.budget, Some(budget), "original grant kept");

    let spent_before = session.spent;
    service.resume(session).unwrap();
    let resumed = service.run().remove(0);
    assert!(
        spent_before + resumed.crowd_questions <= budget,
        "crash + resume overspent: {spent_before} + {} > {budget}",
        resumed.crowd_questions
    );
}

/// A torn tail (a partial last line, as left by a crash mid-write) is
/// truncated and recovery proceeds; interior corruption is refused.
#[test]
fn torn_tail_recovers_and_interior_corruption_is_fatal() {
    let dir = temp_dir("torn");
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, _) = OassisService::recover(engine, runtime, &dir).unwrap();
    service
        .submit(SessionSpec::builder(QUERY).build())
        .unwrap();
    let first = service.run().remove(0);
    drop(service);

    // Crash mid-append: garbage with no trailing newline.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(b"9999|a|torn-mid-wri");
    std::fs::write(&wal, &bytes).unwrap();

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (mut service, recovered) =
        OassisService::recover(engine, runtime, &dir).expect("torn tail is recoverable");
    assert!(recovered.is_empty());
    service
        .submit(SessionSpec::builder(QUERY).build())
        .unwrap();
    let second = service.run().remove(0);
    assert!(
        second.crowd_questions < first.crowd_questions,
        "every committed answer must survive the torn tail"
    );
    drop(service);

    // Interior damage is not a crash artifact — recovery must refuse.
    let content = std::fs::read_to_string(&wal).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() > 4, "need an interior line to corrupt");
    let mut damaged: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mid = damaged.len() / 2;
    damaged[mid] = damaged[mid].replace('|', "!");
    std::fs::write(&wal, damaged.join("\n") + "\n").unwrap();

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    match OassisService::recover(engine, runtime, &dir) {
        Err(OassisError::Durability(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("corrupt"), "unexpected error: {msg}");
        }
        Ok(_) => panic!("interior corruption must not recover"),
        Err(e) => panic!("wrong error kind: {e}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The engine-level config survives the log: a session admitted with a
/// non-default seed and sample recovers with the same values.
#[test]
fn admitted_config_round_trips_through_the_log() {
    let mem = Arc::new(Mutex::new(InMemory::new()));
    let persistence: SharedPersistence = Arc::clone(&mem) as SharedPersistence;
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let mut service = OassisService::start_with_persistence(
        engine,
        runtime,
        oassis::obs::null_sink(),
        persistence,
    );
    let cfg = EngineConfig::builder().seed(41).aggregator_sample(3).build();
    let spec = SessionSpec::builder(QUERY)
        .threshold(0.5)
        .priority(2)
        .config(cfg)
        .build();
    service.submit(spec).unwrap();
    // Crash before any mining happened: only the Admit record exists.
    let crash: SharedPersistence = {
        let log = mem.lock().unwrap();
        Arc::new(Mutex::new(log.crashed_at(1)))
    };
    drop(service);

    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(figure1_crowd(2));
    let (_service, recovered) =
        OassisService::recover_with(engine, runtime, oassis::obs::null_sink(), crash).unwrap();
    assert_eq!(recovered.len(), 1);
    let spec = &recovered[0].spec;
    assert_eq!(spec.query, QUERY);
    assert_eq!(spec.threshold, Some(0.5));
    assert_eq!(spec.priority, 2);
    assert_eq!(spec.config.seed, 41);
    assert_eq!(spec.config.aggregator_sample, 3);
}
