//! Property tests of the lazy assignment DAG (Section 5 invariants), over
//! randomly shaped synthetic instances.

use proptest::prelude::*;

use oassis::datagen::{SynthConfig, SynthInstance};

fn instance(width: usize, depth: usize, two_vars: bool, mult: bool, seed: u64) -> SynthInstance {
    SynthInstance::generate(&SynthConfig {
        width,
        depth,
        multiplicities: mult,
        two_vars,
        threshold: 0.2,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Successor/predecessor duality: every generated successor lists the
    /// node among its predecessors, and vice versa.
    #[test]
    fn successors_and_predecessors_are_dual(
        width in 10usize..40,
        depth in 2usize..5,
        two_vars in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, depth, two_vars, false, seed);
        for node in inst.all_nodes.iter().step_by(7).take(12) {
            for s in inst.space.successors(node) {
                prop_assert!(
                    inst.space.predecessors(&s).contains(node),
                    "{node} -> {s} not dual"
                );
            }
            for p in inst.space.predecessors(node) {
                prop_assert!(
                    inst.space.successors(&p).contains(node),
                    "{p} -> {node} not dual"
                );
            }
        }
    }

    /// Edges are strict and one-step: φ < succ(φ), and no other node of 𝒜
    /// lies strictly between an edge's endpoints.
    #[test]
    fn edges_are_immediate(
        width in 10usize..30,
        depth in 2usize..4,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, depth, false, false, seed);
        let vocab = inst.space.ontology().vocabulary();
        for node in inst.all_nodes.iter().step_by(11).take(6) {
            for s in inst.space.successors(node) {
                prop_assert!(node.lt(&s, vocab));
                for mid in &inst.all_nodes {
                    prop_assert!(
                        !(node.lt(mid, vocab) && mid.lt(&s, vocab)),
                        "{mid} lies strictly between {node} and {s}"
                    );
                }
            }
        }
    }

    /// 𝒜 is downward closed: predecessors of members are members.
    #[test]
    fn space_is_downward_closed(
        width in 10usize..40,
        depth in 2usize..5,
        two_vars in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, depth, two_vars, false, seed);
        for node in inst.all_nodes.iter().step_by(5).take(20) {
            prop_assert!(inst.space.in_space(node));
            for p in inst.space.predecessors(node) {
                prop_assert!(inst.space.in_space(&p), "predecessor {p} left 𝒜");
            }
        }
    }

    /// Instantiation is monotone: φ ≤ ψ implies φ(A_SAT) ≤ ψ(A_SAT) as
    /// fact-sets (this is what makes Observation 4.4's inference sound).
    #[test]
    fn instantiation_is_monotone(
        width in 10usize..30,
        depth in 2usize..4,
        mult in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, depth, false, mult, seed);
        let vocab = inst.space.ontology().vocabulary();
        for node in inst.all_nodes.iter().step_by(9).take(8) {
            let fs = inst.space.instantiate(node);
            for s in inst.space.successors(node) {
                let fs2 = inst.space.instantiate(&s);
                prop_assert!(
                    vocab.factset_leq(&fs, &fs2),
                    "instantiation not monotone on {node} -> {s}"
                );
            }
        }
    }

    /// Roots are minimal and cover the whole DAG: every node is reachable
    /// from some root by walking predecessors upward.
    #[test]
    fn roots_cover_the_dag(
        width in 10usize..30,
        depth in 2usize..4,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, depth, false, false, seed);
        let vocab = inst.space.ontology().vocabulary();
        let roots = inst.space.roots();
        prop_assert!(!roots.is_empty());
        for node in inst.all_nodes.iter().step_by(13).take(10) {
            prop_assert!(
                roots.iter().any(|r| r.leq(node, vocab)),
                "node {node} is below no root"
            );
        }
    }

    /// Multiplicity combinations obey Proposition 5.1: every valid
    /// multi-valued successor's single-valued selections are valid.
    #[test]
    fn combinations_have_valid_selections(
        width in 8usize..20,
        seed in 0u64..1000,
    ) {
        let inst = instance(width, 3, false, true, seed);
        let vocab = inst.space.ontology().vocabulary().clone();
        let mut checked = 0;
        for node in &inst.valid_nodes {
            for s in inst.space.successors(node) {
                if s.is_single_valued() || !inst.space.is_valid(&s) {
                    continue;
                }
                checked += 1;
                // Each value of the multi-set, taken alone, must be valid.
                for x in 0..s.nvars() {
                    for &v in s.values(x) {
                        let single = s.with_values(x, vec![v], &vocab);
                        prop_assert!(
                            inst.space.is_valid(&single),
                            "selection {single} of {s} is not valid"
                        );
                    }
                }
                if checked > 10 {
                    return Ok(());
                }
            }
        }
    }
}
