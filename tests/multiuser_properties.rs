//! Property tests for the multi-user engine (Section 4.2): with a crowd of
//! identical members and a sample size equal to the crowd, the aggregate is
//! each member's own answer — so the multi-user run must find exactly the
//! single-user vertical algorithm's MSPs; and the engine must be
//! deterministic for a fixed seed.

use proptest::prelude::*;
use std::sync::Arc;

use oassis::core::{EngineConfig, MinerConfig, Oassis, VerticalMiner};
use oassis::crowd::{CrowdMember, MemberId};
use oassis::datagen::{plant_msps, MspDistribution, PlantedOracle, SynthConfig, SynthInstance};
use oassis::sparql::MatchMode;

fn instance(width: usize, depth: usize, seed: u64) -> SynthInstance {
    SynthInstance::generate(&SynthConfig {
        width,
        depth,
        threshold: 0.2,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Multi-user with k identical oracles (sample size k) finds the same
    /// MSP set as the single-user vertical algorithm.
    #[test]
    fn clones_reduce_to_single_user(
        width in 15usize..50,
        depth in 2usize..5,
        n_msps in 1usize..6,
        k in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let inst = instance(width, depth, seed);
        let planted = plant_msps(
            &inst.space, &inst.valid_nodes, n_msps, MspDistribution::Uniform, seed,
        );

        // Single user.
        let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
        let single = VerticalMiner::run(&inst.space, &mut oracle, &MinerConfig::new(0.2));

        // k clones through the engine.
        let engine = Oassis::from_arc(Arc::clone(&inst.ontology));
        let query = engine.parse(&inst.query_src).unwrap();
        let cfg = EngineConfig::builder()
            .aggregator_sample(k)
            .mode(MatchMode::Semantic)
            .build();
        let mut members: Vec<Box<dyn CrowdMember>> = (0..k)
            .map(|i| {
                Box::new(PlantedOracle::new(
                    MemberId(i as u32),
                    &inst.space,
                    &planted,
                    0.5,
                )) as Box<dyn CrowdMember>
            })
            .collect();
        let multi = engine.execute_parsed(&query, 0.2, &mut members, &cfg).unwrap();

        let mut single_msps: Vec<String> = single
            .msps
            .iter()
            .map(|m| {
                inst.space
                    .ontology()
                    .vocabulary()
                    .factset_to_string(&inst.space.instantiate(m))
            })
            .collect();
        let mut multi_msps: Vec<String> =
            multi.answers.iter().map(|a| a.rendered.clone()).collect();
        single_msps.sort();
        multi_msps.sort();
        prop_assert_eq!(single_msps, multi_msps);
    }

    /// The engine is deterministic: same members, same seed, same result.
    #[test]
    fn engine_is_deterministic(
        width in 15usize..40,
        n_msps in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let inst = instance(width, 3, seed);
        let planted = plant_msps(
            &inst.space, &inst.valid_nodes, n_msps, MspDistribution::Uniform, seed,
        );
        let engine = Oassis::from_arc(Arc::clone(&inst.ontology));
        let query = engine.parse(&inst.query_src).unwrap();
        let run = || {
            let mut members: Vec<Box<dyn CrowdMember>> = (0..3)
                .map(|i| {
                    Box::new(PlantedOracle::new(
                        MemberId(i as u32),
                        &inst.space,
                        &planted,
                        0.5,
                    )) as Box<dyn CrowdMember>
                })
                .collect();
            let cfg = EngineConfig::builder().aggregator_sample(3).seed(seed).build();
            engine.execute_parsed(&query, 0.2, &mut members, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.stats.total_questions, b.stats.total_questions);
        let ar: Vec<String> = a.answers.iter().map(|x| x.rendered.clone()).collect();
        let br: Vec<String> = b.answers.iter().map(|x| x.rendered.clone()).collect();
        prop_assert_eq!(ar, br);
    }
}
