//! The concurrent crowd-session runtime observed end-to-end: for the same
//! seed, a pooled run must produce exactly the answer set (and question
//! count) of the sequential slice path; slow and dropping members must be
//! timed out, retried and excluded without losing MSPs.
//!
//! Only the first test exercises real worker threads (instant members, so
//! no timing dependence — `scripts/stress.sh` scales it via
//! `OASSIS_STRESS_WORKERS`). Every fault scenario runs on the simulation
//! executor's virtual clock: timeouts and latency cost no wall-clock time
//! and replay deterministically from the sim seed, so nothing here can
//! flake on a slow machine.

use std::sync::Arc;
use std::time::Duration;

use oassis::core::{
    EngineConfig, MultiUserMiner, Oassis, OassisError, SessionRuntime, SimConfig,
};
use oassis::crowd::transaction::table3_dbs;
use oassis::crowd::{CrowdMember, DbMember, MemberId, ResponseModel, UnreliableMember};
use oassis::obs::{names, EventSink, InMemorySink};
use oassis::store::ontology::figure1_ontology;

const QUERY: &str = "SELECT FACT-SETS WHERE \
      $x instanceOf $w. $w subClassOf* Attraction. \
      $y subClassOf* Activity \
    SATISFYING $y doAt $x WITH SUPPORT = 0.4";

/// Worker count for the one genuinely threaded run; override with
/// `OASSIS_STRESS_WORKERS` (see `scripts/stress.sh`).
fn worker_count() -> usize {
    std::env::var("OASSIS_STRESS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// `n_pairs` copies of the paper's u1/u2 member pair. `DbMember` answers
/// are a pure function of the asked fact-set (no noise, no quota), which is
/// exactly the precondition of the runtime's determinism guarantee.
fn crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
    for i in 0..n_pairs {
        members.push(Box::new(DbMember::new(
            MemberId(2 * i),
            d1.clone(),
            Arc::clone(&vocab),
        )));
        members.push(Box::new(DbMember::new(
            MemberId(2 * i + 1),
            d2.clone(),
            Arc::clone(&vocab),
        )));
    }
    members
}

fn valid_msp_set(result: &oassis::core::QueryResult) -> Vec<String> {
    let mut v: Vec<String> = result
        .answers
        .iter()
        .filter(|a| a.valid)
        .map(|a| a.rendered.clone())
        .collect();
    v.sort();
    v
}

/// The headline guarantee on the real threaded executor: concurrent run
/// with seed S == sequential run with seed S — same valid-MSP set, same
/// question count — across seeds. Members answer instantly, so the test
/// has no timing dependence; the OS scheduler still interleaves freely.
#[test]
fn concurrent_matches_sequential_across_seeds() {
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).unwrap();
    for seed in [0u64, 7, 42, 1234] {
        let cfg = EngineConfig::builder().seed(seed).build();
        let space = engine.space(&query, &cfg).unwrap();
        let miner = MultiUserMiner::new(&space, 0.4, &cfg);

        let mut seq_members = crowd(3);
        let (seq, _) = miner.run_direct(&mut seq_members);

        let runtime = SessionRuntime::new(crowd(3)).workers(worker_count());
        let (conc, _) = miner.run(runtime).expect("no members excluded");

        assert_eq!(
            valid_msp_set(&seq),
            valid_msp_set(&conc),
            "seed {seed}: concurrent answer set diverged"
        );
        assert_eq!(
            seq.stats.total_questions, conc.stats.total_questions,
            "seed {seed}: concurrent run asked a different number of questions"
        );
        assert!(!valid_msp_set(&conc).is_empty(), "seed {seed}: empty result");
    }
}

/// Latency alone (no drops) must not change the outcome — the speculative
/// prefetch only ever asks questions the commit loop would ask. On the
/// virtual clock the injected delays (and the generous deadline) cost no
/// wall-clock time, and four schedules are explored per test run.
#[test]
fn latency_does_not_change_answers() {
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).unwrap();
    let cfg = EngineConfig::builder().seed(11).build();
    let space = engine.space(&query, &cfg).unwrap();
    let miner = MultiUserMiner::new(&space, 0.4, &cfg);

    let mut seq_members = crowd(3);
    let (seq, _) = miner.run_direct(&mut seq_members);

    for sim_seed in [0u64, 1, 2, 3] {
        let model = ResponseModel::latency(Duration::from_micros(300))
            .with_jitter(Duration::from_micros(200));
        let slow: Vec<Box<dyn CrowdMember>> = crowd(3)
            .into_iter()
            .enumerate()
            .map(|(i, m)| Box::new(UnreliableMember::new(m, model, 100 + i as u64)) as Box<_>)
            .collect();
        let runtime = SessionRuntime::new(slow)
            .question_timeout(Duration::from_secs(5))
            .simulated(SimConfig::new(sim_seed));
        let (conc, _) = miner.run(runtime).expect("no members excluded");

        assert_eq!(valid_msp_set(&seq), valid_msp_set(&conc), "sim seed {sim_seed}");
        assert_eq!(
            seq.stats.total_questions, conc.stats.total_questions,
            "sim seed {sim_seed}"
        );
    }
}

/// Fault injection on the virtual clock: members that always drop their
/// answers are timed out, retried and excluded — deterministically, with
/// exact event counts — and the healthy rest of the crowd still delivers
/// the full MSP set.
#[test]
fn dropping_members_are_excluded_without_losing_msps() {
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).unwrap();

    let mem = InMemorySink::shared();
    let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
    let cfg = EngineConfig::builder().sink(sink).build();
    let space = engine.space(&query, &cfg).unwrap();
    let miner = MultiUserMiner::new(&space, 0.4, &cfg);

    // Healthy baseline: the crowd without the faulty members.
    let plain_cfg = EngineConfig::default();
    let plain_space = engine.space(&query, &plain_cfg).unwrap();
    let plain_miner = MultiUserMiner::new(&plain_space, 0.4, &plain_cfg);
    let mut healthy = crowd(3);
    let (expected, _) = plain_miner.run_direct(&mut healthy);

    // Same crowd plus two members whose channel drops every answer. The
    // faulty members are clones of healthy ones, so excluding them must
    // not change the aggregate outcome.
    let mut members = crowd(3);
    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let always_drop = ResponseModel::instant().with_drop_probability(1.0);
    members.push(Box::new(UnreliableMember::new(
        Box::new(DbMember::new(MemberId(100), d1, Arc::clone(&vocab))),
        always_drop,
        1,
    )));
    members.push(Box::new(UnreliableMember::new(
        Box::new(DbMember::new(MemberId(101), d2, vocab)),
        always_drop,
        2,
    )));

    let runtime = SessionRuntime::new(members)
        .question_timeout(Duration::from_millis(2))
        .max_retries(1)
        .simulated(SimConfig::new(99));
    let (result, _) = miner.run(runtime).expect("healthy members remain");

    assert_eq!(valid_msp_set(&expected), valid_msp_set(&result));

    let snap = mem.snapshot();
    assert_eq!(
        snap.counter(&format!("{}[timeout]", names::RUNTIME_MEMBER_EXCLUDED)),
        2,
        "both dropping members must be excluded"
    );
    // Each exclusion takes 1 initial attempt + 1 retry, all dropped.
    assert_eq!(snap.counter(&format!("{}[drop]", names::RUNTIME_TIMEOUT)), 4);
    assert_eq!(snap.counter(names::RUNTIME_RETRY), 2);
    // Conservation: both terminal timeouts were resolved and excluded.
    assert_eq!(
        snap.counter(&format!("{}[timeout]", names::RUNTIME_RESOLVED)),
        2
    );
}

/// When every member is unresponsive the run fails with the dedicated
/// runtime error instead of returning an empty result. On the virtual
/// clock the timeouts are free and the error is seed-reproducible.
#[test]
fn fully_unresponsive_crowd_is_a_runtime_error() {
    let engine = Oassis::new(figure1_ontology());
    let query = engine.parse(QUERY).unwrap();
    let cfg = EngineConfig::default();
    let space = engine.space(&query, &cfg).unwrap();
    let miner = MultiUserMiner::new(&space, 0.4, &cfg);

    let always_drop = ResponseModel::instant().with_drop_probability(1.0);
    let members: Vec<Box<dyn CrowdMember>> = crowd(1)
        .into_iter()
        .enumerate()
        .map(|(i, m)| Box::new(UnreliableMember::new(m, always_drop, i as u64)) as Box<_>)
        .collect();
    let runtime = SessionRuntime::new(members)
        .question_timeout(Duration::from_millis(2))
        .max_retries(0)
        .simulated(SimConfig::new(5));

    let err = miner.run(runtime).expect_err("all members excluded");
    match err {
        OassisError::Runtime(e) => {
            let msg = e.to_string();
            assert!(msg.contains("excluded"), "unexpected message: {msg}");
            // The last exclusion's timeout is chained as the source.
            assert!(std::error::Error::source(&e).is_some());
        }
        other => panic!("expected a runtime error, got {other}"),
    }
}
