//! Counting antichains by size in a tree taxonomy.
//!
//! The §6.4 multiplicity experiment compares the *lazy* generator's
//! materialized node count against an "eager" algorithm that generates all
//! assignments up to the same multiplicity. For a single-variable query
//! over a tree taxonomy, the eager node count is exactly the number of
//! non-empty antichains of size ≤ m — computable by a product of truncated
//! subtree polynomials: `E_v(x) = x + ∏_children E_c(x)` (either `v` itself,
//! or any combination of antichains from its children's subtrees).

use oassis_vocab::{ElementId, Taxonomy};

/// Multiply two size-indexed count polynomials, truncated at `max_size`.
fn poly_mul(a: &[u128], b: &[u128], max_size: usize) -> Vec<u128> {
    let mut out = vec![0u128; (a.len() + b.len() - 1).min(max_size + 1)];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            if i + j > max_size {
                break;
            }
            if y != 0 {
                out[i + j] = out[i + j].saturating_add(x.saturating_mul(y));
            }
        }
    }
    out
}

/// Antichain-size counts (index = size) of the subtree rooted at `v`,
/// truncated at `max_size`. Index 0 counts the empty antichain.
fn subtree_poly(tax: &Taxonomy<ElementId>, v: ElementId, max_size: usize) -> Vec<u128> {
    let children = tax.children(v);
    // Product over children (the "don't use v" case), starting from the
    // constant 1 (empty antichain).
    let mut prod = vec![1u128];
    for &c in children {
        let cp = subtree_poly(tax, c, max_size);
        prod = poly_mul(&prod, &cp, max_size);
    }
    // Plus "v alone" (size 1).
    if prod.len() < 2 {
        prod.resize(2, 0);
    }
    prod[1] = prod[1].saturating_add(1);
    prod
}

/// Number of non-empty antichains of size ≤ `max_size` in the subtree of
/// `root` (the eager node count of the multiplicity experiment).
pub fn count_antichains_up_to(tax: &Taxonomy<ElementId>, root: ElementId, max_size: usize) -> u128 {
    let poly = subtree_poly(tax, root, max_size);
    poly.iter().skip(1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::TaxonomyBuilder;

    /// A chain a > b > c: antichains are exactly the singletons.
    #[test]
    fn chain_has_only_singletons() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(ElementId(1), ElementId(0));
        b.add_isa(ElementId(2), ElementId(1));
        let t = b.build(3).unwrap();
        assert_eq!(count_antichains_up_to(&t, ElementId(0), 3), 3);
        assert_eq!(count_antichains_up_to(&t, ElementId(0), 1), 3);
    }

    /// Root with two leaf children: {r}, {a}, {b}, {a,b}.
    #[test]
    fn cherry_counts() {
        let mut b = TaxonomyBuilder::new();
        b.add_isa(ElementId(1), ElementId(0));
        b.add_isa(ElementId(2), ElementId(0));
        let t = b.build(3).unwrap();
        assert_eq!(count_antichains_up_to(&t, ElementId(0), 2), 4);
        assert_eq!(count_antichains_up_to(&t, ElementId(0), 1), 3);
    }

    /// Star with n leaves: singletons (n+1) plus all subsets of leaves of
    /// size 2..=m.
    #[test]
    fn star_matches_binomials() {
        let n = 6u32;
        let mut b = TaxonomyBuilder::new();
        for i in 1..=n {
            b.add_isa(ElementId(i), ElementId(0));
        }
        let t = b.build(n as usize + 1).unwrap();
        // m=3: 7 singletons + C(6,2)=15 + C(6,3)=20.
        assert_eq!(count_antichains_up_to(&t, ElementId(0), 3), 7 + 15 + 20);
    }

    #[test]
    fn truncation_is_monotone() {
        let mut b = TaxonomyBuilder::new();
        for i in 1..=8u32 {
            b.add_isa(ElementId(i), ElementId((i - 1) / 2));
        }
        let t = b.build(9).unwrap();
        let mut prev = 0;
        for m in 1..=4 {
            let c = count_antichains_up_to(&t, ElementId(0), m);
            assert!(c >= prev);
            prev = c;
        }
    }
}
