#![warn(missing_docs)]

//! # oassis-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (Section 6), plus Criterion micro-benchmarks for the
//! substrate components.
//!
//! Run `cargo run --release -p oassis-bench --bin figures -- all` to print
//! the paper-style tables and series; see `EXPERIMENTS.md` at the workspace
//! root for the paper-vs-measured record.
//!
//! | Experiment | Paper | Entry point |
//! |---|---|---|
//! | Crowd statistics per threshold | Fig 4a–4c | [`experiments::crowd_statistics`] |
//! | Pace of data collection | Fig 4d–4e | [`experiments::pace_of_collection`] |
//! | Effect of answer types | Fig 4f | [`experiments::answer_type_effect`] |
//! | Vertical vs Horizontal vs Naive | Fig 5a–5c | [`experiments::algorithm_comparison`] |
//! | DAG shape variation | §6.4 in-text | [`experiments::shape_variation`] |
//! | MSP distribution variation | §6.4 in-text | [`experiments::distribution_variation`] |
//! | Multiplicities + lazy generation | §6.4 in-text | [`experiments::multiplicity_variation`] |
//! | Answer-type mix vs real crowd | §6.3 in-text | [`experiments::crowd_mix`] |
//! | Crowd-complexity bounds | Prop 4.7/4.8 | [`experiments::complexity_bounds`] |

pub mod antichains;
pub mod experiments;
pub mod table;
