//! The experiment implementations behind every figure of Section 6.

use std::sync::Arc;
use std::time::{Duration, Instant};

use oassis_core::{
    baseline_question_count, AssignSpace, Assignment, EngineConfig, HorizontalMiner, MinerConfig,
    MinerOutcome, NaiveMiner, Oassis, OassisService, SessionRuntime, SessionSpec, SessionStatus,
    VerticalMiner,
};
use oassis_crowd::{CrowdMember, MemberId, ResponseModel, UnreliableMember};
use oassis_obs::{null_sink, EventSink};
use oassis_datagen::{
    generate_crowd, plant::plant_multiplicity_msps, plant_msps, CrowdGenConfig, Domain,
    MspDistribution, PlantedOracle, SynthConfig, SynthInstance,
};
use oassis_ql::parse_query;
use oassis_sparql::{plan, MatchMode};

use crate::antichains::count_antichains_up_to;

/// One row of the Figure 4a–4c crowd-statistics tables.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Support threshold.
    pub threshold: f64,
    /// Total MSPs discovered.
    pub msps: usize,
    /// Valid MSPs.
    pub valid_msps: usize,
    /// Total questions asked (including repetitions across members).
    pub questions: usize,
    /// Our questions as % of the baseline (5 questions per valid
    /// assignment, no traversal order) — the paper's `baseline%`.
    pub baseline_pct: f64,
}

/// Build the assignment space for a domain's canonical query.
pub fn domain_space(domain: &Domain) -> AssignSpace {
    let query = parse_query(&domain.query, &domain.ontology).expect("domain query parses");
    AssignSpace::build(
        Arc::new(domain.ontology.clone()),
        &query,
        MatchMode::Semantic,
        Vec::new(),
    )
    .expect("domain space builds")
}

/// Figures 4a–4c: run the multi-user engine over a generated crowd at each
/// threshold and report the crowd statistics.
pub fn crowd_statistics(
    domain: &Domain,
    thresholds: &[f64],
    crowd_cfg: &CrowdGenConfig,
) -> Vec<ThresholdRow> {
    crowd_statistics_observed(domain, thresholds, crowd_cfg, &null_sink())
}

/// [`crowd_statistics`] with engine telemetry: every execution streams its
/// events (questions, border updates, cache traffic, spans, ...) to `sink`,
/// e.g. a [`oassis_obs::JsonLinesSink`] for machine-readable figure runs.
pub fn crowd_statistics_observed(
    domain: &Domain,
    thresholds: &[f64],
    crowd_cfg: &CrowdGenConfig,
    sink: &Arc<dyn EventSink>,
) -> Vec<ThresholdRow> {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    let space = domain_space(domain);
    let valid_count = space
        .enumerate_single_valued(2_000_000)
        .expect("domain query is bound-only")
        .iter()
        .filter(|a| space.is_valid(a))
        .count();
    let baseline = baseline_question_count(valid_count, 5);

    thresholds
        .iter()
        .map(|&th| {
            // Fresh crowd per threshold: deterministic per seed, so this is
            // the paper's replay methodology with exact answer coverage
            // ("count only the answers used by the algorithm").
            let crowd = generate_crowd(domain, crowd_cfg);
            let mut members: Vec<Box<dyn CrowdMember>> = crowd
                .members
                .into_iter()
                .map(|m| Box::new(m) as Box<dyn CrowdMember>)
                .collect();
            let cfg = EngineConfig::builder().sink(Arc::clone(sink)).build();
            let result = engine
                .execute_parsed(&query, th, &mut members, &cfg)
                .expect("execution succeeds");
            ThresholdRow {
                threshold: th,
                msps: result.answers.len(),
                valid_msps: result.answers.iter().filter(|a| a.valid).count(),
                questions: result.stats.total_questions,
                baseline_pct: 100.0 * result.stats.total_questions as f64 / baseline as f64,
            }
        })
        .collect()
}

/// A sampled discovery curve: questions needed to reach each fraction.
#[derive(Debug, Clone)]
pub struct PaceResult {
    /// Domain name.
    pub domain: String,
    /// Threshold used.
    pub threshold: f64,
    /// Fractions sampled (0.1 ..= 1.0).
    pub fractions: Vec<f64>,
    /// Questions to classify the fraction of all DAG assignments.
    pub classified: Vec<Option<usize>>,
    /// Questions to discover the fraction of all MSPs.
    pub all_msps: Vec<Option<usize>>,
    /// Questions to discover the fraction of *valid* MSPs.
    pub valid_msps: Vec<Option<usize>>,
    /// Total questions asked.
    pub total_questions: usize,
    /// DAG size (number of assignments tracked).
    pub dag_nodes: usize,
}

/// Figures 4d–4e: the pace of data collection at one threshold.
pub fn pace_of_collection(
    domain: &Domain,
    threshold: f64,
    crowd_cfg: &CrowdGenConfig,
) -> PaceResult {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    let space = domain_space(domain);
    let universe = space
        .enumerate_single_valued(2_000_000)
        .expect("domain query is bound-only");
    let dag_nodes = universe.len();

    let crowd = generate_crowd(domain, crowd_cfg);
    let mut members: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .into_iter()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();
    let cfg = EngineConfig::builder()
        .track_curve(true)
        .curve_universe(universe)
        .build();
    let result = engine
        .execute_parsed(&query, threshold, &mut members, &cfg)
        .expect("execution succeeds");

    let fractions: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let final_classified = result.stats.curve.last().map(|p| p.classified).unwrap_or(0);
    let classified = fractions
        .iter()
        .map(|&f| {
            let needed = (f * final_classified as f64).ceil() as usize;
            result
                .stats
                .curve
                .iter()
                .find(|p| p.classified >= needed)
                .map(|p| p.questions)
        })
        .collect();
    let all_msps = fractions
        .iter()
        .map(|&f| result.stats.questions_to_msp_fraction(f))
        .collect();
    let valid_msps = fractions
        .iter()
        .map(|&f| result.stats.questions_to_valid_msp_fraction(f))
        .collect();
    PaceResult {
        domain: domain.name.to_owned(),
        threshold,
        fractions,
        classified,
        all_msps,
        valid_msps,
        total_questions: result.stats.total_questions,
        dag_nodes,
    }
}

/// One curve of Figure 4f / Figure 5: questions to discover each fraction
/// of the planted valid MSPs.
#[derive(Debug, Clone)]
pub struct CurveSeries {
    /// Series label (e.g. "Vertical", "50% special.").
    pub label: String,
    /// Fractions 0.1 ..= 1.0.
    pub fractions: Vec<f64>,
    /// Questions needed per fraction (`None` = never reached).
    pub questions: Vec<Option<f64>>,
    /// Total questions to completion.
    pub total_questions: f64,
}

fn target_curve(label: &str, outcome: &MinerOutcome, targets: usize) -> CurveSeries {
    let fractions: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let questions = fractions
        .iter()
        .map(|&f| {
            outcome
                .stats
                .questions_to_target_fraction(f, targets)
                .map(|q| q as f64)
        })
        .collect();
    CurveSeries {
        label: label.to_owned(),
        fractions,
        questions,
        total_questions: outcome.stats.total_questions as f64,
    }
}

/// The standard synthetic setup of §6.4: a two-variable (travel-like)
/// product DAG of width 500 and depth 7.
pub fn standard_synth(seed: u64) -> SynthInstance {
    SynthInstance::generate(&SynthConfig {
        width: 500,
        depth: 7,
        two_vars: true,
        threshold: 0.2,
        seed,
        ..Default::default()
    })
}

/// Figure 4f: effect of the specialization / pruning answer-type ratios on
/// the vertical algorithm (single simulated user, planted MSPs ≈ 1.2% of
/// the DAG, matching the crowd experiments).
pub fn answer_type_effect(seed: u64) -> Vec<CurveSeries> {
    let inst = standard_synth(seed);
    let n_msps = ((inst.valid_nodes.len() as f64) * 0.012).round().max(4.0) as usize;
    let planted = plant_msps(
        &inst.space,
        &inst.valid_nodes,
        n_msps,
        MspDistribution::Uniform,
        seed,
    );
    let variants: &[(&str, f64, f64)] = &[
        ("100% closed", 0.0, 0.0),
        ("10% special.", 0.1, 0.0),
        ("50% special.", 0.5, 0.0),
        ("100% special.", 1.0, 0.0),
        ("25% pruning", 0.0, 0.25),
        ("50% pruning", 0.0, 0.5),
    ];
    variants
        .iter()
        .map(|&(label, spec, prune)| {
            let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
            let cfg = MinerConfig {
                specialization_ratio: spec,
                pruning_ratio: prune,
                seed,
                track_curve: true,
                targets: Some(planted.clone()),
                ..MinerConfig::new(0.2)
            };
            let out = VerticalMiner::run(&inst.space, &mut oracle, &cfg);
            target_curve(label, &out, planted.len())
        })
        .collect()
}

/// Figure 5: Vertical vs Horizontal vs Naive at a given planted-MSP
/// percentage, averaged over `trials` instances.
pub fn algorithm_comparison(pct: f64, trials: u64, seed: u64) -> Vec<CurveSeries> {
    let fractions: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let mut sums: Vec<Vec<f64>> = vec![vec![0.0; fractions.len()]; 3];
    let mut counts: Vec<Vec<usize>> = vec![vec![0; fractions.len()]; 3];
    let mut totals = [0.0f64; 3];

    for t in 0..trials {
        let inst = standard_synth(seed.wrapping_add(t));
        let n_msps = ((inst.valid_nodes.len() as f64) * pct).round().max(1.0) as usize;
        let planted = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            n_msps,
            MspDistribution::Uniform,
            seed.wrapping_add(t),
        );
        let mk_cfg = || MinerConfig {
            seed: seed.wrapping_add(t),
            track_curve: true,
            targets: Some(planted.clone()),
            ..MinerConfig::new(0.2)
        };
        let outs = [
            {
                let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
                VerticalMiner::run(&inst.space, &mut oracle, &mk_cfg())
            },
            {
                let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
                HorizontalMiner::run(&inst.space, &mut oracle, &mk_cfg())
            },
            {
                let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
                NaiveMiner::run(&inst.space, &mut oracle, &mk_cfg(), &inst.valid_nodes)
            },
        ];
        for (a, out) in outs.iter().enumerate() {
            totals[a] += out.stats.total_questions as f64;
            for (i, &f) in fractions.iter().enumerate() {
                if let Some(q) = out.stats.questions_to_target_fraction(f, planted.len()) {
                    sums[a][i] += q as f64;
                    counts[a][i] += 1;
                }
            }
        }
    }

    ["Vertical", "Horizontal", "Naive"]
        .iter()
        .enumerate()
        .map(|(a, label)| CurveSeries {
            label: (*label).to_owned(),
            fractions: fractions.clone(),
            questions: (0..fractions.len())
                .map(|i| {
                    if counts[a][i] == 0 {
                        None
                    } else {
                        Some(sums[a][i] / counts[a][i] as f64)
                    }
                })
                .collect(),
            total_questions: totals[a] / trials as f64,
        })
        .collect()
}

/// One row of the §6.4 in-text variation experiments.
#[derive(Debug, Clone)]
pub struct VariationRow {
    /// Variation label.
    pub label: String,
    /// DAG node count.
    pub dag_nodes: usize,
    /// Planted MSPs.
    pub planted: usize,
    /// Total questions to completion (vertical algorithm).
    pub questions: usize,
    /// Questions to find all planted MSPs.
    pub to_all_targets: Option<usize>,
}

fn run_planted_vertical(inst: &SynthInstance, planted: &[Assignment], seed: u64) -> MinerOutcome {
    let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, planted, 0.5);
    let cfg = MinerConfig {
        seed,
        track_curve: true,
        targets: Some(planted.to_vec()),
        ..MinerConfig::new(0.2)
    };
    VerticalMiner::run(&inst.space, &mut oracle, &cfg)
}

/// §6.4 in-text: varying the DAG's width and depth has no significant
/// effect on the trends.
pub fn shape_variation(pct: f64, seed: u64) -> Vec<VariationRow> {
    let mut rows = Vec::new();
    for &(w, d) in &[(500usize, 4usize), (500, 7), (1000, 7), (2000, 7)] {
        let inst = SynthInstance::generate(&SynthConfig {
            width: w,
            depth: d,
            two_vars: true,
            threshold: 0.2,
            seed,
            ..Default::default()
        });
        let n = ((inst.valid_nodes.len() as f64) * pct).round().max(1.0) as usize;
        let planted = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            n,
            MspDistribution::Uniform,
            seed,
        );
        let out = run_planted_vertical(&inst, &planted, seed);
        rows.push(VariationRow {
            label: format!("width {w}, depth {d}"),
            dag_nodes: inst.node_count(),
            planted: planted.len(),
            questions: out.stats.total_questions,
            to_all_targets: out.stats.questions_to_target_fraction(1.0, planted.len()),
        });
    }
    rows
}

/// §6.4 in-text: varying how the planted MSPs are distributed over the DAG.
pub fn distribution_variation(pct: f64, seed: u64) -> Vec<VariationRow> {
    let inst = standard_synth(seed);
    let n = ((inst.valid_nodes.len() as f64) * pct).round().max(1.0) as usize;
    [
        (MspDistribution::Uniform, "uniform"),
        (MspDistribution::Nearby, "nearby (≤4 apart)"),
        (MspDistribution::Far, "far (≥6 apart)"),
    ]
    .into_iter()
    .map(|(dist, label)| {
        let planted = plant_msps(&inst.space, &inst.valid_nodes, n, dist, seed);
        let out = run_planted_vertical(&inst, &planted, seed);
        VariationRow {
            label: label.to_owned(),
            dag_nodes: inst.node_count(),
            planted: planted.len(),
            questions: out.stats.total_questions,
            to_all_targets: out.stats.questions_to_target_fraction(1.0, planted.len()),
        }
    })
    .collect()
}

/// One row of the multiplicity experiment.
#[derive(Debug, Clone)]
pub struct MultiplicityRow {
    /// Share of nodes planted as multiplicity MSPs.
    pub mult_pct: f64,
    /// Size of the multiplicity MSPs.
    pub size: usize,
    /// Total questions.
    pub questions: usize,
    /// Nodes the lazy generator materialized.
    pub lazy_nodes: usize,
    /// Nodes an eager generator (all assignments up to the same
    /// multiplicity) would materialize.
    pub eager_nodes: u128,
    /// `lazy_nodes / eager_nodes`, in percent.
    pub lazy_pct: f64,
}

/// §6.4 in-text: multiplicities — question counts track the MSP percentage
/// (not the multiplicities), and lazy generation materializes ≪ 1% of the
/// eager node count.
pub fn multiplicity_variation(seed: u64) -> Vec<MultiplicityRow> {
    let inst = SynthInstance::generate(&SynthConfig {
        width: 200,
        depth: 5,
        multiplicities: true,
        two_vars: false,
        threshold: 0.2,
        seed,
    });
    let root = inst
        .ontology
        .vocabulary()
        .element("Pattern")
        .expect("root exists");
    let mut rows = Vec::new();
    for &(mult_pct, size) in &[(0.0, 1usize), (0.01, 2), (0.02, 3), (0.05, 4)] {
        let base_n = ((inst.valid_nodes.len() as f64) * 0.02).round().max(1.0) as usize;
        let mut planted = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            base_n,
            MspDistribution::Uniform,
            seed,
        );
        if mult_pct > 0.0 {
            let extra_n = ((inst.valid_nodes.len() as f64) * mult_pct)
                .round()
                .max(1.0) as usize;
            let extra = plant_multiplicity_msps(
                &inst.space,
                &inst.valid_nodes,
                &planted,
                extra_n,
                size,
                seed,
            );
            planted.extend(extra);
        }
        let out = run_planted_vertical(&inst, &planted, seed);
        let max_size = planted.iter().map(Assignment::weight).max().unwrap_or(1);
        let eager =
            count_antichains_up_to(inst.ontology.vocabulary().elements_order(), root, max_size);
        let lazy = out.stats.nodes_generated;
        rows.push(MultiplicityRow {
            mult_pct,
            size,
            questions: out.stats.total_questions,
            lazy_nodes: lazy,
            eager_nodes: eager,
            lazy_pct: 100.0 * lazy as f64 / eager as f64,
        });
    }
    rows
}

/// The answer-type mix of one execution (§6.3 in-text: 12% specialization,
/// half of those "none of these", 13% pruning).
#[derive(Debug, Clone)]
pub struct CrowdMix {
    /// Total questions.
    pub questions: usize,
    /// % concrete questions.
    pub concrete_pct: f64,
    /// % specialization questions answered with a choice.
    pub specialization_pct: f64,
    /// % specialization questions answered "none of these".
    pub none_of_these_pct: f64,
    /// % pruning interactions.
    pub pruning_pct: f64,
}

/// §6.3 in-text: reproduce the answer-type mix with the engine's
/// question-policy ratios set to the observed crowd behaviour.
pub fn crowd_mix(domain: &Domain, crowd_cfg: &CrowdGenConfig) -> CrowdMix {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    let crowd = generate_crowd(domain, crowd_cfg);
    let mut members: Vec<Box<dyn CrowdMember>> = crowd
        .members
        .into_iter()
        .map(|m| Box::new(m) as Box<dyn CrowdMember>)
        .collect();
    let cfg = EngineConfig::builder()
        .specialization_ratio(0.35)
        .pruning_ratio(0.6)
        .build();
    let result = engine
        .execute_parsed(&query, 0.2, &mut members, &cfg)
        .expect("execution succeeds");
    let s = &result.stats;
    let total = s.total_questions.max(1) as f64;
    CrowdMix {
        questions: s.total_questions,
        concrete_pct: 100.0 * s.concrete as f64 / total,
        specialization_pct: 100.0 * s.specialization as f64 / total,
        none_of_these_pct: 100.0 * s.none_of_these as f64 / total,
        pruning_pct: 100.0 * s.pruning as f64 / total,
    }
}

/// Crowd-complexity bound check (Propositions 4.7/4.8).
#[derive(Debug, Clone)]
pub struct BoundsCheck {
    /// Unique questions asked by the vertical algorithm.
    pub unique_questions: usize,
    /// `(|E| + |R|) · |msp| + |msp⁻|`, the Proposition 4.7 bound argument.
    pub upper_bound_arg: usize,
    /// `|msp_valid| + |msp⁻_valid|`, the Proposition 4.8 lower-bound arg.
    pub lower_bound_arg: usize,
}

/// Measure the vertical algorithm's unique questions against the
/// Proposition 4.7 bound argument on a standard synthetic instance.
pub fn complexity_bounds(pct: f64, seed: u64) -> BoundsCheck {
    let inst = standard_synth(seed);
    let n = ((inst.valid_nodes.len() as f64) * pct).round().max(1.0) as usize;
    let planted = plant_msps(
        &inst.space,
        &inst.valid_nodes,
        n,
        MspDistribution::Uniform,
        seed,
    );
    let out = run_planted_vertical(&inst, &planted, seed);
    let vocab = inst.ontology.vocabulary();
    let e_plus_r = vocab.num_elements() + vocab.num_relations();
    let msp = out.msps.len();
    let neg_border = out.state.insignificant_border().len();
    BoundsCheck {
        unique_questions: out.stats.unique_questions,
        upper_bound_arg: e_plus_r * msp + neg_border,
        lower_bound_arg: out.valid_msps.len() + neg_border,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_datagen::self_treatment_domain;

    fn small_crowd() -> CrowdGenConfig {
        CrowdGenConfig {
            members: 12,
            transactions_per_member: 12,
            popular_patterns: 6,
            popularity: 0.8,
            zipf: 1.0,
            facts_per_transaction: 1,
            discretize: false,
            seed: 1,
        }
    }

    #[test]
    fn crowd_statistics_trends_match_figure4() {
        let domain = self_treatment_domain();
        let rows = crowd_statistics(&domain, &[0.2, 0.4], &small_crowd());
        assert_eq!(rows.len(), 2);
        // More permissive thresholds need at least as many questions and
        // find at least as many MSPs (the paper's general trend).
        assert!(rows[0].questions >= rows[1].questions);
        assert!(rows[0].msps >= rows[1].msps);
        // Far fewer questions than the exhaustive baseline.
        assert!(
            rows[0].baseline_pct < 100.0,
            "baseline% = {}",
            rows[0].baseline_pct
        );
    }

    #[test]
    fn pace_curves_are_monotone() {
        let domain = self_treatment_domain();
        let pace = pace_of_collection(&domain, 0.2, &small_crowd());
        assert!(pace.total_questions > 0);
        let defined: Vec<usize> = pace.classified.iter().flatten().copied().collect();
        for w in defined.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(pace.dag_nodes > 1000);
    }

    #[test]
    fn answer_types_help() {
        let series = answer_type_effect(3);
        assert_eq!(series.len(), 6);
        let closed = series.iter().find(|s| s.label == "100% closed").unwrap();
        let spec = series.iter().find(|s| s.label == "100% special.").unwrap();
        // The paper: more specialization/pruning improves (or at least does
        // not noticeably hurt) the question count.
        assert!(spec.total_questions <= closed.total_questions * 1.05);
    }

    #[test]
    fn vertical_beats_horizontal_early() {
        let series = algorithm_comparison(0.05, 2, 7);
        let vertical = &series[0];
        let horizontal = &series[1];
        // Figure 5: to discover 20% of the MSPs the vertical algorithm asks
        // well under the horizontal algorithm's count.
        let f20 = 1; // index of fraction 0.2
        let (Some(v), Some(h)) = (vertical.questions[f20], horizontal.questions[f20]) else {
            panic!("curves incomplete");
        };
        assert!(v < h, "vertical {v} vs horizontal {h}");
    }

    #[test]
    fn multiplicity_rows_show_lazy_savings() {
        let rows = multiplicity_variation(5);
        for r in &rows {
            if r.size >= 2 {
                assert!(
                    r.lazy_pct < 1.0,
                    "lazy% = {} at size {}",
                    r.lazy_pct,
                    r.size
                );
            }
        }
    }

    #[test]
    fn bounds_hold() {
        let b = complexity_bounds(0.02, 9);
        assert!(
            b.unique_questions <= b.upper_bound_arg,
            "{} > {}",
            b.unique_questions,
            b.upper_bound_arg
        );
        assert!(b.lower_bound_arg <= b.upper_bound_arg);
    }
}

/// One row of the crowd-growth experiment (§6.3 in-text).
#[derive(Debug, Clone)]
pub struct GrowthRow {
    /// Crowd size.
    pub members: usize,
    /// Questions until the first MSP was confirmed.
    pub to_first_msp: Option<usize>,
    /// Questions to completion.
    pub total_questions: usize,
    /// Rounds of member interaction (a proxy for wall-clock time with a
    /// parallel crowd: each member answers at most one question per round).
    pub rounds_to_first_msp: Option<usize>,
}

/// §6.3 in-text: "as our user base kept growing ... a speedup was observed
/// in finding the first MSP, which dropped from 28 minutes to less than 4".
/// With more members answering in parallel, the aggregator reaches its
/// sample size in fewer *rounds* (the wall-clock proxy), even though the
/// question *count* to the first MSP stays in the same range.
pub fn crowd_growth(domain: &Domain, sizes: &[usize], seed: u64) -> Vec<GrowthRow> {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    sizes
        .iter()
        .map(|&members| {
            let crowd = generate_crowd(
                domain,
                &CrowdGenConfig {
                    members,
                    transactions_per_member: 20,
                    popular_patterns: 8,
                    popularity: 0.8,
                    zipf: 1.0,
                    facts_per_transaction: 1,
                    discretize: false,
                    seed,
                },
            );
            let mut boxed: Vec<Box<dyn CrowdMember>> = crowd
                .members
                .into_iter()
                .map(|m| Box::new(m) as Box<dyn CrowdMember>)
                .collect();
            let cfg = EngineConfig::default();
            let result = engine
                .execute_parsed(&query, 0.2, &mut boxed, &cfg)
                .expect("execution succeeds");
            let to_first = result.stats.msp_events.first().copied();
            GrowthRow {
                members,
                to_first_msp: to_first,
                total_questions: result.stats.total_questions,
                // Round-robin schedule: each round every willing member
                // answers one question, so rounds ≈ questions / members.
                rounds_to_first_msp: to_first.map(|q| q.div_ceil(members)),
            }
        })
        .collect()
}

#[cfg(test)]
mod growth_tests {
    use super::*;
    use oassis_datagen::self_treatment_domain;

    #[test]
    fn bigger_crowds_reach_the_first_msp_in_fewer_rounds() {
        let domain = self_treatment_domain();
        let rows = crowd_growth(&domain, &[6, 48], 3);
        let small = &rows[0];
        let large = &rows[1];
        let (Some(rs), Some(rl)) = (small.rounds_to_first_msp, large.rounds_to_first_msp) else {
            panic!("both runs must find an MSP");
        };
        assert!(
            rl < rs,
            "48 members should need fewer rounds ({rl}) than 6 ({rs})"
        );
    }
}

/// Result of the concurrent-runtime speedup experiment.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Crowd size.
    pub members: usize,
    /// Worker threads in the concurrent run.
    pub workers: usize,
    /// Simulated per-answer crowd latency.
    pub per_answer: Duration,
    /// Wall-clock of the sequential (slice) run, latency waited in-line.
    pub sequential: Duration,
    /// Wall-clock of the concurrent (session-runtime) run.
    pub concurrent: Duration,
    /// `sequential / concurrent`.
    pub speedup: f64,
    /// Questions asked (identical across both runs by construction).
    pub questions: usize,
    /// Whether the two runs produced the same valid-MSP set (must be true).
    pub answers_match: bool,
}

/// Wall-clock effect of the concurrent crowd-session runtime: the same
/// scripted crowd is mined twice — sequentially, waiting out each member's
/// simulated answer latency in-line, and through the worker pool, where
/// speculative prefetch overlaps the waits. Answers are checked identical;
/// the interesting output is the speedup.
pub fn runtime_speedup(
    domain: &Domain,
    members: usize,
    workers: usize,
    per_answer: Duration,
    seed: u64,
) -> SpeedupRow {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    let cfg = EngineConfig::builder().seed(seed).build();
    let crowd_cfg = CrowdGenConfig {
        members,
        transactions_per_member: 20,
        popular_patterns: 8,
        popularity: 0.8,
        zipf: 1.0,
        facts_per_transaction: 1,
        discretize: false,
        seed,
    };
    let model = ResponseModel::latency(per_answer);
    // Two identical crowds (same generator seed): one consumed by each run.
    let make_crowd = || -> Vec<Box<dyn CrowdMember>> {
        generate_crowd(domain, &crowd_cfg)
            .members
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                Box::new(UnreliableMember::new(Box::new(m), model, seed ^ i as u64))
                    as Box<dyn CrowdMember>
            })
            .collect()
    };

    let mut sequential_members = make_crowd();
    let start = Instant::now();
    let seq = engine
        .execute_parsed(&query, 0.2, &mut sequential_members, &cfg)
        .expect("sequential run succeeds");
    let sequential = start.elapsed();

    let runtime = SessionRuntime::new(make_crowd()).workers(workers);
    let start = Instant::now();
    let conc = engine
        .execute_parsed_with_runtime(&query, 0.2, runtime, &cfg)
        .expect("concurrent run succeeds");
    let concurrent = start.elapsed();

    let valid = |r: &oassis_core::QueryResult| {
        let mut v: Vec<&str> = r
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.as_str())
            .collect();
        v.sort_unstable();
        v.join("\n")
    };
    SpeedupRow {
        members,
        workers,
        per_answer,
        sequential,
        concurrent,
        speedup: sequential.as_secs_f64() / concurrent.as_secs_f64().max(f64::EPSILON),
        questions: seq.stats.total_questions,
        answers_match: valid(&seq) == valid(&conc)
            && seq.stats.total_questions == conc.stats.total_questions,
    }
}

/// Result of the index-layer scale experiment for one domain.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Domain name ("travel", "travel-10x").
    pub domain: String,
    /// Assignment-DAG node count (single-valued assignments).
    pub nodes: usize,
    /// Crowd size.
    pub members: usize,
    /// Questions asked (identical across both runs by construction).
    pub questions: usize,
    /// Wall-clock of the un-indexed run (reference linear scans, no space
    /// memoization, transaction-scan support counting).
    pub unindexed: Duration,
    /// Wall-clock of the indexed run (interned [`SpaceCache`], indexed
    /// border, tid-list support counting).
    pub indexed: Duration,
    /// `unindexed / indexed`.
    pub speedup: f64,
    /// Questions per second, un-indexed run.
    pub unindexed_qps: f64,
    /// Questions per second, indexed run.
    pub indexed_qps: f64,
    /// Whether both runs produced the same valid-MSP set and question
    /// count (must be true — the index layer is observationally invisible).
    pub answers_match: bool,
}

/// End-to-end wall-clock effect of PR 3's index layer: mine the same
/// generated crowd twice — once with `use_indexes = false` (reference
/// linear-scan border, direct space derivations, transaction-scan support)
/// and once with the indexed paths — and report wall-clock, questions/sec
/// and the speedup. The observable output (valid MSPs, question counts) is
/// asserted identical; both runs are capped at `max_questions` so the
/// benchmark measures per-question cost on large DAGs rather than mining
/// the 10× domain to exhaustion.
pub fn scale_speedup(
    domain: &Domain,
    members: usize,
    max_questions: usize,
    seed: u64,
) -> ScaleRow {
    let engine = Oassis::new(domain.ontology.clone());
    let query = engine.parse(&domain.query).expect("query parses");
    let crowd_cfg = CrowdGenConfig {
        members,
        transactions_per_member: 20,
        popular_patterns: 8,
        popularity: 0.8,
        zipf: 1.0,
        facts_per_transaction: 1,
        discretize: false,
        seed,
    };
    let run = |use_indexes: bool| {
        let cfg = EngineConfig::builder()
            .seed(seed)
            .max_questions(max_questions)
            .use_indexes(use_indexes)
            .build();
        // Same generator seed ⇒ identical crowds; the baseline crowd also
        // counts support by transaction scan instead of tid-lists.
        let mut crowd: Vec<Box<dyn CrowdMember>> = generate_crowd(domain, &crowd_cfg)
            .members
            .into_iter()
            .map(|m| if use_indexes { m } else { m.with_scan_counting() })
            .map(|m| Box::new(m) as Box<dyn CrowdMember>)
            .collect();
        let start = Instant::now();
        let result = engine
            .execute_parsed(&query, 0.2, &mut crowd, &cfg)
            .expect("execution succeeds");
        (result, start.elapsed())
    };
    let (base, unindexed) = run(false);
    let (idx, indexed) = run(true);

    let valid = |r: &oassis_core::QueryResult| {
        let mut v: Vec<&str> = r
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.as_str())
            .collect();
        v.sort_unstable();
        v.join("\n")
    };
    let questions = base.stats.total_questions;
    // The paper's "without multiplicities" node count (the full DAG with
    // multi-valued assignments is astronomically larger).
    let nodes = domain_space(domain)
        .enumerate_single_valued(1_000_000)
        .map_or(0, |v| v.len());
    let qps = |q: usize, t: Duration| q as f64 / t.as_secs_f64().max(f64::EPSILON);
    ScaleRow {
        domain: domain.name.to_owned(),
        nodes,
        members,
        questions,
        unindexed,
        indexed,
        speedup: unindexed.as_secs_f64() / indexed.as_secs_f64().max(f64::EPSILON),
        unindexed_qps: qps(questions, unindexed),
        indexed_qps: qps(idx.stats.total_questions, indexed),
        answers_match: valid(&base) == valid(&idx)
            && base.stats.total_questions == idx.stats.total_questions,
    }
}

/// One row of the multi-query service benchmark (PR 5): `sessions`
/// overlapping queries through one [`OassisService`] versus the same
/// queries as independent serial runs.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Domain name.
    pub domain: String,
    /// Number of overlapping sessions.
    pub sessions: usize,
    /// Crowd size.
    pub members: usize,
    /// Total crowd questions across the independent serial runs.
    pub serial_questions: usize,
    /// Total questions actually dispatched to the crowd by the service.
    pub service_questions: usize,
    /// Dispatch-time answer-store hits plus admission-seeded classifications
    /// avoided re-asking the crowd; this counts the former.
    pub store_hits: usize,
    /// Crowd questions saved by the service, as a percentage of serial.
    pub saved_pct: f64,
    /// Wall-clock of the serial runs.
    pub serial_time: Duration,
    /// Wall-clock of the service run.
    pub service_time: Duration,
    /// Every session reported exactly the serial valid-MSP set.
    pub answers_match: bool,
}

/// Run the domain's canonical query `sessions` times — first as
/// independent serial engine runs (each over its own copy of the crowd),
/// then as overlapping sessions of one service over one shared crowd —
/// and compare answers and crowd traffic. The service must reproduce the
/// serial answers exactly while the `AnswerStore` absorbs the overlap.
pub fn service_reuse(domain: &Domain, sessions: usize, members: usize, seed: u64) -> ServiceRow {
    let crowd_cfg = CrowdGenConfig {
        members,
        transactions_per_member: 20,
        popular_patterns: 8,
        popularity: 0.8,
        zipf: 1.0,
        facts_per_transaction: 1,
        discretize: false,
        seed,
    };
    let fresh_crowd = || -> Vec<Box<dyn CrowdMember>> {
        generate_crowd(domain, &crowd_cfg)
            .members
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn CrowdMember>)
            .collect()
    };
    let cfg = EngineConfig::builder().seed(seed).build();
    let valid = |r: &oassis_core::QueryResult| {
        let mut v: Vec<&str> = r
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.as_str())
            .collect();
        v.sort_unstable();
        v.join("\n")
    };

    let engine = Oassis::new(domain.ontology.clone());
    let serial_start = Instant::now();
    let mut serial_questions = 0;
    let mut serial_valid = String::new();
    for _ in 0..sessions {
        let mut crowd = fresh_crowd();
        let result = engine
            .execute(&domain.query, &mut crowd, &cfg)
            .expect("serial execution succeeds");
        serial_questions += result.stats.total_questions;
        serial_valid = valid(&result);
    }
    let serial_time = serial_start.elapsed();

    let engine = Oassis::new(domain.ontology.clone());
    let service_start = Instant::now();
    let mut service = OassisService::start(engine, SessionRuntime::new(fresh_crowd()));
    for _ in 0..sessions {
        let spec = SessionSpec::builder(&domain.query).config(cfg.clone()).build();
        service.submit(spec).expect("service admits the query");
    }
    let reports = service.run();
    let service_time = service_start.elapsed();

    let mut service_questions = 0;
    let mut store_hits = 0;
    let mut answers_match = true;
    for report in &reports {
        service_questions += report.crowd_questions;
        store_hits += report.store_hits;
        answers_match &= report.status == SessionStatus::Completed
            && valid(&report.result) == serial_valid;
    }
    ServiceRow {
        domain: domain.name.to_owned(),
        sessions,
        members,
        serial_questions,
        service_questions,
        store_hits,
        saved_pct: 100.0 * (serial_questions.saturating_sub(service_questions)) as f64
            / (serial_questions as f64).max(f64::EPSILON),
        serial_time,
        service_time,
        answers_match,
    }
}

/// One row of the durability benchmark (PR 7): the cost of recovering a
/// file-backed service as a function of write-ahead-log length, with and
/// without snapshot compaction.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Crowd-answer records appended to the log.
    pub records: usize,
    /// Snapshot interval (`None` = the log is never compacted).
    pub snapshot_every: Option<u64>,
    /// Wall-clock of appending (durable writes, fsync-free appends).
    pub append_time: Duration,
    /// Wall-clock of [`OassisService::recover`]: open, checksum-verify,
    /// replay, rebuild the answer store, fold session lifecycles.
    pub recover_time: Duration,
    /// Answers in the recovered store (must equal `records`).
    pub recovered_answers: usize,
    /// Interrupted sessions the recovery surfaced (must be 1).
    pub recovered_sessions: usize,
}

/// Append a WAL of `records` crowd answers (one open session, distinct
/// fact-sets, rotating members) through the real [`AnswerStore`] +
/// [`FileBacked`] pipeline — compacting exactly like the service would —
/// then measure a cold [`OassisService::recover`] over the directory.
pub fn recovery_scaling(records: usize, snapshot_every: Option<u64>, seed: u64) -> DurabilityRow {
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::{AnswerStore, DbMember};
    use oassis_store::ontology::figure1_ontology;
    use oassis_store_durable::{shared, AdmitSpec, FileBacked, WalRecord};
    use oassis_vocab::{ElementId, Fact, FactSet, RelationId};

    let dir = std::env::temp_dir().join(format!(
        "oassis-bench-durability-{}-{records}-{}",
        std::process::id(),
        snapshot_every.map_or(0, |e| e)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut file = FileBacked::open(&dir).expect("bench WAL opens");
    if let Some(every) = snapshot_every {
        file = file.with_snapshot_every(every);
    }
    let persistence = shared(file);

    let admit = WalRecord::Admit {
        session: 0,
        resumes: None,
        spec: AdmitSpec {
            query: "SELECT FACT-SETS WHERE $y subClassOf* Activity \
                    SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.3"
                .to_string(),
            threshold: None,
            roster: None,
            priority: 0,
            budget: None,
            seed,
            aggregator_sample: 4,
            specialization_ratio: 0.0,
            pruning_ratio: 0.0,
            max_questions: 1_000_000,
            top_k: None,
            use_indexes: true,
            token: None,
        },
    };
    let store = AnswerStore::new().with_persistence(Arc::clone(&persistence));
    let append_start = Instant::now();
    persistence
        .lock()
        .unwrap()
        .append(&admit)
        .expect("admit appends");
    for i in 0..records {
        let fs = FactSet::from_facts([Fact::new(
            ElementId((i % 503) as u32),
            RelationId((i / 503 % 7) as u32),
            ElementId((i / 3521) as u32),
        )]);
        let support = (i % 11) as f64 / 10.0;
        store.record_tagged(&fs, MemberId((i % 4) as u32), support, Some(0));
        let mut p = persistence.lock().unwrap();
        if p.wants_snapshot() {
            let mut compacted = store.to_records();
            compacted.push(admit.clone());
            p.snapshot(&compacted).expect("compaction succeeds");
        }
    }
    let append_time = append_start.elapsed();
    drop(store);
    drop(persistence);

    let o = figure1_ontology();
    let vocab = Arc::new(o.vocabulary().clone());
    let (d1, d2) = table3_dbs(&vocab);
    let members: Vec<Box<dyn CrowdMember>> = vec![
        Box::new(DbMember::new(MemberId(0), d1, Arc::clone(&vocab))),
        Box::new(DbMember::new(MemberId(1), d2, vocab)),
    ];
    let engine = Oassis::new(figure1_ontology());
    let runtime = SessionRuntime::new(members);
    let recover_start = Instant::now();
    let (service, recovered) =
        OassisService::recover(engine, runtime, &dir).expect("the bench WAL recovers");
    let recover_time = recover_start.elapsed();
    let recovered_answers = service.store().len();
    let _ = std::fs::remove_dir_all(&dir);

    DurabilityRow {
        records,
        snapshot_every,
        append_time,
        recover_time,
        recovered_answers,
        recovered_sessions: recovered.len(),
    }
}

/// Workers spawned per member shard by [`crowd_scale`]: each shard brings
/// its own dispatch queue *and* its own worker team, so throughput should
/// grow near-linearly in the shard count while the crowd latency dominates.
pub const CROWDSCALE_WORKERS_PER_SHARD: usize = 4;

/// One run of the crowd-scale benchmark (PR 8): `sessions` concurrent
/// queries over an `members`-strong crowd through one service, with
/// `shards` member shards and `wave`-question batched dispatch.
#[derive(Debug, Clone)]
pub struct CrowdScaleOutcome {
    /// Crowd size.
    pub members: usize,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Member shards (each with its own queue + worker team).
    pub shards: usize,
    /// Questions staged per session per service cycle.
    pub wave: usize,
    /// Total worker threads (`shards * CROWDSCALE_WORKERS_PER_SHARD`).
    pub workers: usize,
    /// Questions dispatched to the crowd (wave hits included — they are
    /// paid for exactly like dispatches).
    pub crowd_questions: usize,
    /// Dispatch-time answer-store hits (non-zero only when rosters wrap).
    pub store_hits: usize,
    /// Wall-clock of the service run (admission excluded).
    pub wall: Duration,
    /// Crowd questions per second.
    pub qps: f64,
    /// Per-session `(sorted valid MSPs, stage-time question count,
    /// completed)` in admission order — the verification key compared
    /// across shard/wave configurations. Stage-time counts are invariant
    /// to transport, so they must match even when rosters overlap; the
    /// crowd/store split may differ.
    pub outcomes: Vec<(String, usize, bool)>,
}

/// Roster for session `s` of `sessions`: a contiguous slice of at least 4
/// seats (so the aggregator sample of 3 can always fill). Slices are
/// disjoint whenever `members / sessions >= 4` and wrap otherwise.
fn crowd_scale_roster(s: usize, sessions: usize, members: usize) -> Vec<usize> {
    let slice = (members / sessions).max(4).min(members);
    (0..slice).map(|j| (s * slice + j) % members).collect()
}

/// Run the crowd-scale configuration once. Answers are verified by the
/// caller: because every member's answer is a pure function of the asked
/// fact set (honest DB-backed members behind drop-free channels) and
/// sessions are sequential decision processes, the per-session MSP sets
/// and stage-time question counts must be identical across every
/// `(shards, wave)` configuration of the same `(members, sessions, seed)`
/// cell.
pub fn crowd_scale(
    domain: &Domain,
    members: usize,
    sessions: usize,
    shards: usize,
    wave: usize,
    seed: u64,
) -> CrowdScaleOutcome {
    let crowd = oassis_datagen::members(domain, members, seed);
    let workers = shards * CROWDSCALE_WORKERS_PER_SHARD;
    let runtime = SessionRuntime::new(crowd).workers(workers).shards(shards);
    let engine = Oassis::new(domain.ontology.clone());
    let mut service = OassisService::start(engine, runtime).with_wave_size(wave);
    let cfg = EngineConfig::builder().seed(seed).aggregator_sample(3).build();
    for s in 0..sessions {
        let spec = SessionSpec::builder(&domain.query)
            .config(cfg.clone())
            .roster(crowd_scale_roster(s, sessions, members))
            .build();
        service.submit(spec).expect("crowd-scale session admits");
    }
    let start = Instant::now();
    let reports = service.run();
    let wall = start.elapsed();

    let valid = |r: &oassis_core::QueryResult| {
        let mut v: Vec<&str> = r
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.as_str())
            .collect();
        v.sort_unstable();
        v.join("\n")
    };
    let mut crowd_questions = 0;
    let mut store_hits = 0;
    let outcomes = reports
        .iter()
        .map(|r| {
            crowd_questions += r.crowd_questions;
            store_hits += r.store_hits;
            (
                valid(&r.result),
                r.result.stats.total_questions,
                r.status == SessionStatus::Completed,
            )
        })
        .collect();
    CrowdScaleOutcome {
        members,
        sessions,
        shards,
        wave,
        workers,
        crowd_questions,
        store_hits,
        wall,
        qps: crowd_questions as f64 / wall.as_secs_f64().max(f64::EPSILON),
        outcomes,
    }
}

/// One row of the wire-protocol benchmark (PR 9): the figure-1 workload
/// run through one in-process [`OassisService`] versus the same sessions
/// driven as protocol clients of a TCP-loopback [`oassis_net::TcpNetServer`].
#[derive(Debug, Clone)]
pub struct NetRow {
    /// Concurrent sessions submitted.
    pub sessions: usize,
    /// Crowd size (figure-1 answer-database pairs × 2).
    pub members: usize,
    /// Protocol round-trips the served run needed (Hello + Submits + Polls).
    pub requests: usize,
    /// Wall-clock of the in-process run (submit + run).
    pub inproc_time: Duration,
    /// Wall-clock of the served run (connect through last terminal Update).
    pub served_time: Duration,
    /// Served wall-clock as a percentage over in-process.
    pub overhead_pct: f64,
    /// Mean round-trip of an idle-server `Hello` (frame + socket cost only).
    pub rtt_mean: Duration,
    /// Every served session reported exactly the in-process valid-MSP set.
    pub answers_match: bool,
}

/// Run `sessions` figure-1 queries twice — through [`OassisService::run`]
/// in-process, then over real TCP loopback via the line-framed protocol
/// (Hello, tokened Submit per session, Poll round-robin to the terminal
/// Update) — and compare outcomes and wall-clock. The service is not
/// `Send`, so the *server* stays on the calling thread and the client
/// drives from a spawned one (the same inversion `tests/net.rs` uses).
/// After the sessions finish, `rtt_probes` extra `Hello` round-trips
/// against the idle server isolate pure framing + socket cost.
pub fn net_overhead(sessions: usize, crowd_pairs: u32, rtt_probes: usize, seed: u64) -> NetRow {
    use std::sync::atomic::{AtomicBool, Ordering};

    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_net::{
        NetClient, NetServer, Request, Response, TcpNetServer, TcpTransport, WireStatus,
        PROTOCOL_VERSION,
    };
    use oassis_store::ontology::figure1_ontology;

    const QUERY: &str = "SELECT FACT-SETS WHERE \
          $x instanceOf $w. $w subClassOf* Attraction. \
          $y subClassOf* Activity \
        SATISFYING $y doAt $x WITH SUPPORT = 0.4";

    let crowd = || -> Vec<Box<dyn CrowdMember>> {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        (0..crowd_pairs)
            .flat_map(|i| {
                [
                    Box::new(DbMember::new(MemberId(2 * i), d1.clone(), Arc::clone(&vocab)))
                        as Box<dyn CrowdMember>,
                    Box::new(DbMember::new(MemberId(2 * i + 1), d2.clone(), Arc::clone(&vocab))),
                ]
            })
            .collect()
    };
    // Each session gets one saturated d1+d2 pair as its roster (sample 2 =
    // roster size): every roster member answers every question, so the
    // outcome is a pure function of the spec — invariant to how admission
    // interleaves with engine progress, which differs between the served
    // run (the server pumps the service between Submits) and the
    // submit-all-then-run baseline. A two-member average also keeps the
    // figure-1 valid-MSP set non-empty (the whole-crowd default averages
    // the two databases below threshold).
    let cfg = EngineConfig::builder().seed(seed).aggregator_sample(2).build();
    let pair_roster = |i: usize| -> Vec<usize> {
        let pair = i % crowd_pairs as usize;
        vec![2 * pair, 2 * pair + 1]
    };

    // In-process leg.
    let mut service = OassisService::start(
        Oassis::new(figure1_ontology()),
        SessionRuntime::new(crowd()),
    );
    let inproc_start = Instant::now();
    for i in 0..sessions {
        let spec = SessionSpec::builder(QUERY)
            .config(cfg.clone())
            .roster(pair_roster(i))
            .build();
        service.submit(spec).expect("in-process session admits");
    }
    let reports = service.run();
    let inproc_time = inproc_start.elapsed();
    let mut inproc: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            assert_eq!(r.status, SessionStatus::Completed, "in-process leg failed");
            let mut v: Vec<String> = r
                .result
                .answers
                .iter()
                .filter(|a| a.valid)
                .map(|a| a.rendered.clone())
                .collect();
            v.sort();
            v
        })
        .collect();
    inproc.sort();
    assert!(
        inproc.iter().all(|m| !m.is_empty()),
        "vacuous baseline: the in-process run mined no valid MSPs"
    );

    // Served leg: server on this thread, protocol client on a spawned one.
    let service = OassisService::start(
        Oassis::new(figure1_ontology()),
        SessionRuntime::new(crowd()),
    );
    let mut tcp =
        TcpNetServer::bind("127.0.0.1:0", NetServer::new(service)).expect("bind loopback");
    let addr = tcp.local_addr().expect("bound").to_string();
    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let cfg2 = cfg.clone();
    let pairs = crowd_pairs as usize;
    let handle = std::thread::spawn(move || {
        let mut client = NetClient::new(TcpTransport::connect(addr).expect("connect"));
        let mut requests = 0usize;
        let served_start = Instant::now();
        let hello = client
            .call(&Request::Hello { version: PROTOCOL_VERSION })
            .expect("hello");
        requests += 1;
        assert!(matches!(hello.last(), Some(Response::Welcome { .. })));
        let mut ids = Vec::with_capacity(sessions);
        for i in 0..sessions {
            let pair = i % pairs;
            let spec = SessionSpec::builder(QUERY)
                .config(cfg2.clone())
                .roster(vec![2 * pair, 2 * pair + 1])
                .build()
                .to_admit(Some(0xBE9C_0000 + i as u64));
            match client.call(&Request::Submit { spec }).expect("submit").pop() {
                Some(Response::Admitted { session }) => ids.push(session),
                other => panic!("expected Admitted, got {other:?}"),
            }
            requests += 1;
        }
        let mut outcomes: Vec<Option<Vec<String>>> = vec![None; sessions];
        while outcomes.iter().any(Option::is_none) {
            for (i, &session) in ids.iter().enumerate() {
                if outcomes[i].is_some() {
                    continue;
                }
                let batch = client.call(&Request::Poll { session }).expect("poll");
                requests += 1;
                match batch.into_iter().last() {
                    Some(Response::Update { status, msps, .. }) => {
                        if status != WireStatus::Running {
                            assert_eq!(status, WireStatus::Completed, "served leg failed");
                            outcomes[i] = Some(msps);
                        }
                    }
                    other => panic!("expected a terminal Update frame, got {other:?}"),
                }
            }
        }
        let served_time = served_start.elapsed();
        let probe_start = Instant::now();
        for _ in 0..rtt_probes {
            client
                .call(&Request::Hello { version: PROTOCOL_VERSION })
                .expect("rtt probe");
        }
        let probe_time = probe_start.elapsed();
        let _ = client.call(&Request::Close);
        client.close();
        done_flag.store(true, Ordering::Relaxed);
        let served: Vec<Vec<String>> = outcomes.into_iter().map(Option::unwrap).collect();
        (requests, served_time, probe_time, served)
    });
    tcp.serve_until(|| done.load(Ordering::Relaxed) || handle.is_finished())
        .expect("serve");
    let (requests, served_time, probe_time, mut served) = handle.join().expect("client thread");
    served.sort();

    NetRow {
        sessions,
        members: 2 * crowd_pairs as usize,
        requests,
        inproc_time,
        served_time,
        overhead_pct: 100.0 * (served_time.as_secs_f64() - inproc_time.as_secs_f64())
            / inproc_time.as_secs_f64().max(f64::EPSILON),
        rtt_mean: probe_time / (rtt_probes.max(1) as u32),
        answers_match: served == inproc,
    }
}

#[cfg(test)]
mod net_tests {
    use super::*;

    /// Cheap smoke (the full grid lives in the figures binary's `net`
    /// experiment): a served loopback run reproduces the in-process
    /// outcomes and actually exchanged protocol frames.
    #[test]
    fn served_loopback_matches_in_process() {
        let row = net_overhead(2, 2, 8, 7);
        assert!(row.answers_match, "served run changed the answers");
        // Hello + one Submit per session + at least one Poll each.
        assert!(row.requests >= 1 + 2 * row.sessions, "too few round-trips");
        assert!(row.rtt_mean > Duration::ZERO);
    }
}

#[cfg(test)]
mod crowd_scale_tests {
    use super::*;
    use oassis_datagen::self_treatment_domain;

    /// Cheap smoke (the full 100k-member benchmark lives in the figures
    /// binary's `crowd-scale` experiment): a sharded, waved run reproduces
    /// the 1-shard, 1-question-at-a-time outcomes exactly.
    #[test]
    fn sharded_waved_run_matches_reference() {
        let domain = self_treatment_domain();
        let reference = crowd_scale(&domain, 64, 4, 1, 1, 9);
        let fast = crowd_scale(&domain, 64, 4, 4, 8, 9);
        assert_eq!(reference.outcomes, fast.outcomes);
        assert!(reference.crowd_questions > 0);
        assert!(fast.outcomes.iter().all(|(_, _, completed)| *completed));
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use oassis_datagen::travel_domain;

    /// Cheap smoke (the full travel/travel-10x benchmark lives in the
    /// figures binary's `scale` experiment): the indexed and un-indexed
    /// engine paths produce identical observable output.
    #[test]
    fn indexed_and_unindexed_runs_agree() {
        let domain = travel_domain();
        let row = scale_speedup(&domain, 6, 40, 11);
        assert!(row.answers_match, "index layer changed observable output");
        assert!(row.questions > 0);
        assert!(row.nodes > 0);
        assert!(row.speedup > 0.0);
    }
}

#[cfg(test)]
mod speedup_tests {
    use super::*;
    use oassis_datagen::self_treatment_domain;

    /// Cheap smoke (the full 64-member benchmark lives in the figures
    /// binary): concurrent and sequential agree, and hiding even a small
    /// latency beats waiting it out in-line.
    #[test]
    fn concurrent_runtime_beats_sequential_waiting() {
        let domain = self_treatment_domain();
        let row = runtime_speedup(&domain, 8, 8, Duration::from_millis(25), 5);
        assert!(row.answers_match, "concurrent run changed the answers");
        assert!(row.questions > 0);
        assert!(
            row.speedup > 1.2,
            "expected a speedup from latency hiding, got {:.2}x",
            row.speedup
        );
    }
}

/// One row of the query-planner benchmark (PR 10): the canonical query and
/// a `FILTER`-constrained variant, each run with the planner on and off.
#[derive(Debug, Clone)]
pub struct PlannerRow {
    /// Domain name.
    pub domain: String,
    /// Crowd size.
    pub members: usize,
    /// The injected constraint, as OASSIS-QL source.
    pub filter: String,
    /// WHERE seed assignments (space base tuples) of the canonical query.
    pub base_seeds: usize,
    /// Seed assignments after the `FILTER` is pushed into the scans.
    pub filtered_seeds: usize,
    /// Crowd questions mining the canonical query.
    pub base_questions: usize,
    /// Crowd questions mining the constrained variant.
    pub filtered_questions: usize,
    /// Scans that received a pushed-down restriction (constrained query).
    pub pushdowns: usize,
    /// Path scans switched to taxonomy reachability.
    pub unfolds: usize,
    /// Plan subtrees pruned as provably empty.
    pub pruned: usize,
    /// Mean WHERE-evaluation time through the optimized plan.
    pub eval_planned: Duration,
    /// Mean WHERE-evaluation time through the reference evaluator.
    pub eval_reference: Duration,
    /// `eval_reference / eval_planned`.
    pub eval_speedup: f64,
    /// Valid MSPs and question counts identical planner on/off, for both
    /// the canonical and the constrained query.
    pub answers_match: bool,
}

/// Inject `filter` as the last item of the query's WHERE clause.
fn with_filter(query: &str, filter: &str) -> String {
    query.replacen(
        "SATISFYING",
        &format!(".\n          {filter}\n        SATISFYING"),
        1,
    )
}

/// Run the query-planner benchmark on one domain: mine the canonical query
/// and a `FILTER`-constrained variant, each twice — planner on
/// (compile → pushdown/unfold/prune/reorder → interpret) and planner off
/// (naive reference evaluator). The observable output must be identical
/// either way; the constrained variant must seed fewer assignments and ask
/// fewer crowd questions because the restriction is pushed into the scans.
pub fn planner_effect(
    domain: &Domain,
    filter: &str,
    members: usize,
    max_questions: usize,
    seed: u64,
) -> PlannerRow {
    let engine = Oassis::new(domain.ontology.clone());
    let base = engine.parse(&domain.query).expect("canonical query parses");
    let filtered_src = with_filter(&domain.query, filter);
    let filtered = engine
        .parse(&filtered_src)
        .expect("constrained query parses");

    let crowd_cfg = CrowdGenConfig {
        members,
        transactions_per_member: 20,
        popular_patterns: 8,
        popularity: 0.8,
        zipf: 1.0,
        facts_per_transaction: 1,
        discretize: false,
        seed,
    };
    let run = |query: &oassis_ql::Query, use_planner: bool| {
        let cfg = EngineConfig::builder()
            .seed(seed)
            .max_questions(max_questions)
            .use_query_planner(use_planner)
            .build();
        let mut crowd: Vec<Box<dyn CrowdMember>> = generate_crowd(domain, &crowd_cfg)
            .members
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn CrowdMember>)
            .collect();
        engine
            .execute_parsed(query, 0.2, &mut crowd, &cfg)
            .expect("execution succeeds")
    };
    let valid = |r: &oassis_core::QueryResult| {
        let mut v: Vec<&str> = r
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.as_str())
            .collect();
        v.sort_unstable();
        v.join("\n")
    };
    let agree = |query: &oassis_ql::Query| {
        let on = run(query, true);
        let off = run(query, false);
        let ok = valid(&on) == valid(&off)
            && on.stats.total_questions == off.stats.total_questions;
        (on, ok)
    };
    let (base_result, base_ok) = agree(&base);
    let (filtered_result, filtered_ok) = agree(&filtered);

    let seeds = |query: &oassis_ql::Query| {
        AssignSpace::build(
            Arc::new(domain.ontology.clone()),
            query,
            MatchMode::Semantic,
            Vec::new(),
        )
        .expect("space builds")
        .base_count()
    };

    // What the optimizer did to the constrained clause.
    let compiled = plan::compile(&domain.ontology, &filtered.where_clause, MatchMode::Semantic);
    let (_, report) = plan::optimize_report(&domain.ontology, compiled, MatchMode::Semantic);

    // Pure WHERE-evaluation cost, optimized plan vs reference recursion,
    // on the constrained clause (the engine runs above are dominated by
    // crowd mining, not evaluation).
    let timed = |f: &dyn Fn() -> usize| {
        let reps = 20;
        let start = Instant::now();
        let mut total = 0;
        for _ in 0..reps {
            total += f();
        }
        let elapsed = start.elapsed() / reps;
        (elapsed, total / reps as usize)
    };
    let (eval_planned, n_planned) = timed(&|| {
        oassis_sparql::evaluate_where(
            &domain.ontology,
            &filtered.where_clause,
            &filtered.vars,
            MatchMode::Semantic,
        )
        .len()
    });
    let (eval_reference, n_reference) = timed(&|| {
        oassis_sparql::evaluate_reference(
            &domain.ontology,
            &filtered.where_clause,
            &filtered.vars,
            MatchMode::Semantic,
        )
        .len()
    });

    PlannerRow {
        domain: domain.name.to_owned(),
        members,
        filter: filter.to_owned(),
        base_seeds: seeds(&base),
        filtered_seeds: seeds(&filtered),
        base_questions: base_result.stats.total_questions,
        filtered_questions: filtered_result.stats.total_questions,
        pushdowns: report.pushdowns,
        unfolds: report.unfolds,
        pruned: report.pruned,
        eval_planned,
        eval_reference,
        eval_speedup: eval_reference.as_secs_f64() / eval_planned.as_secs_f64().max(f64::EPSILON),
        answers_match: base_ok && filtered_ok && n_planned == n_reference,
    }
}

#[cfg(test)]
mod planner_tests {
    use super::*;
    use oassis_datagen::self_treatment_domain;

    /// Cheap smoke (the full three-domain benchmark lives in the figures
    /// binary's `planner` experiment): the planner changes nothing
    /// observable, and the pushed-down `FILTER` shrinks the seed space and
    /// the crowd traffic.
    #[test]
    fn pushdown_narrows_seeds_and_questions() {
        let domain = self_treatment_domain();
        let row = planner_effect(
            &domain,
            "FILTER($r IN (<Remedy-0>, <Remedy-1>))",
            6,
            100_000,
            13,
        );
        assert!(row.answers_match, "planner changed observable output");
        assert!(row.pushdowns >= 1, "FILTER was not pushed into a scan");
        assert!(row.filtered_seeds > 0, "constrained query seeds nothing");
        assert!(
            row.filtered_seeds < row.base_seeds,
            "pushdown did not narrow the seed space ({} vs {})",
            row.filtered_seeds,
            row.base_seeds
        );
        assert!(
            row.filtered_questions < row.base_questions,
            "pushdown did not reduce crowd questions ({} vs {})",
            row.filtered_questions,
            row.base_questions
        );
    }
}
