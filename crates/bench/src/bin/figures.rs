//! Regenerate every figure of the paper's evaluation (Section 6).
//!
//! ```text
//! cargo run --release -p oassis-bench --bin figures -- all
//! cargo run --release -p oassis-bench --bin figures -- fig4a fig5
//! ```
//!
//! Available experiments: `fig4a fig4b fig4c fig4d fig4e fig4f fig5 shape
//! dist mult crowdmix bounds growth runtime scale service durability
//! crowd-scale net planner` (or `all`). The `scale` experiment writes
//! `BENCH_scale.json` at the repo root (`OASSIS_SCALE_SMOKE=1` shrinks it
//! for CI); `service` writes `BENCH_service.json` the same way
//! (`OASSIS_SERVICE_SMOKE=1`), `durability` writes `BENCH_durability.json`
//! — recovery time versus write-ahead-log length
//! (`OASSIS_DURABILITY_SMOKE=1`) — `crowd-scale` writes
//! `BENCH_crowdscale.json`: sharded dispatch + question-wave throughput
//! over crowds up to 100k members (`OASSIS_CROWDSCALE_SMOKE=1`) — and
//! `net` writes `BENCH_net.json`: wire-protocol round-trip overhead of
//! serving sessions over TCP loopback versus running them in-process
//! (`OASSIS_NET_SMOKE=1`) — and `planner` writes `BENCH_planner.json`:
//! the query planner's constraint pushdown on a `FILTER`-constrained
//! variant of each canonical query, asserting identical valid MSPs with
//! the planner on and off (`OASSIS_PLANNER_SMOKE=1`).
//!
//! Alongside the tables, machine-readable telemetry is appended as JSON
//! lines (one event object per line) to `$OASSIS_FIGURES_JSON`, default
//! `target/figures.jsonl`: the raw engine events of the Figure 4a–4c runs
//! plus one `figures.*` summary event per table cell. Set
//! `OASSIS_FIGURES_JSON=-` to disable.

use std::sync::Arc;

use std::time::Duration;

use oassis_bench::experiments::{
    algorithm_comparison, answer_type_effect, complexity_bounds, crowd_growth, crowd_mix,
    crowd_scale, crowd_statistics_observed, distribution_variation, multiplicity_variation,
    net_overhead, pace_of_collection, planner_effect, recovery_scaling, runtime_speedup,
    scale_speedup, service_reuse, shape_variation, CrowdScaleOutcome, CurveSeries, DurabilityRow,
    NetRow, PaceResult, PlannerRow, ScaleRow, ServiceRow,
};
use oassis_bench::table::render;
use oassis_obs::{null_sink, EventSink, JsonLinesSink, SinkExt};
use oassis_datagen::{
    culinary_domain, self_treatment_domain, travel_domain, travel_domain_10x, CrowdGenConfig,
    Domain,
};

const THRESHOLDS: [f64; 4] = [0.2, 0.3, 0.4, 0.5];

/// Crowd configuration emulating the paper's recruited crowd (248 members,
/// ~20 answers each on the queries they contributed to). Per-domain pattern
/// counts reflect the paper's observation that question counts correlate
/// with the number of MSPs: the travel query needed the most questions
/// (1416) and self-treatment the fewest (340).
fn paper_crowd(domain: &Domain, seed: u64) -> CrowdGenConfig {
    let (popular_patterns, popularity, zipf, facts_per_transaction) = match domain.name {
        "travel" => (40, 0.9, 0.3, 3),
        "culinary" => (18, 0.8, 0.6, 2),
        _ => (8, 0.75, 1.0, 1),
    };
    CrowdGenConfig {
        members: 48,
        transactions_per_member: 20,
        popular_patterns,
        popularity,
        zipf,
        facts_per_transaction,
        discretize: false,
        seed,
    }
}

/// Open the JSON-lines telemetry sink (satellite output next to the
/// tables). Returns the no-op sink when disabled or the file can't be
/// created.
fn telemetry_sink() -> Arc<dyn EventSink> {
    let path = std::env::var("OASSIS_FIGURES_JSON").unwrap_or_else(|_| "target/figures.jsonl".into());
    if path == "-" {
        return null_sink();
    }
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match JsonLinesSink::create(&path) {
        Ok(sink) => {
            eprintln!("telemetry: writing JSON lines to {path}");
            Arc::new(sink)
        }
        Err(e) => {
            eprintln!("telemetry: cannot create {path}: {e}; telemetry disabled");
            null_sink()
        }
    }
}

fn fig4_stats(tag: &str, domain: &Domain, seed: u64, sink: &Arc<dyn EventSink>) {
    println!("== Figure 4{tag}: crowd statistics — {} ==", domain.name);
    let rows = crowd_statistics_observed(domain, &THRESHOLDS, &paper_crowd(domain, seed), sink);
    for r in &rows {
        let label = format!("fig4{tag}:{}:{:.1}", domain.name, r.threshold);
        sink.count_labeled("figures.questions", &label, r.questions as u64);
        sink.count_labeled("figures.msps", &label, r.msps as u64);
        sink.count_labeled("figures.valid_msps", &label, r.valid_msps as u64);
        sink.gauge_labeled("figures.baseline_pct", &label, r.baseline_pct);
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.threshold),
                r.msps.to_string(),
                r.valid_msps.to_string(),
                r.questions.to_string(),
                format!("{:.1}%", r.baseline_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["threshold", "#MSPs", "#valid", "#questions", "baseline%"],
            &table_rows
        )
    );
}

fn print_pace(tag: &str, pace: &PaceResult) {
    println!(
        "== Figure 4{tag}: pace of data collection — {} (threshold {:.1}, DAG {} nodes, {} questions total) ==",
        pace.domain, pace.threshold, pace.dag_nodes, pace.total_questions
    );
    let fmt = |v: &Option<usize>| v.map_or("-".to_owned(), |q| q.to_string());
    let rows: Vec<Vec<String>> = pace
        .fractions
        .iter()
        .enumerate()
        .map(|(i, f)| {
            vec![
                format!("{:.0}%", f * 100.0),
                fmt(&pace.classified[i]),
                fmt(&pace.valid_msps[i]),
                fmt(&pace.all_msps[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "% discovered",
                "classified assign.",
                "valid MSPs",
                "all MSPs"
            ],
            &rows
        )
    );
}

fn print_curves(title: &str, series: &[CurveSeries]) {
    println!("== {title} ==");
    let mut headers: Vec<String> = vec!["% valid MSPs".to_owned()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let n = series.first().map_or(0, |s| s.fractions.len());
    let mut rows = Vec::new();
    for i in 0..n {
        let mut row = vec![format!("{:.0}%", series[0].fractions[i] * 100.0)];
        for s in series {
            row.push(s.questions[i].map_or("-".to_owned(), |q| format!("{q:.0}")));
        }
        rows.push(row);
    }
    let mut total_row = vec!["total".to_owned()];
    for s in series {
        total_row.push(format!("{:.0}", s.total_questions));
    }
    rows.push(total_row);
    println!("{}", render(&header_refs, &rows));
}

/// Run the index-layer scale benchmark (PR 3) and write `BENCH_scale.json`
/// at the repo root. `OASSIS_SCALE_SMOKE=1` shrinks the question caps so CI
/// can assert the invariants (identical answers, speedup ≥ 1) in seconds;
/// the full run is the one whose numbers matter.
fn run_scale(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_SCALE_SMOKE").is_ok_and(|v| v == "1");
    let (members, cap_small, cap_large) = if smoke { (6, 40, 80) } else { (24, 400, 400) };
    println!(
        "== scale: index-layer speedup ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let rows: Vec<ScaleRow> = [travel_domain(), travel_domain_10x()]
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let cap = if i == 0 { cap_small } else { cap_large };
            let r = scale_speedup(d, members, cap, seed);
            assert!(
                r.answers_match,
                "{}: indexed run changed the valid-MSP set or question count",
                r.domain
            );
            assert!(
                r.speedup >= 1.0,
                "{}: indexes slowed the engine down ({:.2}x)",
                r.domain,
                r.speedup
            );
            sink.gauge_labeled("figures.scale.speedup", &r.domain, r.speedup);
            r
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.domain.clone(),
                r.nodes.to_string(),
                r.questions.to_string(),
                format!("{:.2}s", r.unindexed.as_secs_f64()),
                format!("{:.2}s", r.indexed.as_secs_f64()),
                format!("{:.1}", r.unindexed_qps),
                format!("{:.1}", r.indexed_qps),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "domain",
                "DAG nodes",
                "#questions",
                "un-indexed",
                "indexed",
                "q/s before",
                "q/s after",
                "speedup"
            ],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"domain\": {:?}, \"nodes\": {}, \"members\": {}, ",
                    "\"questions\": {}, \"unindexed_secs\": {:.6}, ",
                    "\"indexed_secs\": {:.6}, \"unindexed_qps\": {:.3}, ",
                    "\"indexed_qps\": {:.3}, \"speedup\": {:.3}, ",
                    "\"answers_match\": {}}}"
                ),
                r.domain,
                r.nodes,
                r.members,
                r.questions,
                r.unindexed.as_secs_f64(),
                r.indexed.as_secs_f64(),
                r.unindexed_qps,
                r.indexed_qps,
                r.speedup,
                r.answers_match,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"scale\",\n\"mode\": {:?},\n\"seed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        json_rows.join(",\n")
    );
    // Smoke runs go to target/ so CI never clobbers the checked-in
    // full-mode numbers at the repo root.
    let path = if smoke {
        "target/BENCH_scale.smoke.json"
    } else {
        "BENCH_scale.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Run the multi-query service benchmark (PR 5) and write
/// `BENCH_service.json` at the repo root: N overlapping queries through one
/// `OassisService` over one shared crowd versus the same N queries as
/// independent serial runs. The answers must match exactly; the crowd
/// traffic must shrink. `OASSIS_SERVICE_SMOKE=1` shrinks the crowd so CI
/// can assert the invariants in seconds.
fn run_service(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_SERVICE_SMOKE").is_ok_and(|v| v == "1");
    let (sessions, members) = if smoke { (2, 8) } else { (4, 24) };
    println!(
        "== service: multi-query crowd sharing ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let domains = if smoke {
        vec![travel_domain()]
    } else {
        vec![travel_domain(), culinary_domain(), self_treatment_domain()]
    };
    let rows: Vec<ServiceRow> = domains
        .iter()
        .map(|d| {
            let r = service_reuse(d, sessions, members, seed);
            assert!(
                r.answers_match,
                "{}: a service session diverged from the serial answer set",
                r.domain
            );
            assert!(
                r.service_questions < r.serial_questions,
                "{}: the service did not save crowd questions ({} vs {} serial)",
                r.domain,
                r.service_questions,
                r.serial_questions
            );
            assert!(
                r.store_hits > 0,
                "{}: overlapping sessions never hit the answer store",
                r.domain
            );
            sink.gauge_labeled("figures.service.saved_pct", &r.domain, r.saved_pct);
            r
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.domain.clone(),
                r.sessions.to_string(),
                r.serial_questions.to_string(),
                r.service_questions.to_string(),
                r.store_hits.to_string(),
                format!("{:.1}%", r.saved_pct),
                format!("{:.2}s", r.serial_time.as_secs_f64()),
                format!("{:.2}s", r.service_time.as_secs_f64()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "domain",
                "sessions",
                "serial q",
                "service q",
                "store hits",
                "saved",
                "serial t",
                "service t"
            ],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"domain\": {:?}, \"sessions\": {}, \"members\": {}, ",
                    "\"serial_questions\": {}, \"service_questions\": {}, ",
                    "\"store_hits\": {}, \"saved_pct\": {:.3}, ",
                    "\"serial_secs\": {:.6}, \"service_secs\": {:.6}, ",
                    "\"answers_match\": {}}}"
                ),
                r.domain,
                r.sessions,
                r.members,
                r.serial_questions,
                r.service_questions,
                r.store_hits,
                r.saved_pct,
                r.serial_time.as_secs_f64(),
                r.service_time.as_secs_f64(),
                r.answers_match,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"service\",\n\"mode\": {:?},\n\"seed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        json_rows.join(",\n")
    );
    let path = if smoke {
        "target/BENCH_service.smoke.json"
    } else {
        "BENCH_service.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Run the durability benchmark (PR 7) and write `BENCH_durability.json`
/// at the repo root: the cost of `OassisService::recover` as the
/// write-ahead log grows, with and without snapshot compaction.
/// Compaction must keep cold-start recovery cheap even for long-lived
/// services; uncompacted recovery grows with the log.
/// `OASSIS_DURABILITY_SMOKE=1` shrinks the log sizes so CI can assert the
/// invariants in seconds.
fn run_durability(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_DURABILITY_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if smoke {
        &[256, 1024]
    } else {
        &[1000, 4000, 16000, 64000]
    };
    println!(
        "== durability: recovery time vs WAL length ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut rows: Vec<DurabilityRow> = Vec::new();
    for &records in sizes {
        for snapshot_every in [None, Some(1024)] {
            let row = recovery_scaling(records, snapshot_every, seed);
            assert_eq!(
                row.recovered_answers, row.records,
                "recovery lost answers ({} of {})",
                row.recovered_answers, row.records
            );
            assert_eq!(
                row.recovered_sessions, 1,
                "the open session must be recovered exactly once"
            );
            sink.gauge_labeled(
                "figures.durability.recover_secs",
                &format!(
                    "{records}{}",
                    if snapshot_every.is_some() { "+snap" } else { "" }
                ),
                row.recover_time.as_secs_f64(),
            );
            rows.push(row);
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.records.to_string(),
                r.snapshot_every
                    .map_or("never".to_string(), |e| e.to_string()),
                format!("{:.1}ms", r.append_time.as_secs_f64() * 1e3),
                format!("{:.1}ms", r.recover_time.as_secs_f64() * 1e3),
                r.recovered_answers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["records", "snapshot every", "append", "recover", "answers"],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"records\": {}, \"snapshot_every\": {}, ",
                    "\"append_secs\": {:.6}, \"recover_secs\": {:.6}, ",
                    "\"recovered_answers\": {}, \"recovered_sessions\": {}}}"
                ),
                r.records,
                r.snapshot_every
                    .map_or("null".to_string(), |e| e.to_string()),
                r.append_time.as_secs_f64(),
                r.recover_time.as_secs_f64(),
                r.recovered_answers,
                r.recovered_sessions,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"durability\",\n\"mode\": {:?},\n\"seed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        json_rows.join(",\n")
    );
    let path = if smoke {
        "target/BENCH_durability.smoke.json"
    } else {
        "BENCH_durability.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Run the crowd-scale benchmark (PR 8) and write `BENCH_crowdscale.json`
/// at the repo root: a members × sessions grid through one service with
/// sharded dispatch (8 member shards, each with its own queue and worker
/// team) and 16-question waves, verified cell-by-cell against the 1-shard,
/// one-question-at-a-time reference, plus a shard sweep {1, 2, 4, 8} at
/// the largest crowd. Throughput must grow near-linearly in the shard
/// count while answers stay identical. `OASSIS_CROWDSCALE_SMOKE=1`
/// shrinks the grid so CI can assert the invariants in seconds.
fn run_crowd_scale(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_CROWDSCALE_SMOKE").is_ok_and(|v| v == "1");
    println!(
        "== crowd-scale: sharded dispatch + question waves ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let domain = self_treatment_domain();
    let (grid_members, grid_sessions, sweep_shards, shards, wave): (
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
    ) = if smoke {
        (vec![200], vec![4], vec![1, 2], 2, 4)
    } else {
        (
            vec![1_000, 10_000, 100_000],
            vec![16, 256, 1024],
            vec![1, 2, 4, 8],
            8,
            16,
        )
    };
    // (outcome, answers_match) — every configuration of a (members,
    // sessions) cell is verified against the cell's 1-shard, wave-1
    // reference: identical per-session valid-MSP sets and stage-time
    // question counts, every session completed.
    let mut rows: Vec<(CrowdScaleOutcome, bool)> = Vec::new();
    let push = |rows: &mut Vec<(CrowdScaleOutcome, bool)>,
                    outcome: CrowdScaleOutcome,
                    reference: &CrowdScaleOutcome| {
        let ok = outcome.outcomes == reference.outcomes
            && outcome.outcomes.iter().all(|(_, _, completed)| *completed);
        assert!(
            ok,
            "crowd-scale {}x{} at {} shards / wave {} diverged from the reference",
            outcome.members, outcome.sessions, outcome.shards, outcome.wave
        );
        sink.gauge_labeled(
            "figures.crowdscale.qps",
            &format!(
                "m{}-s{}-sh{}-w{}",
                outcome.members, outcome.sessions, outcome.shards, outcome.wave
            ),
            outcome.qps,
        );
        rows.push((outcome, ok));
    };

    let sweep_members = *grid_members.last().expect("grid has members");
    let sweep_sessions = grid_sessions[grid_sessions.len() / 2];
    for &m in &grid_members {
        for &s in &grid_sessions {
            let reference = crowd_scale(&domain, m, s, 1, 1, seed);
            let fast = crowd_scale(&domain, m, s, shards, wave, seed);
            push(&mut rows, fast, &reference);
            if m == sweep_members && s == sweep_sessions {
                // The shard sweep rides on this cell: same wave, growing
                // shard counts, so the qps column isolates the sharding
                // gain.
                for &sh in &sweep_shards {
                    if sh == shards {
                        continue;
                    }
                    let swept = crowd_scale(&domain, m, s, sh, wave, seed);
                    push(&mut rows, swept, &reference);
                }
            }
            push(&mut rows, reference.clone(), &reference);
        }
    }

    let sweep_qps = |sh: usize| {
        rows.iter()
            .find(|(o, _)| {
                o.members == sweep_members
                    && o.sessions == sweep_sessions
                    && o.shards == sh
                    && o.wave == wave
            })
            .map(|(o, _)| o.qps)
    };
    let mut shard_gain = 1.0;
    if let (Some(one), Some(most)) = (sweep_qps(1), sweep_qps(*sweep_shards.last().unwrap())) {
        shard_gain = most / one.max(f64::EPSILON);
        println!(
            "shard sweep at {sweep_members} members / {sweep_sessions} sessions: \
             {one:.0} -> {most:.0} q/s ({shard_gain:.2}x from 1 -> {} shards)",
            sweep_shards.last().unwrap()
        );
        if !smoke {
            assert!(
                shard_gain >= 3.0,
                "sharding must buy at least 3x throughput at scale, got {shard_gain:.2}x"
            );
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(o, ok)| {
            vec![
                o.members.to_string(),
                o.sessions.to_string(),
                o.shards.to_string(),
                o.wave.to_string(),
                o.workers.to_string(),
                o.crowd_questions.to_string(),
                format!("{:.2}s", o.wall.as_secs_f64()),
                format!("{:.0}", o.qps),
                ok.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "members", "sessions", "shards", "wave", "workers", "crowd q", "wall", "q/s",
                "match"
            ],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(o, ok)| {
            format!(
                concat!(
                    "  {{\"members\": {}, \"sessions\": {}, \"shards\": {}, ",
                    "\"wave\": {}, \"workers\": {}, \"crowd_questions\": {}, ",
                    "\"store_hits\": {}, \"secs\": {:.6}, \"qps\": {:.3}, ",
                    "\"answers_match\": {}}}"
                ),
                o.members,
                o.sessions,
                o.shards,
                o.wave,
                o.workers,
                o.crowd_questions,
                o.store_hits,
                o.wall.as_secs_f64(),
                o.qps,
                ok,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"crowdscale\",\n\"mode\": {:?},\n\"seed\": {},\n\"shard_gain\": {:.3},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        shard_gain,
        json_rows.join(",\n")
    );
    let path = if smoke {
        "target/BENCH_crowdscale.smoke.json"
    } else {
        "BENCH_crowdscale.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Run the wire-protocol benchmark (PR 9) and write `BENCH_net.json` at
/// the repo root: the figure-1 workload served over TCP loopback through
/// `oassis-net` versus the identical sessions run in-process, plus the
/// mean round-trip of an idle-server `Hello` (pure framing + socket
/// cost). Served answers must match in-process exactly — the protocol is
/// an observability-preserving front-end, and this pins the price of the
/// indirection. `OASSIS_NET_SMOKE=1` shrinks the grid so CI can assert
/// the invariants in seconds.
fn run_net(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_NET_SMOKE").is_ok_and(|v| v == "1");
    let grid: &[(usize, u32)] = if smoke {
        &[(1, 2), (4, 2)]
    } else {
        &[(1, 2), (4, 2), (16, 2), (16, 8)]
    };
    let rtt_probes = if smoke { 64 } else { 512 };
    println!(
        "== net: served (TCP loopback) vs in-process sessions ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut rows: Vec<NetRow> = Vec::new();
    for &(sessions, pairs) in grid {
        let row = net_overhead(sessions, pairs, rtt_probes, seed);
        assert!(
            row.answers_match,
            "served sessions diverged from the in-process run \
             ({sessions} sessions, {} members)",
            row.members
        );
        sink.gauge_labeled(
            "figures.net.overhead_pct",
            &format!("{sessions}x{}", row.members),
            row.overhead_pct,
        );
        sink.gauge_labeled(
            "figures.net.rtt_usecs",
            &format!("{sessions}x{}", row.members),
            row.rtt_mean.as_secs_f64() * 1e6,
        );
        rows.push(row);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sessions.to_string(),
                r.members.to_string(),
                r.requests.to_string(),
                format!("{:.1}ms", r.inproc_time.as_secs_f64() * 1e3),
                format!("{:.1}ms", r.served_time.as_secs_f64() * 1e3),
                format!("{:+.1}%", r.overhead_pct),
                format!("{:.1}us", r.rtt_mean.as_secs_f64() * 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["sessions", "members", "requests", "in-process", "served", "overhead", "hello rtt"],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"sessions\": {}, \"members\": {}, \"requests\": {}, ",
                    "\"inproc_secs\": {:.6}, \"served_secs\": {:.6}, ",
                    "\"overhead_pct\": {:.3}, \"hello_rtt_usecs\": {:.3}, ",
                    "\"answers_match\": {}}}"
                ),
                r.sessions,
                r.members,
                r.requests,
                r.inproc_time.as_secs_f64(),
                r.served_time.as_secs_f64(),
                r.overhead_pct,
                r.rtt_mean.as_secs_f64() * 1e6,
                r.answers_match,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"net\",\n\"mode\": {:?},\n\"seed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        json_rows.join(",\n")
    );
    let path = if smoke {
        "target/BENCH_net.smoke.json"
    } else {
        "BENCH_net.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Run the query-planner benchmark (PR 10) and write `BENCH_planner.json`
/// at the repo root: each domain's canonical query plus a
/// `FILTER`-constrained variant, mined with the planner on and off. The
/// valid MSPs and question counts must be identical either way, and the
/// pushed-down constraint must shrink both the seed space and the crowd
/// traffic. `OASSIS_PLANNER_SMOKE=1` shrinks the crowd so CI can assert
/// the invariants in seconds.
fn run_planner(sink: &Arc<dyn EventSink>, seed: u64) {
    let smoke = std::env::var("OASSIS_PLANNER_SMOKE").is_ok_and(|v| v == "1");
    let members = if smoke { 6 } else { 24 };
    println!(
        "== planner: constraint pushdown ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let cases: [(Domain, &str); 3] = [
        (
            travel_domain(),
            "FILTER($x IN (<Venue-0-0>, <Venue-0-1>, <Venue-1-0>, <Venue-1-1>))",
        ),
        (culinary_domain(), "FILTER($d IN (<Dish-0>, <Dish-1>))"),
        (
            self_treatment_domain(),
            "FILTER($r IN (<Remedy-0>, <Remedy-1>))",
        ),
    ];
    let rows: Vec<PlannerRow> = cases
        .iter()
        .map(|(d, filter)| {
            let r = planner_effect(d, filter, members, 1_000_000, seed);
            assert!(
                r.answers_match,
                "{}: planner on/off disagreed on valid MSPs or question count",
                r.domain
            );
            assert!(
                r.pushdowns >= 1,
                "{}: the FILTER was not pushed into a scan",
                r.domain
            );
            assert!(
                r.filtered_seeds > 0 && r.filtered_seeds < r.base_seeds,
                "{}: pushdown did not narrow the seed space ({} vs {})",
                r.domain,
                r.filtered_seeds,
                r.base_seeds
            );
            assert!(
                r.filtered_questions < r.base_questions,
                "{}: pushdown did not reduce crowd questions ({} vs {})",
                r.domain,
                r.filtered_questions,
                r.base_questions
            );
            sink.gauge_labeled("figures.planner.eval_speedup", &r.domain, r.eval_speedup);
            r
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.domain.clone(),
                r.base_seeds.to_string(),
                r.filtered_seeds.to_string(),
                r.base_questions.to_string(),
                r.filtered_questions.to_string(),
                format!("{}/{}/{}", r.pushdowns, r.unfolds, r.pruned),
                format!("{:.1}us", r.eval_planned.as_secs_f64() * 1e6),
                format!("{:.1}us", r.eval_reference.as_secs_f64() * 1e6),
                format!("{:.2}x", r.eval_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "domain",
                "seeds",
                "seeds+FILTER",
                "questions",
                "questions+FILTER",
                "push/unfold/prune",
                "eval planned",
                "eval reference",
                "eval speedup"
            ],
            &table
        )
    );
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"domain\": {:?}, \"members\": {}, \"filter\": {:?}, ",
                    "\"base_seeds\": {}, \"filtered_seeds\": {}, ",
                    "\"base_questions\": {}, \"filtered_questions\": {}, ",
                    "\"pushdowns\": {}, \"unfolds\": {}, \"pruned\": {}, ",
                    "\"eval_planned_secs\": {:.9}, \"eval_reference_secs\": {:.9}, ",
                    "\"eval_speedup\": {:.3}, \"answers_match\": {}}}"
                ),
                r.domain,
                r.members,
                r.filter,
                r.base_seeds,
                r.filtered_seeds,
                r.base_questions,
                r.filtered_questions,
                r.pushdowns,
                r.unfolds,
                r.pruned,
                r.eval_planned.as_secs_f64(),
                r.eval_reference.as_secs_f64(),
                r.eval_speedup,
                r.answers_match,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"experiment\": \"planner\",\n\"mode\": {:?},\n\"seed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        if smoke { "smoke" } else { "full" },
        seed,
        json_rows.join(",\n")
    );
    let path = if smoke {
        "target/BENCH_planner.smoke.json"
    } else {
        "BENCH_planner.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig5", "shape", "dist", "mult",
            "crowdmix", "bounds", "growth", "runtime", "scale", "service", "durability",
            "crowd-scale", "net", "planner",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let seed = 2014;
    let sink = telemetry_sink();

    for w in wanted {
        match w {
            "fig4a" => fig4_stats("a", &travel_domain(), seed, &sink),
            "fig4b" => fig4_stats("b", &culinary_domain(), seed, &sink),
            "fig4c" => fig4_stats("c", &self_treatment_domain(), seed, &sink),
            "fig4d" => {
                let d = travel_domain();
                let crowd = paper_crowd(&d, seed);
                print_pace("d", &pace_of_collection(&d, 0.2, &crowd));
            }
            "fig4e" => {
                let d = self_treatment_domain();
                let crowd = paper_crowd(&d, seed);
                print_pace("e", &pace_of_collection(&d, 0.2, &crowd));
            }
            "fig4f" => print_curves(
                "Figure 4f: effect of answer types (synthetic, width 500 depth 7)",
                &answer_type_effect(seed),
            ),
            "fig5" => {
                for (tag, pct) in [("a", 0.02), ("b", 0.05), ("c", 0.10)] {
                    print_curves(
                        &format!(
                            "Figure 5{tag}: {:.0}% total MSPs (avg of 6 trials)",
                            pct * 100.0
                        ),
                        &algorithm_comparison(pct, 6, seed),
                    );
                }
            }
            "shape" => {
                println!("== §6.4: varying the DAG shape (5% MSPs) ==");
                let rows: Vec<Vec<String>> = shape_variation(0.05, seed)
                    .iter()
                    .map(|r| {
                        vec![
                            r.label.clone(),
                            r.dag_nodes.to_string(),
                            r.planted.to_string(),
                            r.questions.to_string(),
                            r.to_all_targets.map_or("-".into(), |q| q.to_string()),
                        ]
                    })
                    .collect();
                println!(
                    "{}",
                    render(
                        &[
                            "shape",
                            "DAG nodes",
                            "planted MSPs",
                            "#questions",
                            "to 100% MSPs"
                        ],
                        &rows
                    )
                );
            }
            "dist" => {
                println!("== §6.4: varying the MSP distribution (5% MSPs, width 500 depth 7) ==");
                let rows: Vec<Vec<String>> = distribution_variation(0.05, seed)
                    .iter()
                    .map(|r| {
                        vec![
                            r.label.clone(),
                            r.planted.to_string(),
                            r.questions.to_string(),
                            r.to_all_targets.map_or("-".into(), |q| q.to_string()),
                        ]
                    })
                    .collect();
                println!(
                    "{}",
                    render(
                        &["distribution", "planted MSPs", "#questions", "to 100% MSPs"],
                        &rows
                    )
                );
            }
            "mult" => {
                println!("== §6.4: multiplicities and lazy generation ==");
                let rows: Vec<Vec<String>> = multiplicity_variation(seed)
                    .iter()
                    .map(|r| {
                        vec![
                            format!("{:.0}%", r.mult_pct * 100.0),
                            r.size.to_string(),
                            r.questions.to_string(),
                            r.lazy_nodes.to_string(),
                            r.eager_nodes.to_string(),
                            format!("{:.4}%", r.lazy_pct),
                        ]
                    })
                    .collect();
                println!(
                    "{}",
                    render(
                        &[
                            "mult MSPs",
                            "size",
                            "#questions",
                            "lazy nodes",
                            "eager nodes",
                            "lazy%"
                        ],
                        &rows
                    )
                );
            }
            "crowdmix" => {
                println!("== §6.3: answer-type mix (travel domain) ==");
                let d = travel_domain();
                let m = crowd_mix(&d, &paper_crowd(&d, seed));
                println!(
                    "{}",
                    render(
                        &[
                            "#questions",
                            "concrete%",
                            "special.%",
                            "none-of-these%",
                            "pruning%"
                        ],
                        &[vec![
                            m.questions.to_string(),
                            format!("{:.1}%", m.concrete_pct),
                            format!("{:.1}%", m.specialization_pct),
                            format!("{:.1}%", m.none_of_these_pct),
                            format!("{:.1}%", m.pruning_pct),
                        ]]
                    )
                );
            }
            "bounds" => {
                println!("== Propositions 4.7/4.8: crowd-complexity bounds (2% MSPs) ==");
                let b = complexity_bounds(0.02, seed);
                println!(
                    "{}",
                    render(
                        &[
                            "unique questions",
                            "(|E|+|R|)·|msp|+|msp⁻|",
                            "|msp_valid|+|msp⁻|"
                        ],
                        &[vec![
                            b.unique_questions.to_string(),
                            b.upper_bound_arg.to_string(),
                            b.lower_bound_arg.to_string(),
                        ]]
                    )
                );
            }
            "growth" => {
                println!("== §6.3: crowd growth and the first MSP ==");
                let rows: Vec<Vec<String>> =
                    crowd_growth(&self_treatment_domain(), &[6, 12, 24, 48, 96], seed)
                        .iter()
                        .map(|r| {
                            vec![
                                r.members.to_string(),
                                r.to_first_msp.map_or("-".into(), |q| q.to_string()),
                                r.rounds_to_first_msp.map_or("-".into(), |q| q.to_string()),
                                r.total_questions.to_string(),
                            ]
                        })
                        .collect();
                println!(
                    "{}",
                    render(
                        &[
                            "members",
                            "to 1st MSP (questions)",
                            "to 1st MSP (rounds)",
                            "#questions"
                        ],
                        &rows
                    )
                );
            }
            "runtime" => {
                println!("== concurrent crowd-session runtime: wall-clock speedup ==");
                let d = self_treatment_domain();
                let per_answer = Duration::from_millis(25);
                let rows: Vec<Vec<String>> = [1usize, 2, 4, 8]
                    .iter()
                    .map(|&workers| {
                        let r = runtime_speedup(&d, 64, workers, per_answer, seed);
                        assert!(r.answers_match, "concurrent run changed the answers");
                        let label = format!("runtime:{workers}w");
                        sink.gauge_labeled("figures.speedup", &label, r.speedup);
                        vec![
                            r.members.to_string(),
                            r.workers.to_string(),
                            format!("{:.0}ms", r.per_answer.as_secs_f64() * 1e3),
                            format!("{:.2}s", r.sequential.as_secs_f64()),
                            format!("{:.2}s", r.concurrent.as_secs_f64()),
                            format!("{:.2}x", r.speedup),
                            r.questions.to_string(),
                        ]
                    })
                    .collect();
                println!(
                    "{}",
                    render(
                        &[
                            "members",
                            "workers",
                            "per-answer",
                            "sequential",
                            "concurrent",
                            "speedup",
                            "#questions"
                        ],
                        &rows
                    )
                );
            }
            "scale" => run_scale(&sink, seed),
            "service" => run_service(&sink, seed),
            "durability" => run_durability(&sink, seed),
            "crowd-scale" => run_crowd_scale(&sink, seed),
            "net" => run_net(&sink, seed),
            "planner" => run_planner(&sink, seed),
            other => eprintln!("unknown experiment {other:?} (try: all)"),
        }
    }
}
