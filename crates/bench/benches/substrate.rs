//! Criterion micro-benchmarks for the substrate layers: taxonomy closure,
//! triple-store pattern matching, SPARQL evaluation, fact-set implication
//! and personal-DB support computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use oassis_crowd::transaction::table3_dbs;
use oassis_datagen::{culinary_domain, travel_domain};
use oassis_ql::parse_query;
use oassis_sparql::{
    evaluate, evaluate_reference, evaluate_where, parse_patterns, plan, MatchMode, VarTable,
};
use oassis_store::ontology::figure1_ontology;
use oassis_vocab::{Fact, FactSet};

fn bench_taxonomy_closure(c: &mut Criterion) {
    // Building the culinary ontology computes two taxonomy closures over
    // ~190 terms; this measures the end-to-end substrate build.
    c.bench_function("ontology/build_culinary_domain", |b| {
        b.iter(|| black_box(culinary_domain()))
    });
}

fn bench_store_matching(c: &mut Criterion) {
    let domain = travel_domain();
    let store = domain.ontology.store();
    let v = domain.ontology.vocabulary();
    let sub_class_of = v.relation("subClassOf").unwrap();
    c.bench_function("store/match_by_relation", |b| {
        b.iter(|| black_box(store.matching(None, Some(sub_class_of), None).count()))
    });
    let act = v.element("Activity").unwrap();
    c.bench_function("store/match_by_object", |b| {
        b.iter(|| black_box(store.matching(None, None, Some(act.into())).count()))
    });
}

fn bench_sparql(c: &mut Criterion) {
    let o = figure1_ontology();
    let src = r#"
        $w subClassOf* Attraction.
        $x instanceOf $w.
        $x inside NYC.
        $x hasLabel "child-friendly".
        $y subClassOf* Activity.
        $z instanceOf Restaurant.
        $z nearBy $x
    "#;
    c.bench_function("sparql/parse_running_example", |b| {
        b.iter_batched(
            VarTable::new,
            |mut vars| black_box(parse_patterns(src, &o, &mut vars).unwrap()),
            BatchSize::SmallInput,
        )
    });
    let mut vars = VarTable::new();
    let pats = parse_patterns(src, &o, &mut vars).unwrap();
    c.bench_function("sparql/evaluate_running_example", |b| {
        b.iter(|| black_box(evaluate(&o, &pats, &vars, MatchMode::Semantic).len()))
    });

    let travel = travel_domain();
    let q = parse_query(&travel.query, &travel.ontology).unwrap();
    c.bench_function("sparql/evaluate_travel_where", |b| {
        b.iter(|| {
            black_box(
                evaluate_where(
                    &travel.ontology,
                    &q.where_clause,
                    &q.vars,
                    MatchMode::Semantic,
                )
                .len(),
            )
        })
    });
    c.bench_function("sparql/evaluate_travel_where_reference", |b| {
        b.iter(|| {
            black_box(
                evaluate_reference(
                    &travel.ontology,
                    &q.where_clause,
                    &q.vars,
                    MatchMode::Semantic,
                )
                .len(),
            )
        })
    });
    c.bench_function("sparql/plan_compile_and_optimize", |b| {
        b.iter(|| {
            let compiled = plan::compile(&travel.ontology, &q.where_clause, MatchMode::Semantic);
            black_box(plan::optimize_report(
                &travel.ontology,
                compiled,
                MatchMode::Semantic,
            ))
        })
    });
}

fn bench_support(c: &mut Criterion) {
    let o = figure1_ontology();
    let v = o.vocabulary();
    let (d1, _) = table3_dbs(v);
    let fs = FactSet::from_facts([
        Fact::new(
            v.element("Sport").unwrap(),
            v.relation("doAt").unwrap(),
            v.element("Central Park").unwrap(),
        ),
        Fact::new(
            v.element("Food").unwrap(),
            v.relation("eatAt").unwrap(),
            v.element("Restaurant").unwrap(),
        ),
    ]);
    c.bench_function("crowd/personal_db_support", |b| {
        b.iter(|| black_box(d1.support(&fs, v)))
    });
    c.bench_function("ontology/implies_fact", |b| {
        let f = Fact::new(
            v.element("Place").unwrap(),
            v.relation("nearBy").unwrap(),
            v.element("NYC").unwrap(),
        );
        b.iter(|| black_box(o.implies_fact(&f)))
    });
}

criterion_group!(
    benches,
    bench_taxonomy_closure,
    bench_store_matching,
    bench_sparql,
    bench_support
);
criterion_main!(benches);
