//! Criterion benchmarks for the mining engine: lazy DAG generation,
//! order/inference checks, and full algorithm runs on the synthetic
//! instances behind Figures 4f and 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oassis_core::{HorizontalMiner, MinerConfig, NaiveMiner, VerticalMiner};
use oassis_crowd::MemberId;
use oassis_datagen::{plant_msps, MspDistribution, PlantedOracle, SynthConfig, SynthInstance};

fn small_instance() -> SynthInstance {
    SynthInstance::generate(&SynthConfig {
        width: 200,
        depth: 5,
        threshold: 0.2,
        seed: 7,
        ..Default::default()
    })
}

fn bench_space_ops(c: &mut Criterion) {
    let inst = small_instance();
    let mid = inst.all_nodes[inst.all_nodes.len() / 2].clone();
    c.bench_function("space/successors", |b| {
        b.iter(|| black_box(inst.space.successors(&mid).len()))
    });
    c.bench_function("space/predecessors", |b| {
        b.iter(|| black_box(inst.space.predecessors(&mid).len()))
    });
    c.bench_function("space/in_space", |b| {
        b.iter(|| black_box(inst.space.in_space(&mid)))
    });
    c.bench_function("space/instantiate", |b| {
        b.iter(|| black_box(inst.space.instantiate(&mid).len()))
    });
    c.bench_function("space/enumerate_single_valued", |b| {
        b.iter(|| black_box(inst.space.enumerate_single_valued(1_000_000).unwrap().len()))
    });
}

fn bench_assignment_order(c: &mut Criterion) {
    let inst = small_instance();
    let vocab = inst.space.ontology().vocabulary();
    let a = inst.all_nodes.first().unwrap();
    let z = inst.all_nodes.last().unwrap();
    c.bench_function("assignment/leq", |b| b.iter(|| black_box(a.leq(z, vocab))));
}

fn bench_miners(c: &mut Criterion) {
    let inst = small_instance();
    let planted = plant_msps(
        &inst.space,
        &inst.valid_nodes,
        8,
        MspDistribution::Uniform,
        11,
    );
    let mut group = c.benchmark_group("miners");
    group.sample_size(20);
    for (name, which) in [("vertical", 0usize), ("horizontal", 1), ("naive", 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &which, |b, &which| {
            b.iter(|| {
                let mut oracle = PlantedOracle::new(MemberId(0), &inst.space, &planted, 0.5);
                let cfg = MinerConfig::new(0.2);
                let out = match which {
                    0 => VerticalMiner::run(&inst.space, &mut oracle, &cfg),
                    1 => HorizontalMiner::run(&inst.space, &mut oracle, &cfg),
                    _ => NaiveMiner::run(&inst.space, &mut oracle, &cfg, &inst.valid_nodes),
                };
                black_box(out.stats.total_questions)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_space_ops,
    bench_assignment_order,
    bench_miners
);

mod multiuser_benches {
    use super::*;
    use oassis_core::{EngineConfig, Oassis};
    use oassis_crowd::CrowdMember;
    use oassis_datagen::{generate_crowd, self_treatment_domain, CrowdGenConfig};

    pub fn bench_multiuser(c: &mut Criterion) {
        let domain = self_treatment_domain();
        let engine = Oassis::new(domain.ontology.clone());
        let query = engine.parse(&domain.query).unwrap();
        let crowd_cfg = CrowdGenConfig {
            members: 12,
            transactions_per_member: 12,
            popular_patterns: 6,
            popularity: 0.8,
            zipf: 1.0,
            facts_per_transaction: 1,
            discretize: false,
            seed: 1,
        };
        let mut group = c.benchmark_group("engine");
        group.sample_size(10);
        group.bench_function("multiuser_self_treatment_0.2", |b| {
            b.iter(|| {
                let crowd = generate_crowd(&domain, &crowd_cfg);
                let mut members: Vec<Box<dyn CrowdMember>> = crowd
                    .members
                    .into_iter()
                    .map(|m| Box::new(m) as Box<dyn CrowdMember>)
                    .collect();
                let result = engine
                    .execute_parsed(&query, 0.2, &mut members, &EngineConfig::default())
                    .unwrap();
                black_box(result.stats.total_questions)
            })
        });
        group.finish();
    }
}

mod border_benches {
    use super::*;
    use oassis_core::ClassificationState;

    pub fn bench_border(c: &mut Criterion) {
        let inst = small_instance();
        let vocab = inst.space.ontology().vocabulary();
        // Build a state with a realistic border from a planted run.
        let planted = plant_msps(
            &inst.space,
            &inst.valid_nodes,
            10,
            MspDistribution::Uniform,
            3,
        );
        let mut state = ClassificationState::new();
        for m in &planted {
            state.mark_significant(m, vocab);
        }
        for m in &planted {
            for s in inst.space.successors(m) {
                state.mark_insignificant(&s, vocab);
            }
        }
        let probe = inst.all_nodes[inst.all_nodes.len() / 3].clone();
        c.bench_function("border/status_check", |b| {
            b.iter(|| black_box(state.status(&probe, vocab)))
        });
    }
}

criterion_group!(
    extended,
    multiuser_benches::bench_multiuser,
    border_benches::bench_border
);
criterion_main!(benches, extended);
