#![warn(missing_docs)]

//! Structured event/metrics subsystem for the OASSIS reproduction.
//!
//! The paper's experimental claims are observability claims: questions
//! asked per MSP found, the fraction of assignment-DAG nodes ever
//! generated, crowd-answer cost. This crate turns those into a first-class
//! event stream. Instrumented code emits [`Event`]s into an [`EventSink`];
//! three sinks ship with the crate:
//!
//! - [`NullSink`] — the default; reports itself disabled so hot paths can
//!   skip event construction entirely,
//! - [`InMemorySink`] — thread-safe aggregation with queryable
//!   [`Snapshot`]s, for tests and benches,
//! - [`JsonLinesSink`] — one JSON object per event, for offline analysis.
//!
//! Timed regions use the [`Span`] RAII guard (or the [`scoped!`] macro),
//! which emits a [`EventKind::SpanExit`] with monotonic elapsed nanoseconds
//! when dropped.
//!
//! The full event taxonomy emitted by the OASSIS crates is documented in
//! `docs/observability.md`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Canonical event names emitted by the OASSIS crates. Using these
/// constants keeps emitters and sink-side consumers (tests, the
/// `RecorderSink` in `oassis-core`, figure analysis scripts) in agreement;
/// see `docs/observability.md` for labels and units.
pub mod names {
    /// Counter: one crowd question posed. Label: `concrete`,
    /// `specialization`, `none_of_these`, or `pruning`.
    pub const QUESTION_ASKED: &str = "engine.question.asked";
    /// Counter: first time a distinct fact-set is asked about.
    pub const QUESTION_UNIQUE: &str = "engine.question.unique";
    /// Counter: an MSP was confirmed. Label: `valid` or `invalid`.
    pub const MSP_CONFIRMED: &str = "engine.msp.confirmed";
    /// Counter: an assignment was classified significant/insignificant
    /// (a border update). Label: `significant` or `insignificant`.
    pub const BORDER_UPDATED: &str = "engine.border.updated";
    /// Counter: assignment-DAG nodes materialized by the lazy generator.
    pub const DAG_NODES_GENERATED: &str = "engine.dag.nodes_generated";
    /// Gauge: total assignment-DAG size when cheap enough to count.
    pub const DAG_NODES_TOTAL: &str = "engine.dag.nodes_total";
    /// Span: OASSIS-QL parse + assignment-space planning.
    pub const SPAN_PLAN: &str = "engine.plan";
    /// Span: assignment-space construction (WHERE evaluation included).
    pub const SPAN_SPACE_BUILD: &str = "engine.space.build";
    /// Span: one full multi-user mining run.
    pub const SPAN_RUN: &str = "engine.run";
    /// Span: one member question/answer round-trip.
    pub const SPAN_ROUNDTRIP: &str = "engine.question.roundtrip";
    /// Counter: questions per mining algorithm. Label: `vertical`,
    /// `horizontal`, `naive`, or `multiuser`.
    pub const ALGO_QUESTIONS: &str = "algo.questions";
    /// Counter: a member's cached answer was reused.
    pub const CROWD_CACHE_HIT: &str = "crowd.cache.hit";
    /// Counter: no cached answer existed for (fact-set, member).
    pub const CROWD_CACHE_MISS: &str = "crowd.cache.miss";
    /// Histogram: simulated per-member answer latency in nanoseconds.
    pub const CROWD_ANSWER_NANOS: &str = "crowd.answer.nanos";
    /// Histogram: answers available when an aggregator reached a decision.
    pub const CROWD_QUORUM_SIZE: &str = "crowd.quorum.size";
    /// Gauge: crowd questions currently in flight in the session runtime
    /// (dispatched to a worker, answer not yet integrated).
    pub const RUNTIME_INFLIGHT: &str = "runtime.questions.inflight";
    /// Counter: a question was dispatched to the executor. Label:
    /// `committed` (blocking ask) or `speculative` (prefetch). Every
    /// dispatch is eventually matched by one `RUNTIME_RESOLVED` count —
    /// the conservation law the simulation oracle checks.
    pub const RUNTIME_DISPATCHED: &str = "runtime.question.dispatched";
    /// Counter: a dispatched question's response was absorbed by the
    /// coordinator. Label: `answered`, `cancelled`, `timeout`, or
    /// `poisoned`.
    pub const RUNTIME_RESOLVED: &str = "runtime.question.resolved";
    /// Counter: one question attempt timed out. Label: `drop` (the member
    /// never responded) or `slow` (the answer would arrive too late).
    pub const RUNTIME_TIMEOUT: &str = "runtime.question.timeout";
    /// Counter: a timed-out question was retried with the same member.
    pub const RUNTIME_RETRY: &str = "runtime.question.retry";
    /// Counter: a speculative question was cancelled at worker pickup
    /// because the shared border had already classified its assignment.
    pub const RUNTIME_CANCELLED: &str = "runtime.question.cancelled";
    /// Counter: a member was excluded from the run. Label: `timeout`
    /// (retries exhausted) or `poisoned` (the member panicked mid-answer).
    pub const RUNTIME_MEMBER_EXCLUDED: &str = "runtime.member.excluded";
    /// Counter: speculative prefetch bookkeeping. Label: `dispatched`
    /// (prefetch sent to a worker), `hit` (a prefetched answer satisfied a
    /// committed question), or `wasted` (never consumed by the run).
    pub const RUNTIME_SPECULATION: &str = "runtime.speculation";
    /// Histogram: simulated member answer latency in nanoseconds, measured
    /// on the worker thread (queue wait + delivery delay + answering).
    pub const RUNTIME_ANSWER_NANOS: &str = "runtime.answer.nanos";
    /// Span: one session-runtime worker thread's lifetime.
    pub const SPAN_WORKER: &str = "runtime.worker";
    /// Counter: a memoized `SpaceCache` lookup was served from the arena.
    /// Label: `successors`, `predecessors`, `valid`, or `instantiate`.
    pub const SPACE_CACHE_HIT: &str = "space.cache.hit";
    /// Counter: a `SpaceCache` lookup had to derive its result afresh.
    /// Same labels as [`SPACE_CACHE_HIT`].
    pub const SPACE_CACHE_MISS: &str = "space.cache.miss";
    /// Counter: border witnesses skipped by the index prefilter (weight
    /// bucket or root-mask mismatch) during a `status()` call.
    pub const BORDER_INDEX_PRUNED: &str = "border.index.pruned";
    /// Span: building one member's fact → transaction-id-set support index.
    pub const CROWD_TIDLIST_BUILD: &str = "crowd.tidlist.build";
    /// Counter: triple-pattern index scans. Label: the binding shape —
    /// `spo`, `sp?`, `?po`, or `?p?` (`?` marks an unbound endpoint).
    pub const SPARQL_PATTERN_SCAN: &str = "sparql.pattern.scan";
    /// Histogram: taxonomy depth reached by property-path expansion.
    pub const SPARQL_PATH_DEPTH: &str = "sparql.path.depth";
    /// Counter: scans that received a pushed-down `FILTER` value
    /// restriction during plan optimization.
    pub const SPARQL_PLAN_PUSHDOWN: &str = "sparql.plan.pushdown";
    /// Counter: `rel*`/`rel+` scans the planner unfolded into taxonomy
    /// reachability checks (the stored edges mirror `≤E`).
    pub const SPARQL_PLAN_UNFOLD: &str = "sparql.plan.unfold";
    /// Counter: plan subtrees pruned as provably empty.
    pub const SPARQL_PLAN_PRUNED: &str = "sparql.plan.pruned";
    /// Counter: a `SpaceCache` arena slot was reclaimed for a new
    /// assignment after the configured capacity was reached.
    pub const SPACE_CACHE_EVICTED: &str = "space.cache.evicted";
    /// Gauge: sessions currently admitted to the `OassisService` and not
    /// yet finalized.
    pub const SERVICE_SESSIONS_ACTIVE: &str = "service.sessions.active";
    /// Counter: a service session's question was dispatched to the shared
    /// crowd pool. Label: `s<session-id>`.
    pub const SERVICE_QUESTION_DISPATCHED: &str = "service.question.dispatched";
    /// Counter: a crowd answer was routed back to a service session.
    /// Label: `s<session-id>`.
    pub const SERVICE_QUESTION_RESOLVED: &str = "service.question.resolved";
    /// Counter: a cross-query `AnswerStore` lookup spared a crowd question.
    /// Label: `serve` (hit at dispatch time) or `seed` (answers replayed
    /// into a newly admitted session's cache).
    pub const ANSWERSTORE_HIT: &str = "answerstore.hit";
    /// Counter: an `AnswerStore` lookup found no stored answer and the
    /// crowd had to be asked.
    pub const ANSWERSTORE_MISS: &str = "answerstore.miss";
    /// Counter: one record appended to the durability write-ahead log.
    /// Label: the record kind — `answer`, `admit`, `budget`, or `close`.
    pub const WAL_APPEND: &str = "wal.append";
    /// Counter: records replayed from the log (snapshot + tail) while
    /// opening or recovering a durable store.
    pub const WAL_REPLAY: &str = "wal.replay";
    /// Counter: a snapshot was written and the log tail compacted away.
    pub const WAL_SNAPSHOT: &str = "wal.snapshot";
    /// Counter: a question was routed to a member shard's dispatch queue.
    /// Label: `shard<k>`.
    pub const SHARD_DISPATCHED: &str = "shard.dispatched";
    /// Counter: prefetch questions staged into a service session's wave
    /// (beyond its one committed dispatch). Label: `s<session-id>`.
    pub const WAVE_STAGED: &str = "wave.staged";
    /// Counter: a committed service question was served from an answer a
    /// wave prefetch already collected — accounted exactly like a crowd
    /// dispatch (it was one), but with zero commit-time latency.
    /// Label: `s<session-id>`.
    pub const WAVE_HIT: &str = "wave.hit";
    /// Counter: a service session's committed dispatch found its target
    /// seat busy and the session skipped to wave work for the cycle.
    /// Label: `s<session-id>`.
    pub const SERVICE_DISPATCH_STALLED: &str = "service.dispatch.stalled";
}

/// The measurement carried by an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A monotonic count increment (e.g. "one more question asked").
    Counter(u64),
    /// A point-in-time level that may move both ways.
    Gauge(f64),
    /// One observation of a distribution (latency, quorum size, depth).
    Histogram(f64),
    /// A timed region began.
    SpanEnter,
    /// A timed region ended after `nanos` monotonic nanoseconds.
    SpanExit {
        /// Elapsed monotonic nanoseconds since the matching enter.
        nanos: u64,
    },
}

/// One instrumentation record. Borrowed, cheap to construct, and only
/// built when the receiving sink is enabled.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Dotted event name, e.g. `"engine.question.asked"`.
    pub name: &'a str,
    /// The measurement.
    pub kind: EventKind,
    /// Optional dimension (algorithm name, question kind, binding shape).
    pub label: Option<&'a str>,
}

impl<'a> Event<'a> {
    /// A counter increment of `n`.
    pub fn counter(name: &'a str, n: u64) -> Self {
        Event {
            name,
            kind: EventKind::Counter(n),
            label: None,
        }
    }

    /// A gauge level.
    pub fn gauge(name: &'a str, value: f64) -> Self {
        Event {
            name,
            kind: EventKind::Gauge(value),
            label: None,
        }
    }

    /// A histogram observation.
    pub fn histogram(name: &'a str, value: f64) -> Self {
        Event {
            name,
            kind: EventKind::Histogram(value),
            label: None,
        }
    }

    /// Attach a label dimension.
    pub fn with_label(mut self, label: &'a str) -> Self {
        self.label = Some(label);
        self
    }

    /// The aggregation key: `name` or `name[label]`.
    fn key(&self) -> String {
        match self.label {
            Some(l) => format!("{}[{}]", self.name, l),
            None => self.name.to_string(),
        }
    }
}

/// A receiver for instrumentation events.
///
/// Implementations must be cheap to call and tolerant of concurrent
/// emission. `Debug` is required so configuration structs holding a sink
/// handle can keep deriving `Debug`.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// Whether this sink wants events at all. Instrumented code checks
    /// this once per scope and skips event construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn emit(&self, event: &Event<'_>);
}

/// Convenience emission helpers for shared sink handles.
pub trait SinkExt {
    /// Emit a counter increment of `n` if the sink is enabled.
    fn count(&self, name: &str, n: u64);
    /// Emit a labeled counter increment of `n` if the sink is enabled.
    fn count_labeled(&self, name: &str, label: &str, n: u64);
    /// Emit a gauge level if the sink is enabled.
    fn gauge(&self, name: &str, value: f64);
    /// Emit a labeled gauge level if the sink is enabled.
    fn gauge_labeled(&self, name: &str, label: &str, value: f64);
    /// Emit a histogram observation if the sink is enabled.
    fn observe(&self, name: &str, value: f64);
}

impl SinkExt for Arc<dyn EventSink> {
    fn count(&self, name: &str, n: u64) {
        if self.enabled() {
            self.emit(&Event::counter(name, n));
        }
    }

    fn count_labeled(&self, name: &str, label: &str, n: u64) {
        if self.enabled() {
            self.emit(&Event::counter(name, n).with_label(label));
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        if self.enabled() {
            self.emit(&Event::gauge(name, value));
        }
    }

    fn gauge_labeled(&self, name: &str, label: &str, value: f64) {
        if self.enabled() {
            self.emit(&Event::gauge(name, value).with_label(label));
        }
    }

    fn observe(&self, name: &str, value: f64) {
        if self.enabled() {
            self.emit(&Event::histogram(name, value));
        }
    }
}

/// The no-op sink. Reports itself disabled, so instrumented code skips
/// event construction; the `emit` body is empty and inlines away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&self, _event: &Event<'_>) {}
}

/// The shared process-wide [`NullSink`] handle used as every default.
pub fn null_sink() -> Arc<dyn EventSink> {
    static NULL: OnceLock<Arc<dyn EventSink>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullSink)))
}

/// Number of log-scale histogram buckets: bucket `i` covers values in
/// `(2^(i-1), 2^i]`, with bucket 0 holding everything `<= 1` and the last
/// bucket holding everything larger than `2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The log2-scale bucket index for a histogram observation.
pub fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 1.0 {
        // Non-positive, NaN, and everything up to 1 land in bucket 0.
        return 0;
    }
    let idx = value.log2().ceil() as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (`+inf` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        f64::INFINITY
    } else {
        (i as f64).exp2()
    }
}

/// Aggregated histogram state in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Log2-scale bucket counts; see [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    fn new() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated span timing in a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Spans entered but not yet exited at snapshot time.
    pub open: u64,
    /// Total nanoseconds across completed spans.
    pub total_nanos: u64,
}

/// A queryable point-in-time view of an [`InMemorySink`].
///
/// Keys are `name` or `name[label]`, matching [`Event`] identity.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Accumulated counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge levels.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram aggregates.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span timing aggregates.
    pub spans: BTreeMap<String, SpanStats>,
}

impl Snapshot {
    /// Total for `key`, or 0 if never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters whose key starts with `name[`, plus the bare
    /// `name` counter — the total across every label of one counter.
    pub fn counter_across_labels(&self, name: &str) -> u64 {
        let prefix = format!("{name}[");
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Last gauge level for `key`, if ever written.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Histogram aggregate for `key`, if any observation arrived.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms.get(key)
    }

    /// Span timing for `key`, if the span was ever entered.
    pub fn span(&self, key: &str) -> Option<SpanStats> {
        self.spans.get(key).copied()
    }
}

/// Thread-safe aggregating sink for tests and benches.
#[derive(Debug, Default)]
pub struct InMemorySink {
    state: Mutex<Snapshot>,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink behind a shared handle, ready for `EngineConfig`.
    pub fn shared() -> Arc<InMemorySink> {
        Arc::new(Self::new())
    }

    /// Copy out the current aggregate state.
    pub fn snapshot(&self) -> Snapshot {
        self.state.lock().expect("obs sink poisoned").clone()
    }

    /// Discard all aggregate state.
    pub fn reset(&self) {
        *self.state.lock().expect("obs sink poisoned") = Snapshot::default();
    }
}

impl EventSink for InMemorySink {
    fn emit(&self, event: &Event<'_>) {
        let key = event.key();
        let mut state = self.state.lock().expect("obs sink poisoned");
        match event.kind {
            EventKind::Counter(n) => {
                *state.counters.entry(key).or_insert(0) += n;
            }
            EventKind::Gauge(v) => {
                state.gauges.insert(key, v);
            }
            EventKind::Histogram(v) => {
                state
                    .histograms
                    .entry(key)
                    .or_insert_with(HistogramSummary::new)
                    .observe(v);
            }
            EventKind::SpanEnter => {
                state.spans.entry(key).or_default().open += 1;
            }
            EventKind::SpanExit { nanos } => {
                let s = state.spans.entry(key).or_default();
                s.open = s.open.saturating_sub(1);
                s.count += 1;
                s.total_nanos += nanos;
            }
        }
    }
}

/// A sink writing one JSON object per event, newline-delimited.
///
/// JSON is produced by hand (the workspace has no serde); names and labels
/// are escaped per RFC 8259. Typical line:
///
/// ```json
/// {"event":"engine.question.asked","type":"counter","value":1,"label":"concrete"}
/// ```
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wrap any writer (a file, a `Vec<u8>`, stdout).
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonLinesSink {
            out: Mutex::new(Box::new(writer)),
        }
    }

    /// Create (truncating) a file at `path` and write events to it.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("obs sink poisoned").flush()
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Escape `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format `v` so the output is valid JSON (no NaN/inf literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl EventSink for JsonLinesSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"event\":\"");
        escape_json(event.name, &mut line);
        line.push('"');
        let (ty, value) = match event.kind {
            EventKind::Counter(n) => ("counter", n.to_string()),
            EventKind::Gauge(v) => ("gauge", json_f64(v)),
            EventKind::Histogram(v) => ("histogram", json_f64(v)),
            EventKind::SpanEnter => ("span_enter", "null".to_string()),
            EventKind::SpanExit { nanos } => ("span_exit_ns", nanos.to_string()),
        };
        line.push_str(",\"type\":\"");
        line.push_str(ty);
        line.push_str("\",\"value\":");
        line.push_str(&value);
        if let Some(label) = event.label {
            line.push_str(",\"label\":\"");
            escape_json(label, &mut line);
            line.push('"');
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("obs sink poisoned");
        let _ = out.write_all(line.as_bytes());
    }
}

/// RAII guard for a timed region: emits [`EventKind::SpanEnter`] on
/// creation and [`EventKind::SpanExit`] with monotonic elapsed nanoseconds
/// on drop. When the sink is disabled no clock is read and drop is free.
#[derive(Debug)]
pub struct Span<'a> {
    sink: &'a dyn EventSink,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Enter a span named `name` on `sink`.
    pub fn enter(sink: &'a dyn EventSink, name: &'static str) -> Self {
        let start = if sink.enabled() {
            sink.emit(&Event {
                name,
                kind: EventKind::SpanEnter,
                label: None,
            });
            Some(Instant::now())
        } else {
            None
        };
        Span { sink, name, start }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.sink.emit(&Event {
                name: self.name,
                kind: EventKind::SpanExit { nanos },
                label: None,
            });
        }
    }
}

/// Time the rest of the enclosing block as a span:
///
/// ```
/// use std::sync::Arc;
/// use oassis_obs::{scoped, EventSink, InMemorySink};
///
/// let sink: Arc<dyn EventSink> = InMemorySink::shared();
/// {
///     scoped!(sink, "engine.run");
///     // ... timed work ...
/// }
/// assert!(sink.enabled());
/// ```
///
/// `$sink` is any expression that derefs to a `dyn EventSink` (for example
/// an `Arc<dyn EventSink>`); the guard lives until the end of the block.
#[macro_export]
macro_rules! scoped {
    ($sink:expr, $name:expr) => {
        let _oassis_span = $crate::Span::enter(&*$sink, $name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_covers_edges() {
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.5), 1);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(3.0), 2);
        assert_eq!(bucket_index(4.0), 2);
        assert_eq!(bucket_index(1024.0), 10);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        // Every value falls in the bucket whose upper bound is >= it.
        for v in [0.1, 1.0, 7.0, 100.0, 1e9, 1e30] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above bucket {i} bound");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn counters_accumulate_per_label() {
        let sink = InMemorySink::new();
        sink.emit(&Event::counter("q", 1).with_label("concrete"));
        sink.emit(&Event::counter("q", 2).with_label("concrete"));
        sink.emit(&Event::counter("q", 5).with_label("pruning"));
        sink.emit(&Event::counter("other", 7));
        let snap = sink.snapshot();
        assert_eq!(snap.counter("q[concrete]"), 3);
        assert_eq!(snap.counter("q[pruning]"), 5);
        assert_eq!(snap.counter("q[missing]"), 0);
        assert_eq!(snap.counter_across_labels("q"), 8);
        assert_eq!(snap.counter_across_labels("other"), 7);
    }

    #[test]
    fn gauges_keep_last_value_and_histograms_aggregate() {
        let sink = InMemorySink::new();
        sink.emit(&Event::gauge("level", 10.0));
        sink.emit(&Event::gauge("level", 4.0));
        for v in [1.0, 3.0, 5.0, 7.0] {
            sink.emit(&Event::histogram("h", v));
        }
        let snap = sink.snapshot();
        assert_eq!(snap.gauge("level"), Some(4.0));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 16.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 7.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.buckets[bucket_index(1.0)], 1); // 1.0
        assert_eq!(h.buckets[bucket_index(3.0)], 1); // 3.0 in (2, 4]
        assert_eq!(h.buckets[bucket_index(5.0)], 2); // 5.0 and 7.0 in (4, 8]
    }

    #[test]
    fn span_nesting_times_both_levels() {
        let sink = InMemorySink::new();
        {
            let _outer = Span::enter(&sink, "outer");
            {
                let _inner = Span::enter(&sink, "inner");
                std::hint::black_box(());
            }
            {
                let _inner = Span::enter(&sink, "inner");
                std::hint::black_box(());
            }
            let mid = sink.snapshot();
            assert_eq!(mid.span("outer").unwrap().open, 1);
            assert_eq!(mid.span("outer").unwrap().count, 0);
            assert_eq!(mid.span("inner").unwrap().count, 2);
        }
        let snap = sink.snapshot();
        let outer = snap.span("outer").unwrap();
        let inner = snap.span("inner").unwrap();
        assert_eq!(outer.open, 0);
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(outer.total_nanos >= inner.total_nanos);
    }

    #[test]
    fn scoped_macro_holds_guard_to_end_of_block() {
        let mem = InMemorySink::shared();
        let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
        {
            scoped!(sink, "block");
            // Still open inside the block.
            assert_eq!(mem.snapshot().span("block").unwrap().open, 1);
        }
        assert_eq!(mem.snapshot().span("block").unwrap().count, 1);
    }

    #[test]
    fn null_sink_is_disabled_and_spans_skip_the_clock() {
        let sink = null_sink();
        assert!(!sink.enabled());
        let span = Span::enter(&*sink, "nothing");
        assert!(span.start.is_none());
    }

    #[test]
    fn json_lines_escape_and_shape() {
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Tee(Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonLinesSink::new(Tee(Arc::clone(&buffer)));
        sink.emit(&Event::counter("a.b", 3).with_label("x\"y\\z"));
        sink.emit(&Event::gauge("g", f64::INFINITY));
        sink.emit(&Event::histogram("h", 2.5));
        drop(sink);

        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"event":"a.b","type":"counter","value":3,"label":"x\"y\\z"}"#
        );
        assert_eq!(lines[1], r#"{"event":"g","type":"gauge","value":null}"#);
        assert_eq!(lines[2], r#"{"event":"h","type":"histogram","value":2.5}"#);
    }

    #[test]
    fn sink_ext_helpers_respect_enabled() {
        let mem = InMemorySink::shared();
        let shared: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
        shared.count("c", 2);
        shared.count_labeled("c", "l", 3);
        shared.gauge("g", 1.5);
        shared.observe("h", 9.0);
        let snap = mem.snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.counter("c[l]"), 3);
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);

        // The null sink accepts the same calls without effect.
        let null = null_sink();
        null.count("c", 1);
        null.observe("h", 1.0);
    }
}
