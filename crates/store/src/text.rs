//! A line-oriented text format for authoring ontologies.
//!
//! Element names may contain spaces (`Central Park`), so positions are
//! separated by `|`:
//!
//! ```text
//! # The Figure 1 fragment relevant to Ann's query.
//! Biking | subClassOf | Sport
//! Central Park | instanceOf | Park
//! Central Park | inside | NYC
//! Central Park | hasLabel | "child-friendly"
//! @rel_isa inside nearBy        # nearBy ≤R inside
//! @element Boathouse            # vocabulary-only term
//! @relation doAt
//! ```
//!
//! Blank lines and `#` comments are ignored; `subClassOf` / `instanceOf`
//! triples update the element order, and quoted objects become literals.

use crate::error::StoreError;
use crate::ontology::{Ontology, OntologyBuilder};

/// Parse the text format into an [`Ontology`].
pub fn parse_ontology(input: &str) -> Result<Ontology, StoreError> {
    let mut b = OntologyBuilder::new();
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            parse_directive(&mut b, rest, line_no)?;
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        let [s, r, o] = parts.as_slice() else {
            return Err(StoreError::Parse {
                line: line_no,
                msg: format!("expected `subject | relation | object`, got {line:?}"),
            });
        };
        if s.is_empty() || r.is_empty() || o.is_empty() {
            return Err(StoreError::Parse {
                line: line_no,
                msg: "empty position in triple".into(),
            });
        }
        if let Some(label) = o.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
            if *r != crate::ontology::HAS_LABEL {
                return Err(StoreError::Parse {
                    line: line_no,
                    msg: format!("literal objects are only allowed with hasLabel, got {r:?}"),
                });
            }
            b.label(s, label);
        } else {
            b.triple(s, r, o);
        }
    }
    b.build().map_err(StoreError::from)
}

fn parse_directive(b: &mut OntologyBuilder, rest: &str, line: usize) -> Result<(), StoreError> {
    let mut words = rest.split_whitespace();
    let Some(kind) = words.next() else {
        return Err(StoreError::Parse {
            line,
            msg: "empty directive".into(),
        });
    };
    match kind {
        // `@rel_isa specific general` records `general ≤R specific`.
        "rel_isa" => {
            let (Some(specific), Some(general), None) = (words.next(), words.next(), words.next())
            else {
                return Err(StoreError::Parse {
                    line,
                    msg: "@rel_isa expects exactly two relation names".into(),
                });
            };
            b.relation_isa(specific, general);
        }
        "element" => {
            let name = rest["element".len()..].trim();
            if name.is_empty() {
                return Err(StoreError::Parse {
                    line,
                    msg: "@element expects a name".into(),
                });
            }
            b.element(name);
        }
        "relation" => {
            let name = rest["relation".len()..].trim();
            if name.is_empty() {
                return Err(StoreError::Parse {
                    line,
                    msg: "@relation expects a name".into(),
                });
            }
            b.relation(name);
        }
        other => {
            return Err(StoreError::Parse {
                line,
                msg: format!("unknown directive @{other}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # sample
        Biking | subClassOf | Sport
        Sport | subClassOf | Activity
        Central Park | instanceOf | Park
        Central Park | inside | NYC
        Central Park | hasLabel | "child-friendly"
        @rel_isa inside nearBy
        @element Boathouse
        @relation doAt
    "#;

    #[test]
    fn parses_sample() {
        let o = parse_ontology(SAMPLE).unwrap();
        let v = o.vocabulary();
        let sport = v.element("Sport").unwrap();
        let biking = v.element("Biking").unwrap();
        assert!(v.elem_leq(sport, biking));
        assert!(v.element("Boathouse").is_some());
        assert!(v.relation("doAt").is_some());
        let cp = v.element("Central Park").unwrap();
        assert!(o.element_has_label(cp, "child-friendly"));
        let near_by = v.relation("nearBy").unwrap();
        let inside = v.relation("inside").unwrap();
        assert!(v.rel_leq(near_by, inside));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let o = parse_ontology("# nothing\n\n   \n").unwrap();
        assert!(o.store().is_empty());
    }

    #[test]
    fn trailing_comment_on_triple() {
        let o = parse_ontology("A | subClassOf | B # why not\n").unwrap();
        assert_eq!(o.store().len(), 1);
    }

    #[test]
    fn rejects_malformed_triple() {
        let err = parse_ontology("A | B\n").unwrap_err();
        assert!(matches!(err, StoreError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_empty_position() {
        assert!(parse_ontology("A |  | B\n").is_err());
    }

    #[test]
    fn rejects_literal_with_wrong_relation() {
        assert!(parse_ontology("A | inside | \"x\"\n").is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(parse_ontology("@frobnicate x\n").is_err());
    }

    #[test]
    fn rejects_bad_rel_isa_arity() {
        assert!(parse_ontology("@rel_isa inside\n").is_err());
        assert!(parse_ontology("@rel_isa a b c\n").is_err());
    }

    #[test]
    fn multiword_names_survive() {
        let o = parse_ontology("Feed a monkey | instanceOf | Activity\n").unwrap();
        assert!(o.vocabulary().element("Feed a monkey").is_some());
    }
}

/// Render an [`Ontology`] back to the text format, such that
/// `parse_ontology(render_ontology(&o))` reproduces it (triples, labels,
/// relation order, and vocabulary-only terms).
pub fn render_ontology(o: &Ontology) -> String {
    use oassis_vocab::TaxoId;
    let v = o.vocabulary();
    let mut out = String::new();

    // Relation-order directives (sorted for canonical output).
    let mut rel_lines: Vec<String> = Vec::new();
    for (r, name) in v.relations() {
        for &p in v.relations_order().parents(r) {
            rel_lines.push(format!("@rel_isa {} {}\n", name, v.relation_name(p)));
        }
    }
    rel_lines.sort();
    for line in rel_lines {
        out.push_str(&line);
    }

    // Triples (labels via quoted literals), sorted by their rendered names
    // so the output is canonical — independent of interning order, making
    // render∘parse a fixpoint.
    let mut lines: Vec<String> = o
        .store()
        .iter()
        .map(|t| {
            let subject = match t.subject {
                crate::term::Term::Element(e) => v.element_name(e).to_owned(),
                crate::term::Term::Literal(l) => format!("{:?}", o.literal_str(l)),
            };
            let object = match t.object {
                crate::term::Term::Element(e) => v.element_name(e).to_owned(),
                crate::term::Term::Literal(l) => format!("{:?}", o.literal_str(l)),
            };
            format!(
                "{} | {} | {}\n",
                subject,
                v.relation_name(t.relation),
                object
            )
        })
        .collect();
    lines.sort();
    for line in lines {
        out.push_str(&line);
    }

    // Vocabulary-only terms (mentioned in no triple).
    let mut used_elems = std::collections::HashSet::new();
    let mut used_rels = std::collections::HashSet::new();
    for t in o.store().iter() {
        if let Some(e) = t.subject.as_element() {
            used_elems.insert(e.index());
        }
        if let Some(e) = t.object.as_element() {
            used_elems.insert(e.index());
        }
        used_rels.insert(t.relation.index());
    }
    let mut decl_lines: Vec<String> = Vec::new();
    for (e, name) in v.elements() {
        if !used_elems.contains(&e.index()) {
            decl_lines.push(format!("@element {name}\n"));
        }
    }
    for (r, name) in v.relations() {
        if !used_rels.contains(&r.index())
            && v.relations_order().parents(r).is_empty()
            && v.relations_order().children(r).is_empty()
        {
            decl_lines.push(format!("@relation {name}\n"));
        }
    }
    decl_lines.sort();
    for line in decl_lines {
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::ontology::figure1_ontology;

    #[test]
    fn figure1_roundtrips_through_text() {
        let o = figure1_ontology();
        let text = render_ontology(&o);
        let back = parse_ontology(&text).unwrap();
        assert_eq!(o.store().len(), back.store().len());
        assert_eq!(
            o.vocabulary().num_elements(),
            back.vocabulary().num_elements()
        );
        assert_eq!(
            o.vocabulary().num_relations(),
            back.vocabulary().num_relations()
        );
        // Spot-check semantics: orders and labels survive.
        let (v, bv) = (o.vocabulary(), back.vocabulary());
        let sport = v.element("Sport").unwrap();
        let biking = v.element("Biking").unwrap();
        let bsport = bv.element("Sport").unwrap();
        let bbiking = bv.element("Biking").unwrap();
        assert_eq!(v.elem_leq(sport, biking), bv.elem_leq(bsport, bbiking));
        let bcp = bv.element("Central Park").unwrap();
        assert!(back.element_has_label(bcp, "child-friendly"));
        let bnb = bv.relation("nearBy").unwrap();
        let bin_ = bv.relation("inside").unwrap();
        assert!(bv.rel_leq(bnb, bin_));
        assert!(
            bv.element("Boathouse").is_some(),
            "vocabulary-only term kept"
        );
        assert!(
            bv.relation("doAt").is_some(),
            "vocabulary-only relation kept"
        );
    }

    #[test]
    fn render_is_stable_after_roundtrip() {
        let o = figure1_ontology();
        let t1 = render_ontology(&o);
        let o2 = parse_ontology(&t1).unwrap();
        let t2 = render_ontology(&o2);
        assert_eq!(t1, t2, "render∘parse is a fixpoint");
    }
}
