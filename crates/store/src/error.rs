//! Error type for ontology construction and parsing.

use std::fmt;

use oassis_vocab::VocabError;

/// Errors raised while building or parsing an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A vocabulary-level error (cycle, unknown name, ...).
    Vocab(VocabError),
    /// A malformed line in the [`text`](crate::text) ontology format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Vocab(e) => write!(f, "vocabulary error: {e}"),
            StoreError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Vocab(e) => Some(e),
            StoreError::Parse { .. } => None,
        }
    }
}

impl From<VocabError> for StoreError {
    fn from(e: VocabError) -> Self {
        StoreError::Vocab(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = StoreError::Parse {
            line: 3,
            msg: "bad triple".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_none());

        let v: StoreError = VocabError::TaxonomyCycle.into();
        assert!(v.source().is_some());
    }
}
