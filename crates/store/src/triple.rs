//! Triples over [`Term`]s, the storage form of ontology facts.

use std::fmt;

use oassis_vocab::{Fact, RelationId};

use crate::term::Term;

/// A stored triple `subject relation object`.
///
/// Unlike [`Fact`] (whose endpoints are always vocabulary elements), a
/// triple's object may be a string literal, which is how label facts such as
/// `Central Park hasLabel "child-friendly"` are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// The subject term.
    pub subject: Term,
    /// The relation.
    pub relation: RelationId,
    /// The object term.
    pub object: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(subject: impl Into<Term>, relation: RelationId, object: impl Into<Term>) -> Self {
        Triple {
            subject: subject.into(),
            relation,
            object: object.into(),
        }
    }

    /// Convert to a [`Fact`] if both endpoints are vocabulary elements.
    pub fn as_fact(&self) -> Option<Fact> {
        Some(Fact::new(
            self.subject.as_element()?,
            self.relation,
            self.object.as_element()?,
        ))
    }
}

impl From<Fact> for Triple {
    fn from(f: Fact) -> Self {
        Triple::new(f.subject, f.relation, f.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.relation, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LiteralId;
    use oassis_vocab::ElementId;

    #[test]
    fn fact_roundtrip() {
        let f = Fact::new(ElementId(1), RelationId(2), ElementId(3));
        let t: Triple = f.into();
        assert_eq!(t.as_fact(), Some(f));
    }

    #[test]
    fn literal_triples_are_not_facts() {
        let t = Triple::new(ElementId(1), RelationId(0), LiteralId(0));
        assert_eq!(t.as_fact(), None);
    }
}
