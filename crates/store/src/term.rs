//! Terms: vocabulary elements extended with string literals.

use std::fmt;

use oassis_vocab::ElementId;

/// Identifier of an interned string literal (e.g. `"child-friendly"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LiteralId(pub u32);

impl fmt::Display for LiteralId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lit{}", self.0)
    }
}

/// A node of the ontology graph: a vocabulary element or a string literal.
///
/// Literals only ever appear in object position (e.g. labels); the semantic
/// order treats two literals as comparable iff they are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A vocabulary element.
    Element(ElementId),
    /// An interned string literal.
    Literal(LiteralId),
}

impl Term {
    /// The element id, if this term is an element.
    pub fn as_element(&self) -> Option<ElementId> {
        match self {
            Term::Element(e) => Some(*e),
            Term::Literal(_) => None,
        }
    }

    /// The literal id, if this term is a literal.
    pub fn as_literal(&self) -> Option<LiteralId> {
        match self {
            Term::Element(_) => None,
            Term::Literal(l) => Some(*l),
        }
    }

    /// Whether this term is an element.
    pub fn is_element(&self) -> bool {
        matches!(self, Term::Element(_))
    }
}

impl From<ElementId> for Term {
    fn from(e: ElementId) -> Self {
        Term::Element(e)
    }
}

impl From<LiteralId> for Term {
    fn from(l: LiteralId) -> Self {
        Term::Literal(l)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Element(e) => write!(f, "{e}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t: Term = ElementId(3).into();
        assert_eq!(t.as_element(), Some(ElementId(3)));
        assert!(t.as_literal().is_none());
        assert!(t.is_element());

        let l: Term = LiteralId(1).into();
        assert_eq!(l.as_literal(), Some(LiteralId(1)));
        assert!(!l.is_element());
    }

    #[test]
    fn ordering_groups_elements_before_literals() {
        assert!(Term::Element(ElementId(999)) < Term::Literal(LiteralId(0)));
    }

    #[test]
    fn display() {
        assert_eq!(Term::Element(ElementId(2)).to_string(), "e2");
        assert_eq!(Term::Literal(LiteralId(2)).to_string(), "lit2");
    }
}
