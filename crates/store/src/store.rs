//! An immutable triple store with three index orderings.
//!
//! The store keeps each triple in three sorted permutations — `SPO`, `POS`,
//! `OSP` — so that any pattern with at least one bound position is answered
//! by a binary-searched contiguous range, the classic scheme used by RDF
//! engines (and by RDFLIB, which the paper's prototype used).

use oassis_vocab::RelationId;

use crate::term::Term;
use crate::triple::Triple;

/// An immutable, fully indexed set of [`Triple`]s.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    /// Sorted by (subject, relation, object). This is also the canonical set.
    spo: Vec<Triple>,
    /// Sorted by (relation, object, subject).
    pos: Vec<Triple>,
    /// Sorted by (object, subject, relation).
    osp: Vec<Triple>,
}

impl TripleStore {
    /// Build a store from any triple collection (duplicates are removed).
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        let mut spo: Vec<Triple> = triples.into_iter().collect();
        spo.sort_unstable();
        spo.dedup();
        let mut pos = spo.clone();
        pos.sort_unstable_by_key(|t| (t.relation, t.object, t.subject));
        let mut osp = spo.clone();
        osp.sort_unstable_by_key(|t| (t.object, t.subject, t.relation));
        TripleStore { spo, pos, osp }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in `SPO` order.
    pub fn iter(&self) -> std::slice::Iter<'_, Triple> {
        self.spo.iter()
    }

    /// Exact membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.binary_search(t).is_ok()
    }

    /// All triples matching a pattern; `None` positions are wildcards.
    ///
    /// Uses the most selective available index: `SPO` when the subject is
    /// bound, otherwise `POS` when the relation is bound, otherwise `OSP`
    /// when the object is bound, otherwise a full scan.
    pub fn matching<'a>(
        &'a self,
        s: Option<Term>,
        r: Option<RelationId>,
        o: Option<Term>,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        let slice: &[Triple] = match (s, r, o) {
            (Some(s), Some(r), _) => range(&self.spo, |t| (t.subject, t.relation).cmp(&(s, r))),
            (Some(s), None, _) => range(&self.spo, |t| t.subject.cmp(&s)),
            (None, Some(r), Some(o)) => range(&self.pos, |t| (t.relation, t.object).cmp(&(r, o))),
            (None, Some(r), None) => range(&self.pos, |t| t.relation.cmp(&r)),
            (None, None, Some(o)) => range(&self.osp, |t| t.object.cmp(&o)),
            (None, None, None) => &self.spo,
        };
        slice.iter().filter(move |t| {
            s.is_none_or(|s| t.subject == s)
                && r.is_none_or(|r| t.relation == r)
                && o.is_none_or(|o| t.object == o)
        })
    }

    /// Count triples matching a pattern (used for join-order selectivity).
    pub fn count_matching(&self, s: Option<Term>, r: Option<RelationId>, o: Option<Term>) -> usize {
        self.matching(s, r, o).count()
    }

    /// Objects of all `(s, r, ?)` triples.
    pub fn objects<'a>(&'a self, s: Term, r: RelationId) -> impl Iterator<Item = Term> + 'a {
        self.matching(Some(s), Some(r), None).map(|t| t.object)
    }

    /// Subjects of all `(?, r, o)` triples.
    pub fn subjects<'a>(&'a self, r: RelationId, o: Term) -> impl Iterator<Item = Term> + 'a {
        self.matching(None, Some(r), Some(o)).map(|t| t.subject)
    }
}

/// The contiguous run of `sorted` whose elements compare `Equal` under `key`.
fn range<K>(sorted: &[Triple], key: K) -> &[Triple]
where
    K: Fn(&Triple) -> std::cmp::Ordering,
{
    use std::cmp::Ordering;
    let lo = sorted.partition_point(|t| key(t) == Ordering::Less);
    let hi = sorted.partition_point(|t| key(t) != Ordering::Greater);
    &sorted[lo..hi]
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        TripleStore::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LiteralId;
    use oassis_vocab::ElementId;

    fn t(s: u32, r: u32, o: u32) -> Triple {
        Triple::new(ElementId(s), RelationId(r), ElementId(o))
    }

    fn store() -> TripleStore {
        TripleStore::from_triples([t(1, 0, 2), t(1, 0, 3), t(1, 1, 2), t(4, 0, 2), t(5, 2, 1)])
    }

    #[test]
    fn dedup_on_build() {
        let s = TripleStore::from_triples([t(1, 0, 2), t(1, 0, 2)]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_exact() {
        let s = store();
        assert!(s.contains(&t(1, 0, 2)));
        assert!(!s.contains(&t(2, 0, 1)));
    }

    #[test]
    fn match_by_subject() {
        let s = store();
        let got: Vec<_> = s
            .matching(Some(ElementId(1).into()), None, None)
            .copied()
            .collect();
        assert_eq!(got, [t(1, 0, 2), t(1, 0, 3), t(1, 1, 2)]);
    }

    #[test]
    fn match_by_subject_and_relation() {
        let s = store();
        let got: Vec<_> = s
            .matching(Some(ElementId(1).into()), Some(RelationId(0)), None)
            .copied()
            .collect();
        assert_eq!(got, [t(1, 0, 2), t(1, 0, 3)]);
    }

    #[test]
    fn match_by_relation() {
        let s = store();
        assert_eq!(s.count_matching(None, Some(RelationId(0)), None), 3);
    }

    #[test]
    fn match_by_relation_and_object() {
        let s = store();
        let got: Vec<_> = s
            .matching(None, Some(RelationId(0)), Some(ElementId(2).into()))
            .map(|t| t.subject)
            .collect();
        assert_eq!(
            got,
            [Term::Element(ElementId(1)), Term::Element(ElementId(4))]
        );
    }

    #[test]
    fn match_by_object_only() {
        let s = store();
        assert_eq!(s.count_matching(None, None, Some(ElementId(2).into())), 3);
    }

    #[test]
    fn match_fully_bound() {
        let s = store();
        assert_eq!(
            s.count_matching(
                Some(ElementId(1).into()),
                Some(RelationId(0)),
                Some(ElementId(3).into())
            ),
            1
        );
        assert_eq!(
            s.count_matching(
                Some(ElementId(1).into()),
                Some(RelationId(0)),
                Some(ElementId(9).into())
            ),
            0
        );
    }

    #[test]
    fn wildcard_scan_returns_all() {
        let s = store();
        assert_eq!(s.matching(None, None, None).count(), s.len());
    }

    #[test]
    fn literal_objects_are_indexed() {
        let s = TripleStore::from_triples([
            Triple::new(ElementId(1), RelationId(9), LiteralId(0)),
            Triple::new(ElementId(2), RelationId(9), LiteralId(1)),
        ]);
        let got: Vec<_> = s.subjects(RelationId(9), LiteralId(0).into()).collect();
        assert_eq!(got, [Term::Element(ElementId(1))]);
    }

    #[test]
    fn objects_helper() {
        let s = store();
        let got: Vec<_> = s.objects(ElementId(1).into(), RelationId(0)).collect();
        assert_eq!(
            got,
            [Term::Element(ElementId(2)), Term::Element(ElementId(3))]
        );
    }
}
