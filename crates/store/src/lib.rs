#![warn(missing_docs)]

//! # oassis-store
//!
//! An RDF-style triple store and the OASSIS [`Ontology`] built on top of it.
//!
//! The paper's prototype used Python's RDFLIB; this crate is the from-scratch
//! Rust substrate replacing it. It provides:
//!
//! * [`Term`]s — vocabulary elements plus string [`literals`](Term::Literal)
//!   (used for `hasLabel "child-friendly"`-style facts),
//! * an indexed, immutable [`TripleStore`] with `SPO`/`POS`/`OSP` orderings
//!   for efficient pattern matching,
//! * the [`Ontology`]: a vocabulary plus a store of "universal truth" facts,
//!   with the semantic implication check `A ≤ O` of Definition 2.5 that the
//!   WHERE-clause validity test relies on,
//! * a line-oriented [`text`] format for authoring ontologies in examples and
//!   tests.

pub mod error;
pub mod ontology;
pub mod store;
pub mod term;
pub mod text;
pub mod triple;

pub use error::StoreError;
pub use ontology::{Ontology, OntologyBuilder};
pub use store::TripleStore;
pub use term::{LiteralId, Term};
pub use triple::Triple;
