//! The ontology `O`: a vocabulary plus a store of universal facts.
//!
//! Per Section 2 of the paper, the ontology is itself a fact-set whose facts
//! hold "for all people at all times" (e.g. `Central Park inside NYC`).
//! The relations `subClassOf` and `instanceOf` coincide with the reverse of
//! the element order `≤E`; [`OntologyBuilder`] therefore feeds such triples
//! into the vocabulary taxonomy automatically, keeping the two views in sync.

use std::collections::HashMap;

use oassis_vocab::{
    ElementId, Fact, FactSet, RelationId, VocabError, Vocabulary, VocabularyBuilder,
};

use crate::store::TripleStore;
use crate::term::{LiteralId, Term};
use crate::triple::Triple;

/// The canonical name of the subclass relation.
pub const SUB_CLASS_OF: &str = "subClassOf";
/// The canonical name of the instance relation.
pub const INSTANCE_OF: &str = "instanceOf";
/// The canonical name of the labeling relation.
pub const HAS_LABEL: &str = "hasLabel";

/// Builder for an [`Ontology`].
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    vocab: VocabularyBuilder,
    triples: Vec<Triple>,
    literal_names: Vec<String>,
    literal_ids: HashMap<String, LiteralId>,
}

impl OntologyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the underlying vocabulary builder (for relation orders etc.).
    pub fn vocab_mut(&mut self) -> &mut VocabularyBuilder {
        &mut self.vocab
    }

    /// Intern a literal string.
    pub fn literal(&mut self, s: &str) -> LiteralId {
        if let Some(&id) = self.literal_ids.get(s) {
            return id;
        }
        let id = LiteralId(self.literal_names.len() as u32);
        self.literal_names.push(s.to_owned());
        self.literal_ids.insert(s.to_owned(), id);
        id
    }

    /// Add the fact `subject relation object` (all vocabulary elements).
    ///
    /// `subClassOf` and `instanceOf` triples additionally record the
    /// corresponding `≤E` edge (`object ≤E subject`).
    pub fn triple(&mut self, subject: &str, relation: &str, object: &str) -> &mut Self {
        let s = self.vocab.element(subject);
        let r = self.vocab.relation(relation);
        let o = self.vocab.element(object);
        if relation == SUB_CLASS_OF || relation == INSTANCE_OF {
            self.vocab.element_isa_ids(s, o);
        }
        self.triples.push(Triple::new(s, r, o));
        self
    }

    /// Add `element hasLabel "label"`.
    pub fn label(&mut self, element: &str, label: &str) -> &mut Self {
        let e = self.vocab.element(element);
        let r = self.vocab.relation(HAS_LABEL);
        let l = self.literal(label);
        self.triples.push(Triple::new(e, r, l));
        self
    }

    /// Shorthand for `triple(specific, "subClassOf", general)`.
    pub fn subclass(&mut self, specific: &str, general: &str) -> &mut Self {
        self.triple(specific, SUB_CLASS_OF, general)
    }

    /// Shorthand for `triple(instance, "instanceOf", class)`.
    pub fn instance(&mut self, instance: &str, class: &str) -> &mut Self {
        self.triple(instance, INSTANCE_OF, class)
    }

    /// Record `general ≤R specific` in the relation order, e.g.
    /// `relation_isa("inside", "nearBy")` for the paper's `nearBy ≤R inside`.
    pub fn relation_isa(&mut self, specific: &str, general: &str) -> &mut Self {
        self.vocab.relation_isa(specific, general);
        self
    }

    /// Declare an element without any facts about it (vocabulary-only terms,
    /// like `Boathouse` in Example 2.4, which crowd members may mention even
    /// though the ontology knows nothing about them).
    pub fn element(&mut self, name: &str) -> &mut Self {
        self.vocab.element(name);
        self
    }

    /// Declare a relation without any facts using it.
    pub fn relation(&mut self, name: &str) -> &mut Self {
        self.vocab.relation(name);
        self
    }

    /// Finalize into an [`Ontology`].
    pub fn build(self) -> Result<Ontology, VocabError> {
        let vocab = self.vocab.build()?;
        let sub_class_of = vocab.relation(SUB_CLASS_OF);
        let instance_of = vocab.relation(INSTANCE_OF);
        let has_label = vocab.relation(HAS_LABEL);
        Ok(Ontology {
            store: TripleStore::from_triples(self.triples),
            vocab,
            literal_names: self.literal_names,
            literal_ids: self.literal_ids,
            sub_class_of,
            instance_of,
            has_label,
        })
    }
}

/// An immutable ontology: vocabulary, universal facts, and label literals.
#[derive(Debug, Clone)]
pub struct Ontology {
    vocab: Vocabulary,
    store: TripleStore,
    literal_names: Vec<String>,
    literal_ids: HashMap<String, LiteralId>,
    sub_class_of: Option<RelationId>,
    instance_of: Option<RelationId>,
    has_label: Option<RelationId>,
}

impl Ontology {
    /// Start building an ontology.
    pub fn builder() -> OntologyBuilder {
        OntologyBuilder::new()
    }

    /// The vocabulary (terms + semantic orders).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The raw triple store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The `subClassOf` relation id, if any triple used it.
    pub fn sub_class_of(&self) -> Option<RelationId> {
        self.sub_class_of
    }

    /// The `instanceOf` relation id, if any triple used it.
    pub fn instance_of(&self) -> Option<RelationId> {
        self.instance_of
    }

    /// The `hasLabel` relation id, if any label was declared.
    pub fn has_label(&self) -> Option<RelationId> {
        self.has_label
    }

    /// Look up an interned literal.
    pub fn literal(&self, s: &str) -> Option<LiteralId> {
        self.literal_ids.get(s).copied()
    }

    /// The string of a literal id.
    pub fn literal_str(&self, id: LiteralId) -> &str {
        &self.literal_names[id.0 as usize]
    }

    /// Whether `element hasLabel "label"` is stored.
    pub fn element_has_label(&self, element: ElementId, label: &str) -> bool {
        match (self.has_label, self.literal(label)) {
            (Some(r), Some(l)) => self.store.contains(&Triple::new(element, r, l)),
            _ => false,
        }
    }

    /// All labels of `element`.
    pub fn labels_of<'a>(&'a self, element: ElementId) -> impl Iterator<Item = &'a str> + 'a {
        self.has_label.into_iter().flat_map(move |r| {
            self.store
                .objects(element.into(), r)
                .filter_map(|t| t.as_literal())
                .map(|l| self.literal_str(l))
        })
    }

    /// Semantic implication of a single fact by the ontology: `{f} ≤ O`
    /// (Definition 2.5) — some stored element-to-element triple specializes
    /// `f` in all three positions.
    pub fn implies_fact(&self, f: &Fact) -> bool {
        // Scan only relations r' with f.relation ≤R r'.
        self.vocab
            .relations_order()
            .descendants(f.relation)
            .any(|r| {
                self.store.matching(None, Some(r), None).any(|t| {
                    matches!(
                        (t.subject.as_element(), t.object.as_element()),
                        (Some(s), Some(o))
                            if self.vocab.elem_leq(f.subject, s) && self.vocab.elem_leq(f.object, o)
                    )
                })
            })
    }

    /// Semantic implication of a whole fact-set: `A ≤ O`.
    pub fn implies_factset(&self, a: &FactSet) -> bool {
        a.iter().all(|f| self.implies_fact(f))
    }

    /// Render a triple with names (literals are quoted).
    pub fn triple_to_string(&self, t: &Triple) -> String {
        let term = |term: &Term| match term {
            Term::Element(e) => self.vocab.element_name(*e).to_owned(),
            Term::Literal(l) => format!("{:?}", self.literal_str(*l)),
        };
        format!(
            "{} {} {}",
            term(&t.subject),
            self.vocab.relation_name(t.relation),
            term(&t.object)
        )
    }

    /// Resolve a [`Term`] from a display name: element name, or quoted literal.
    pub fn term(&self, name: &str) -> Option<Term> {
        if let Some(stripped) = name.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            self.literal(stripped).map(Term::Literal)
        } else {
            self.vocab.element(name).map(Term::Element)
        }
    }
}

/// Build the sample ontology of the paper's Figure 1.
///
/// Used across the workspace's tests, examples and benchmarks; kept here so
/// every crate exercises the same ground truth.
pub fn figure1_ontology() -> Ontology {
    let mut b = Ontology::builder();
    // Activity branch.
    b.subclass("Activity", "Thing")
        .subclass("Sport", "Activity")
        .subclass("Water Sport", "Sport")
        .subclass("Swimming", "Water Sport")
        .subclass("Water Polo", "Water Sport")
        .subclass("Ball Game", "Sport")
        .subclass("Basketball", "Ball Game")
        .subclass("Baseball", "Ball Game")
        .subclass("Biking", "Sport")
        .instance("Feed a monkey", "Activity");
    // Food branch.
    b.subclass("Food", "Thing")
        .subclass("Falafel", "Food")
        .subclass("Pasta", "Food");
    // Place branch.
    b.subclass("Place", "Thing")
        .subclass("City", "Place")
        .instance("NYC", "City")
        .subclass("Restaurant", "Place")
        .instance("Maoz Veg.", "Restaurant")
        .instance("Pine", "Restaurant")
        .subclass("Attraction", "Place")
        .subclass("Outdoor", "Attraction")
        .subclass("Indoor", "Attraction")
        .subclass("Swimming pool", "Indoor")
        .subclass("Zoo", "Outdoor")
        .subclass("Park", "Outdoor")
        .instance("Bronx Zoo", "Zoo")
        .instance("Central Park", "Park")
        .instance("Madison Square", "Park");
    // Spatial facts.
    b.triple("Central Park", "inside", "NYC")
        .triple("Bronx Zoo", "inside", "NYC")
        .triple("Madison Square", "inside", "NYC")
        .triple("Maoz Veg.", "nearBy", "Central Park")
        .triple("Maoz Veg.", "nearBy", "Madison Square")
        .triple("Pine", "nearBy", "Bronx Zoo");
    // nearBy ≤R inside (Figure 1's "nearBy ≤ inside").
    b.relation_isa("inside", "nearBy");
    // subClassOf ≤R instanceOf: the RDFS-style convention that lets a
    // semantic `subClassOf*` path also traverse instanceOf edges, which is
    // how Figure 3 can list `Feed a Monkey` (an *instance* of Activity) as
    // an assignment for `$y subClassOf* Activity`.
    b.relation_isa("instanceOf", "subClassOf");
    // Labels used by the running-example query.
    b.label("Central Park", "child-friendly")
        .label("Bronx Zoo", "child-friendly")
        .label("Madison Square", "child-friendly");
    // Vocabulary-only terms appearing in personal histories (Example 2.4).
    b.element("Boathouse").element("Rent Bikes");
    b.relation("doAt").relation("eatAt");
    b.build().expect("figure 1 ontology is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_relations_feed_the_taxonomy() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let sport = v.element("Sport").unwrap();
        let biking = v.element("Biking").unwrap();
        let cp = v.element("Central Park").unwrap();
        let attraction = v.element("Attraction").unwrap();
        assert!(v.elem_leq(sport, biking), "subClassOf edge recorded");
        assert!(v.elem_leq(attraction, cp), "instanceOf chain recorded");
    }

    #[test]
    fn labels_roundtrip() {
        let o = figure1_ontology();
        let cp = o.vocabulary().element("Central Park").unwrap();
        assert!(o.element_has_label(cp, "child-friendly"));
        assert!(!o.element_has_label(cp, "dog-friendly"));
        let labels: Vec<_> = o.labels_of(cp).collect();
        assert_eq!(labels, ["child-friendly"]);
        let pine = o.vocabulary().element("Pine").unwrap();
        assert_eq!(o.labels_of(pine).count(), 0);
    }

    #[test]
    fn implies_fact_uses_element_order() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let near_by = v.relation("nearBy").unwrap();
        let inside = v.relation("inside").unwrap();
        let cp = v.element("Central Park").unwrap();
        let nyc = v.element("NYC").unwrap();
        let place = v.element("Place").unwrap();

        // Stored directly.
        assert!(o.implies_fact(&Fact::new(cp, inside, nyc)));
        // Generalizing the subject: Place inside NYC is implied.
        assert!(o.implies_fact(&Fact::new(place, inside, nyc)));
        // Generalizing the relation: Central Park nearBy NYC is implied
        // because nearBy ≤R inside and Central Park inside NYC is stored.
        assert!(o.implies_fact(&Fact::new(cp, near_by, nyc)));
        // Not implied: NYC inside Central Park.
        assert!(!o.implies_fact(&Fact::new(nyc, inside, cp)));
    }

    #[test]
    fn implies_factset_needs_all_facts() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let inside = v.relation("inside").unwrap();
        let cp = v.element("Central Park").unwrap();
        let nyc = v.element("NYC").unwrap();
        let good = FactSet::from_facts([Fact::new(cp, inside, nyc)]);
        let bad = FactSet::from_facts([Fact::new(cp, inside, nyc), Fact::new(nyc, inside, cp)]);
        assert!(o.implies_factset(&good));
        assert!(!o.implies_factset(&bad));
        assert!(o.implies_factset(&FactSet::new()));
    }

    #[test]
    fn term_resolution() {
        let o = figure1_ontology();
        assert!(matches!(o.term("Central Park"), Some(Term::Element(_))));
        assert!(matches!(
            o.term("\"child-friendly\""),
            Some(Term::Literal(_))
        ));
        assert!(o.term("Nonexistent").is_none());
        assert!(o.term("\"no-such-label\"").is_none());
    }

    #[test]
    fn triple_rendering() {
        let o = figure1_ontology();
        let t = o
            .store()
            .iter()
            .find(|t| t.object.as_literal().is_some())
            .unwrap();
        let s = o.triple_to_string(t);
        assert!(s.contains("hasLabel") && s.contains('"'), "{s}");
    }

    #[test]
    fn vocabulary_only_terms_have_no_triples() {
        let o = figure1_ontology();
        let boathouse = o.vocabulary().element("Boathouse").unwrap();
        assert_eq!(
            o.store()
                .matching(Some(boathouse.into()), None, None)
                .count(),
            0
        );
    }
}

impl Ontology {
    /// Reconstruct a builder holding this ontology's full contents, for the
    /// Section 8 extension of *dynamically extending the ontology* (e.g.
    /// with facts volunteered by the crowd). Interning order is preserved,
    /// so every existing [`ElementId`]/[`RelationId`] — and therefore any
    /// cached crowd answer — remains valid in the rebuilt ontology.
    ///
    /// ```
    /// use oassis_store::ontology::figure1_ontology;
    ///
    /// let o = figure1_ontology();
    /// let mut b = o.to_builder();
    /// b.instance("Boathouse", "Attraction");
    /// b.triple("Boathouse", "inside", "NYC");
    /// let extended = b.build().unwrap();
    /// // Old ids survive:
    /// assert_eq!(
    ///     o.vocabulary().element("Central Park"),
    ///     extended.vocabulary().element("Central Park"),
    /// );
    /// // And the new knowledge is queryable.
    /// let boathouse = extended.vocabulary().element("Boathouse").unwrap();
    /// let attraction = extended.vocabulary().element("Attraction").unwrap();
    /// assert!(extended.vocabulary().elem_leq(attraction, boathouse));
    /// ```
    pub fn to_builder(&self) -> OntologyBuilder {
        let mut b = OntologyBuilder::new();
        // Intern all names in id order so ids stay stable.
        for (_, name) in self.vocab.elements() {
            b.element(name);
        }
        for (_, name) in self.vocab.relations() {
            b.relation(name);
        }
        for name in &self.literal_names {
            b.literal(name);
        }
        // Relation-order edges (element-order edges are re-derived from the
        // subClassOf/instanceOf triples below; explicit extra element edges
        // do not occur through the public builder API).
        for (r, name) in self.vocab.relations() {
            for &p in self.vocab.relations_order().parents(r) {
                let parent_name = self.vocab.relation_name(p).to_owned();
                b.relation_isa(name, &parent_name);
            }
        }
        // Triples (labels via the literal path).
        for t in self.store.iter() {
            match (t.subject, t.object) {
                (Term::Element(s), Term::Element(o)) => {
                    b.triple(
                        self.vocab.element_name(s),
                        self.vocab.relation_name(t.relation),
                        self.vocab.element_name(o),
                    );
                }
                (Term::Element(s), Term::Literal(l)) => {
                    b.label(self.vocab.element_name(s), self.literal_str(l));
                }
                _ => {}
            }
        }
        b
    }
}

#[cfg(test)]
mod evolution_tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let o = figure1_ontology();
        let rebuilt = o.to_builder().build().unwrap();
        assert_eq!(
            o.vocabulary().num_elements(),
            rebuilt.vocabulary().num_elements()
        );
        assert_eq!(
            o.vocabulary().num_relations(),
            rebuilt.vocabulary().num_relations()
        );
        assert_eq!(o.store().len(), rebuilt.store().len());
        // Ids stable.
        for (id, name) in o.vocabulary().elements() {
            assert_eq!(rebuilt.vocabulary().element(name), Some(id));
        }
        for (id, name) in o.vocabulary().relations() {
            assert_eq!(rebuilt.vocabulary().relation(name), Some(id));
        }
        // Orders stable.
        let v = o.vocabulary();
        let rv = rebuilt.vocabulary();
        let sport = v.element("Sport").unwrap();
        let biking = v.element("Biking").unwrap();
        assert_eq!(v.elem_leq(sport, biking), rv.elem_leq(sport, biking));
        let near_by = v.relation("nearBy").unwrap();
        let inside = v.relation("inside").unwrap();
        assert_eq!(v.rel_leq(near_by, inside), rv.rel_leq(near_by, inside));
        // Labels stable.
        let cp = v.element("Central Park").unwrap();
        assert!(rebuilt.element_has_label(cp, "child-friendly"));
    }

    #[test]
    fn extension_adds_knowledge_without_disturbing_ids() {
        let o = figure1_ontology();
        let mut b = o.to_builder();
        b.subclass("Kayaking", "Water Sport");
        b.label("Madison Square", "dog-friendly");
        let extended = b.build().unwrap();
        // New terms exist and are ordered correctly.
        let kayaking = extended.vocabulary().element("Kayaking").unwrap();
        let sport = extended.vocabulary().element("Sport").unwrap();
        assert!(extended.vocabulary().elem_leq(sport, kayaking));
        // Old ids unchanged (cached crowd answers stay valid).
        for (id, name) in o.vocabulary().elements() {
            assert_eq!(extended.vocabulary().element(name), Some(id));
        }
        let ms = extended.vocabulary().element("Madison Square").unwrap();
        assert!(extended.element_has_label(ms, "dog-friendly"));
        assert!(
            extended.element_has_label(ms, "child-friendly"),
            "old label kept"
        );
    }
}
