//! Backtracking join evaluation of graph patterns over an [`Ontology`].
//!
//! The evaluator supports two matching modes:
//!
//! * [`MatchMode::Syntactic`] — standard SPARQL: a pattern relation matches
//!   only triples with exactly that relation.
//! * [`MatchMode::Semantic`] — the mode OASSIS validity (Definition 2.5)
//!   calls for: a pattern relation `r` also matches stored triples whose
//!   relation `r'` satisfies `r ≤R r'`. With the Figure 1 vocabulary this
//!   makes `$z nearBy $x` match the stored `Maoz Veg. inside ...` style
//!   facts (`nearBy ≤R inside`), and lets `subClassOf*` paths traverse
//!   `instanceOf` edges when the ontology declares
//!   `subClassOf ≤R instanceOf` (the RDFS-style convention the paper's
//!   Figure 3 uses when it lists `Feed a Monkey` as an assignment for
//!   `$y subClassOf* Activity`).
//!
//! Patterns are joined most-selective-first; `rel*`/`rel+` paths are
//! evaluated by memoized BFS over the stored edges of the matching
//! relation(s).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_store::{Ontology, Term};
use oassis_vocab::RelationId;

use crate::ast::{PatTerm, PropPath, TriplePattern, Var, VarTable};

/// How pattern relations match stored relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Exact relation matching (standard SPARQL).
    Syntactic,
    /// A pattern relation also matches its `≤R`-specializations.
    #[default]
    Semantic,
}

/// A (partial) assignment of query variables to terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Binding {
    values: Vec<Option<Term>>,
}

impl Binding {
    /// An empty binding over `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        Binding {
            values: vec![None; nvars],
        }
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<Term> {
        self.values[v.index()]
    }

    /// Bind `v` to `t` (overwrites).
    pub fn set(&mut self, v: Var, t: Term) {
        self.values[v.index()] = Some(t);
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no variable slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(var, term)` pairs for bound variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (Var(i as u32), t)))
    }
}

/// Evaluate `patterns` over `ontology`, returning all distinct bindings.
///
/// ```
/// use oassis_sparql::{evaluate, parse_patterns, MatchMode, VarTable};
/// use oassis_store::ontology::figure1_ontology;
///
/// let o = figure1_ontology();
/// let mut vars = VarTable::new();
/// let pats = parse_patterns("$x instanceOf Park", &o, &mut vars).unwrap();
/// let bindings = evaluate(&o, &pats, &vars, MatchMode::Syntactic);
/// assert_eq!(bindings.len(), 2); // Central Park, Madison Square
/// ```
pub fn evaluate(
    ontology: &Ontology,
    patterns: &[TriplePattern],
    vars: &VarTable,
    mode: MatchMode,
) -> Vec<Binding> {
    evaluate_with_sink(ontology, patterns, vars, mode, &null_sink())
}

/// [`evaluate`] with instrumentation: every triple-pattern index scan is
/// counted on `sparql.pattern.scan` labeled by its binding shape (`?`
/// marks an unbound endpoint, e.g. `sp?` for bound-subject scans), and
/// each property-path closure computation records the BFS depth it
/// reached on the `sparql.path.depth` histogram. Memoized closures are
/// observed once, when first computed.
pub fn evaluate_with_sink(
    ontology: &Ontology,
    patterns: &[TriplePattern],
    vars: &VarTable,
    mode: MatchMode,
    sink: &Arc<dyn EventSink>,
) -> Vec<Binding> {
    // Relation match-lists are query-invariant: compute each pattern
    // relation's list once instead of re-collecting `descendants` on every
    // candidate scan and closure step.
    let mut rel_matches: HashMap<RelationId, Vec<RelationId>> = HashMap::new();
    for p in patterns {
        let r = p.path.relation();
        rel_matches.entry(r).or_insert_with(|| match mode {
            MatchMode::Syntactic => vec![r],
            MatchMode::Semantic => ontology
                .vocabulary()
                .relations_order()
                .descendants(r)
                .collect(),
        });
    }
    let mut ev = Evaluator {
        ontology,
        sink,
        rel_matches,
        fwd_closure: HashMap::new(),
        bwd_closure: HashMap::new(),
    };
    let order = plan(ontology, patterns);
    let mut results = Vec::new();
    let mut binding = Binding::new(vars.len());
    ev.join(&order, 0, &mut binding, &mut results);
    results.sort_by(|a, b| a.values.cmp(&b.values));
    results.dedup();
    results
}

/// Greedy join order: repeatedly pick the pattern with the most positions
/// bound (constants or already-chosen variables), preferring non-path
/// patterns, breaking ties by store selectivity.
fn plan(ontology: &Ontology, patterns: &[TriplePattern]) -> Vec<TriplePattern> {
    // Selectivity estimates are loop-invariant: count each relation's
    // stored triples once up front rather than re-scanning the store for
    // every remaining pattern on every greedy pick (O(n²) store scans).
    let mut est_by_rel: HashMap<RelationId, usize> = HashMap::new();
    for p in patterns {
        let r = p.path.relation();
        est_by_rel
            .entry(r)
            .or_insert_with(|| ontology.store().count_matching(None, Some(r), None));
    }
    let mut remaining: Vec<TriplePattern> = patterns.to_vec();
    let mut bound: HashSet<Var> = HashSet::new();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let score = |p: &TriplePattern| -> (usize, usize, usize) {
            let pos_bound = |t: &PatTerm| match t {
                PatTerm::Const(_) => true,
                PatTerm::Var(v) => bound.contains(v),
            };
            let n_bound = pos_bound(&p.subject) as usize + pos_bound(&p.object) as usize;
            let path_penalty = p.path.is_path() as usize;
            let est = est_by_rel[&p.path.relation()];
            (2 - n_bound, path_penalty, est)
        };
        let (i, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| score(p))
            .expect("remaining is non-empty");
        let p = remaining.swap_remove(i);
        bound.extend(p.vars());
        order.push(p);
    }
    order
}

struct Evaluator<'a> {
    ontology: &'a Ontology,
    sink: &'a Arc<dyn EventSink>,
    /// Per pattern-relation match-list under the evaluation's mode,
    /// computed once in [`evaluate_with_sink`].
    rel_matches: HashMap<RelationId, Vec<RelationId>>,
    /// Memoized forward path closure per (relation, source).
    fwd_closure: HashMap<(RelationId, Term), Vec<Term>>,
    /// Memoized backward path closure per (relation, target).
    bwd_closure: HashMap<(RelationId, Term), Vec<Term>>,
}

impl<'a> Evaluator<'a> {
    fn join(
        &mut self,
        patterns: &[TriplePattern],
        idx: usize,
        binding: &mut Binding,
        out: &mut Vec<Binding>,
    ) {
        if idx == patterns.len() {
            out.push(binding.clone());
            return;
        }
        let p = &patterns[idx];
        let s_bound = resolve(&p.subject, binding);
        let o_bound = resolve(&p.object, binding);
        for (s, o) in self.candidates(p, s_bound, o_bound) {
            let mut saved = Vec::with_capacity(2);
            let mut ok = true;
            for (term, pos) in [(s, &p.subject), (o, &p.object)] {
                if let PatTerm::Var(v) = pos {
                    match binding.get(*v) {
                        Some(existing) if existing != term => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding.set(*v, term);
                            saved.push(*v);
                        }
                    }
                }
            }
            if ok {
                self.join(patterns, idx + 1, binding, out);
            }
            for v in saved {
                binding.values[v.index()] = None;
            }
        }
    }

    /// Relations a pattern relation matches under the evaluation's mode.
    /// Every relation reaching here came from a pattern, so the map always
    /// has an entry; the empty fallback keeps a miss safe regardless.
    fn match_relations(&self, r: RelationId) -> &[RelationId] {
        self.rel_matches.get(&r).map_or(&[], Vec::as_slice)
    }

    /// Enumerate `(subject, object)` term pairs matching `p` given the
    /// already-bound endpoint constraints.
    fn candidates(
        &mut self,
        p: &TriplePattern,
        s: Option<Term>,
        o: Option<Term>,
    ) -> Vec<(Term, Term)> {
        let shape = match (s.is_some(), o.is_some()) {
            (true, true) => "spo",
            (true, false) => "sp?",
            (false, true) => "?po",
            (false, false) => "?p?",
        };
        self.sink.count_labeled(names::SPARQL_PATTERN_SCAN, shape, 1);
        match p.path {
            PropPath::Rel(r) => {
                let mut pairs = Vec::new();
                for &r in self.match_relations(r) {
                    pairs.extend(
                        self.ontology
                            .store()
                            .matching(s, Some(r), o)
                            .map(|t| (t.subject, t.object)),
                    );
                }
                pairs
            }
            PropPath::Star(r) => self.path_pairs(r, s, o, true),
            PropPath::Plus(r) => self.path_pairs(r, s, o, false),
        }
    }

    /// Pairs `(a, b)` with `a —r→* b` (or `+` when `reflexive` is false).
    fn path_pairs(
        &mut self,
        r: RelationId,
        s: Option<Term>,
        o: Option<Term>,
        reflexive: bool,
    ) -> Vec<(Term, Term)> {
        match (s, o) {
            (Some(s), Some(o)) => {
                let reach = self.forward(r, s);
                let hit = if s == o {
                    reflexive || reach.contains(&o)
                } else {
                    reach.contains(&o)
                };
                if hit {
                    vec![(s, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), None) => {
                let mut v: Vec<(Term, Term)> = self.forward(r, s).iter().map(|&t| (s, t)).collect();
                if reflexive {
                    v.push((s, s));
                }
                v
            }
            (None, Some(o)) => {
                let mut v: Vec<(Term, Term)> =
                    self.backward(r, o).iter().map(|&t| (t, o)).collect();
                if reflexive {
                    v.push((o, o));
                }
                v
            }
            (None, None) => {
                // Unconstrained path: enumerate from every node incident to a
                // matching edge; reflexive pairs over all vocabulary elements.
                let mut nodes: HashSet<Term> = HashSet::new();
                for &rel in self.match_relations(r) {
                    for t in self.ontology.store().matching(None, Some(rel), None) {
                        nodes.insert(t.subject);
                        nodes.insert(t.object);
                    }
                }
                let mut pairs = Vec::new();
                if reflexive {
                    for (e, _) in self.ontology.vocabulary().elements() {
                        pairs.push((Term::Element(e), Term::Element(e)));
                    }
                }
                let nodes: Vec<Term> = nodes.into_iter().collect();
                for n in nodes {
                    for t in self.forward(r, n) {
                        pairs.push((n, t));
                    }
                }
                pairs
            }
        }
    }

    /// Nodes strictly reachable from `from` via matching edges (excludes
    /// `from` unless it lies on a cycle).
    fn forward(&mut self, r: RelationId, from: Term) -> Vec<Term> {
        if let Some(v) = self.fwd_closure.get(&(r, from)) {
            return v.clone();
        }
        let rels = self.match_relations(r);
        let (set, depth) = bfs(from, |n| {
            let mut next = Vec::new();
            for &rel in rels {
                next.extend(self.ontology.store().objects(n, rel));
            }
            next
        });
        self.sink.observe(names::SPARQL_PATH_DEPTH, depth as f64);
        self.fwd_closure.insert((r, from), set.clone());
        set
    }

    /// Nodes that strictly reach `to` via matching edges.
    fn backward(&mut self, r: RelationId, to: Term) -> Vec<Term> {
        if let Some(v) = self.bwd_closure.get(&(r, to)) {
            return v.clone();
        }
        let rels = self.match_relations(r);
        let (set, depth) = bfs(to, |n| {
            let mut next = Vec::new();
            for &rel in rels {
                next.extend(self.ontology.store().subjects(rel, n));
            }
            next
        });
        self.sink.observe(names::SPARQL_PATH_DEPTH, depth as f64);
        self.bwd_closure.insert((r, to), set.clone());
        set
    }
}

/// Distinct nodes reachable in ≥1 step from `start` under `next`, plus the
/// largest shortest-path distance at which a node was discovered (the
/// path-expansion depth; 0 when nothing is reachable).
fn bfs<F>(start: Term, mut next: F) -> (Vec<Term>, usize)
where
    F: FnMut(Term) -> Vec<Term>,
{
    let mut seen: HashSet<Term> = HashSet::new();
    let mut queue: VecDeque<(Term, usize)> = VecDeque::from([(start, 0)]);
    let mut out = Vec::new();
    let mut depth = 0;
    while let Some((n, d)) = queue.pop_front() {
        for m in next(n) {
            if seen.insert(m) {
                out.push(m);
                queue.push_back((m, d + 1));
                depth = depth.max(d + 1);
            }
        }
    }
    (out, depth)
}

fn resolve(t: &PatTerm, binding: &Binding) -> Option<Term> {
    match t {
        PatTerm::Const(c) => Some(*c),
        PatTerm::Var(v) => binding.get(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_patterns;
    use oassis_store::ontology::figure1_ontology;

    fn eval(src: &str, mode: MatchMode) -> (Vec<Binding>, VarTable, oassis_store::Ontology) {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns(src, &o, &mut vars).unwrap();
        let res = evaluate(&o, &pats, &vars, mode);
        (res, vars, o)
    }

    fn names(
        results: &[Binding],
        vars: &VarTable,
        o: &oassis_store::Ontology,
        var: &str,
    ) -> Vec<String> {
        let v = vars.get(var).unwrap();
        let mut out: Vec<String> = results
            .iter()
            .filter_map(|b| b.get(v))
            .filter_map(|t| t.as_element())
            .map(|e| o.vocabulary().element_name(e).to_owned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn star_path_is_reflexive_transitive() {
        let (res, vars, o) = eval("$w subClassOf* Attraction", MatchMode::Syntactic);
        let ws = names(&res, &vars, &o, "w");
        assert!(ws.contains(&"Attraction".to_owned()), "reflexive: {ws:?}");
        assert!(ws.contains(&"Park".to_owned()), "transitive: {ws:?}");
        assert!(ws.contains(&"Zoo".to_owned()));
        // Instances are reached only via instanceOf, not subClassOf.
        assert!(!ws.contains(&"Central Park".to_owned()));
    }

    #[test]
    fn plus_path_excludes_reflexive() {
        let (res, vars, o) = eval("$w subClassOf+ Attraction", MatchMode::Syntactic);
        let ws = names(&res, &vars, &o, "w");
        assert!(!ws.contains(&"Attraction".to_owned()));
        assert!(ws.contains(&"Park".to_owned()));
    }

    #[test]
    fn join_instances_of_star_classes() {
        let (res, vars, o) = eval(
            "$w subClassOf* Attraction. $x instanceOf $w",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn label_filter() {
        let (res, vars, o) = eval(
            r#"$x instanceOf Park. $x hasLabel "child-friendly""#,
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Central Park", "Madison Square"]);
    }

    #[test]
    fn semantic_mode_matches_relation_specializations() {
        // nearBy ≤R inside, so `$a nearBy NYC` semantically matches the
        // stored `Central Park inside NYC`.
        let (res, vars, o) = eval("$a nearBy NYC", MatchMode::Semantic);
        let xs = names(&res, &vars, &o, "a");
        assert!(xs.contains(&"Central Park".to_owned()), "{xs:?}");
        let (res_syn, vars2, o2) = eval("$a nearBy NYC", MatchMode::Syntactic);
        assert!(
            !names(&res_syn, &vars2, &o2, "a").contains(&"Central Park".to_owned()),
            "syntactic mode must not"
        );
    }

    #[test]
    fn running_example_where_clause_has_expected_assignments() {
        let src = r#"
            $w subClassOf* Attraction.
            $x instanceOf $w.
            $x inside NYC.
            $x hasLabel "child-friendly".
            $y subClassOf* Activity.
            $z instanceOf Restaurant.
            $z nearBy $x
        "#;
        let (res, vars, o) = eval(src, MatchMode::Syntactic);
        assert!(!res.is_empty());
        let xs = names(&res, &vars, &o, "x");
        // Bronx Zoo (Pine nearBy), Central Park and Madison Square (Maoz).
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
        let ys = names(&res, &vars, &o, "y");
        assert!(ys.contains(&"Biking".to_owned()));
        assert!(ys.contains(&"Sport".to_owned()), "classes are included");
        let zs = names(&res, &vars, &o, "z");
        assert_eq!(zs, ["Maoz Veg.", "Pine"]);
        // The φ16 combination exists: x=Central Park, y=Biking, z=Maoz Veg.
        let (x, y, z) = (
            vars.get("x").unwrap(),
            vars.get("y").unwrap(),
            vars.get("z").unwrap(),
        );
        let v = o.vocabulary();
        let phi16 = res.iter().any(|b| {
            b.get(x) == Some(v.element("Central Park").unwrap().into())
                && b.get(y) == Some(v.element("Biking").unwrap().into())
                && b.get(z) == Some(v.element("Maoz Veg.").unwrap().into())
        });
        assert!(phi16, "φ16 must be a valid assignment");
    }

    #[test]
    fn fully_bound_pattern_checks_membership() {
        let (res, _, _) = eval("<Central Park> inside NYC", MatchMode::Syntactic);
        assert_eq!(res.len(), 1, "one empty binding = true");
        let (res, _, _) = eval("NYC inside <Central Park>", MatchMode::Syntactic);
        assert!(res.is_empty(), "no binding = false");
    }

    #[test]
    fn both_free_star_includes_reflexive_pairs() {
        let (res, vars, o) = eval("$a subClassOf* $b", MatchMode::Syntactic);
        let v = o.vocabulary();
        let biking: Term = v.element("Biking").unwrap().into();
        let sport: Term = v.element("Sport").unwrap().into();
        let a = vars.get("a").unwrap();
        let b = vars.get("b").unwrap();
        assert!(res
            .iter()
            .any(|r| r.get(a) == Some(biking) && r.get(b) == Some(biking)));
        assert!(res
            .iter()
            .any(|r| r.get(a) == Some(biking) && r.get(b) == Some(sport)));
        assert!(!res
            .iter()
            .any(|r| r.get(a) == Some(sport) && r.get(b) == Some(biking)));
    }

    #[test]
    fn shared_variable_join_is_consistent() {
        // $x must be the same element in both patterns.
        let (res, vars, o) = eval(
            "$x inside NYC. $x hasLabel \"child-friendly\"",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn no_matches_yields_empty() {
        let (res, _, _) = eval("NYC nearBy NYC", MatchMode::Syntactic);
        assert!(res.is_empty());
    }

    #[test]
    fn results_are_distinct() {
        let (res, _, _) = eval("$x inside NYC. $x inside NYC", MatchMode::Syntactic);
        let mut seen = std::collections::HashSet::new();
        for b in &res {
            assert!(seen.insert(b.clone()), "duplicate binding {b:?}");
        }
    }
}
