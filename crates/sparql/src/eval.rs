//! Plan-driven evaluation of WHERE clauses over an [`Ontology`].
//!
//! Evaluation is a two-step compiler: [`crate::plan::compile`] lowers a
//! [`WhereClause`] to a logical [`Plan`], [`crate::plan::optimize`] rewrites
//! it (filter pushdown, taxonomy unfolding, empty-branch pruning, greedy
//! deterministic join ordering), and the interpreter here executes the
//! optimized tree. The evaluator supports two matching modes:
//!
//! * [`MatchMode::Syntactic`] — standard SPARQL: a pattern relation matches
//!   only triples with exactly that relation.
//! * [`MatchMode::Semantic`] — the mode OASSIS validity (Definition 2.5)
//!   calls for: a pattern relation `r` also matches stored triples whose
//!   relation `r'` satisfies `r ≤R r'`. With the Figure 1 vocabulary this
//!   makes `$z nearBy $x` match the stored `Maoz Veg. inside ...` style
//!   facts (`nearBy ≤R inside`), and lets `subClassOf*` paths traverse
//!   `instanceOf` edges when the ontology declares
//!   `subClassOf ≤R instanceOf` (the RDFS-style convention the paper's
//!   Figure 3 uses when it lists `Feed a Monkey` as an assignment for
//!   `$y subClassOf* Activity`).
//!
//! `rel*`/`rel+` paths are evaluated by memoized BFS over the stored edges
//! of the matching relation(s) — or, when the optimizer proved the stored
//! edges mirror the element taxonomy, by direct `≤E` reachability.

use std::collections::{HashMap, HashSet, VecDeque};
use std::cmp::Ordering;
use std::sync::Arc;

use oassis_obs::{names, null_sink, EventSink, SinkExt};
use oassis_store::{Ontology, Term};
use oassis_vocab::RelationId;

use crate::ast::{PatTerm, PropPath, SortDir, TriplePattern, Var, VarTable, WhereClause};
use crate::plan::{self, Plan, PlanOp};

/// How pattern relations match stored relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Exact relation matching (standard SPARQL).
    Syntactic,
    /// A pattern relation also matches its `≤R`-specializations.
    #[default]
    Semantic,
}

/// A (partial) assignment of query variables to terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    values: Vec<Option<Term>>,
}

impl Binding {
    /// An empty binding over `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        Binding {
            values: vec![None; nvars],
        }
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<Term> {
        self.values[v.index()]
    }

    /// Bind `v` to `t` (overwrites).
    pub fn set(&mut self, v: Var, t: Term) {
        self.values[v.index()] = Some(t);
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no variable slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(var, term)` pairs for bound variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (Var(i as u32), t)))
    }
}

/// Evaluate plain triple `patterns` over `ontology`, returning all
/// distinct bindings (the pre-algebra conjunctive entry point; the
/// patterns run through the same planner as [`evaluate_where`]).
///
/// ```
/// use oassis_sparql::{evaluate, parse_patterns, MatchMode, VarTable};
/// use oassis_store::ontology::figure1_ontology;
///
/// let o = figure1_ontology();
/// let mut vars = VarTable::new();
/// let pats = parse_patterns("$x instanceOf Park", &o, &mut vars).unwrap();
/// let bindings = evaluate(&o, &pats, &vars, MatchMode::Syntactic);
/// assert_eq!(bindings.len(), 2); // Central Park, Madison Square
/// ```
pub fn evaluate(
    ontology: &Ontology,
    patterns: &[TriplePattern],
    vars: &VarTable,
    mode: MatchMode,
) -> Vec<Binding> {
    evaluate_with_sink(ontology, patterns, vars, mode, &null_sink())
}

/// [`evaluate`] with instrumentation (see [`evaluate_where_with_sink`]).
pub fn evaluate_with_sink(
    ontology: &Ontology,
    patterns: &[TriplePattern],
    vars: &VarTable,
    mode: MatchMode,
    sink: &Arc<dyn EventSink>,
) -> Vec<Binding> {
    let clause = WhereClause::from_triples(patterns.to_vec());
    evaluate_where_with_sink(ontology, &clause, vars, mode, sink)
}

/// Evaluate a full WHERE clause (groups, `UNION`, `OPTIONAL`, `FILTER`,
/// property paths, solution modifiers) over `ontology`.
///
/// Results are set-semantic: sorted by binding value and deduplicated.
/// With `ORDER BY`, the sort keys take precedence (ties stay in canonical
/// order, so output is still deterministic); `LIMIT`/`OFFSET` slice the
/// ordered list.
pub fn evaluate_where(
    ontology: &Ontology,
    clause: &WhereClause,
    vars: &VarTable,
    mode: MatchMode,
) -> Vec<Binding> {
    evaluate_where_with_sink(ontology, clause, vars, mode, &null_sink())
}

/// [`evaluate_where`] with instrumentation: every triple-pattern scan is
/// counted on `sparql.pattern.scan` labeled by its binding shape (`?`
/// marks an unbound endpoint, e.g. `sp?` for bound-subject scans), each
/// property-path closure computation records its BFS depth on the
/// `sparql.path.depth` histogram (memoized closures are observed once),
/// and the optimizer reports `sparql.plan.pushdown` / `sparql.plan.unfold`
/// / `sparql.plan.pruned` rewrite counts.
pub fn evaluate_where_with_sink(
    ontology: &Ontology,
    clause: &WhereClause,
    vars: &VarTable,
    mode: MatchMode,
    sink: &Arc<dyn EventSink>,
) -> Vec<Binding> {
    let compiled = plan::compile(ontology, clause, mode);
    let (optimized, report) = plan::optimize_report(ontology, compiled, mode);
    if report.pushdowns > 0 {
        sink.count(names::SPARQL_PLAN_PUSHDOWN, report.pushdowns as u64);
    }
    if report.unfolds > 0 {
        sink.count(names::SPARQL_PLAN_UNFOLD, report.unfolds as u64);
    }
    if report.pruned > 0 {
        sink.count(names::SPARQL_PLAN_PRUNED, report.pruned as u64);
    }
    run_plan_with_sink(ontology, &optimized, vars, mode, sink)
}

/// Interpret an explicit [`Plan`] (optimized or not) over `ontology`.
///
/// This is the differential-testing entry point: the same clause can be
/// run through [`plan::compile`] alone (source order, no pushdown, no
/// unfolding — but still index-backed scans) and through the optimizer,
/// and the results compared binding-for-binding.
pub fn run_plan(
    ontology: &Ontology,
    plan: &Plan,
    vars: &VarTable,
    mode: MatchMode,
) -> Vec<Binding> {
    run_plan_with_sink(ontology, plan, vars, mode, &null_sink())
}

/// [`run_plan`] with instrumentation.
pub fn run_plan_with_sink(
    ontology: &Ontology,
    plan: &Plan,
    vars: &VarTable,
    mode: MatchMode,
    sink: &Arc<dyn EventSink>,
) -> Vec<Binding> {
    let mut interp = Interp {
        ontology,
        sink,
        mode,
        rel_matches: HashMap::new(),
        fwd_closure: HashMap::new(),
        bwd_closure: HashMap::new(),
    };
    let ctx = Binding::new(vars.len());
    interp.eval_plan(plan, &ctx)
}

struct Interp<'a> {
    ontology: &'a Ontology,
    sink: &'a Arc<dyn EventSink>,
    mode: MatchMode,
    /// Per pattern-relation match-list under the evaluation's mode,
    /// computed lazily once per relation.
    rel_matches: HashMap<RelationId, Vec<RelationId>>,
    /// Memoized forward path closure per (relation, source).
    fwd_closure: HashMap<(RelationId, Term), Vec<Term>>,
    /// Memoized backward path closure per (relation, target).
    bwd_closure: HashMap<(RelationId, Term), Vec<Term>>,
}

impl<'a> Interp<'a> {
    /// Relations a pattern relation matches under the evaluation's mode.
    fn rels(&mut self, r: RelationId) -> Vec<RelationId> {
        let ontology = self.ontology;
        let mode = self.mode;
        self.rel_matches
            .entry(r)
            .or_insert_with(|| match mode {
                MatchMode::Syntactic => vec![r],
                MatchMode::Semantic => ontology
                    .vocabulary()
                    .relations_order()
                    .descendants(r)
                    .collect(),
            })
            .clone()
    }

    /// Evaluate `plan` under the partial binding `ctx`, returning every
    /// extension of `ctx` the subtree admits.
    fn eval_plan(&mut self, plan: &Plan, ctx: &Binding) -> Vec<Binding> {
        match &plan.op {
            PlanOp::Empty => Vec::new(),
            PlanOp::Scan {
                pattern,
                subject_in,
                object_in,
                taxo_unfold,
            } => self.scan(
                pattern,
                subject_in.as_deref(),
                object_in.as_deref(),
                *taxo_unfold,
                ctx,
            ),
            PlanOp::Join(children) => {
                let mut acc = vec![ctx.clone()];
                for c in children {
                    let mut next = Vec::new();
                    for b in &acc {
                        next.extend(self.eval_plan(c, b));
                    }
                    acc = next;
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
            PlanOp::LeftJoin(l, r) => {
                let mut out = Vec::new();
                for b in self.eval_plan(l, ctx) {
                    let rs = self.eval_plan(r, &b);
                    if rs.is_empty() {
                        out.push(b);
                    } else {
                        out.extend(rs);
                    }
                }
                out
            }
            PlanOp::Union(branches) => {
                let mut out = Vec::new();
                for b in branches {
                    out.extend(self.eval_plan(b, ctx));
                }
                out
            }
            PlanOp::Filter(input, exprs) => {
                let mut rows = self.eval_plan(input, ctx);
                rows.retain(|b| exprs.iter().all(|e| e.eval(|v| b.get(v))));
                rows
            }
            PlanOp::Project(input, keep) => {
                let keep: HashSet<Var> = keep.iter().copied().collect();
                let mut rows = self.eval_plan(input, ctx);
                for b in &mut rows {
                    for i in 0..b.values.len() {
                        if !keep.contains(&Var(i as u32)) {
                            b.values[i] = None;
                        }
                    }
                }
                rows
            }
            PlanOp::Distinct(input) => {
                let mut rows = self.eval_plan(input, ctx);
                rows.sort_by(|a, b| a.values.cmp(&b.values));
                rows.dedup();
                rows
            }
            PlanOp::Sort(input, keys) => {
                let mut rows = self.eval_plan(input, ctx);
                // Stable: equal keys keep the canonical (distinct) order.
                rows.sort_by(|a, b| compare_by_keys(a, b, keys));
                rows
            }
            PlanOp::Slice(input, offset, limit) => {
                let rows = self.eval_plan(input, ctx);
                let offset = usize::try_from(*offset).unwrap_or(usize::MAX);
                let limit = limit
                    .map(|l| usize::try_from(l).unwrap_or(usize::MAX))
                    .unwrap_or(usize::MAX);
                rows.into_iter().skip(offset).take(limit).collect()
            }
        }
    }

    /// Enumerate matches of one scan under `ctx`, extending the binding.
    fn scan(
        &mut self,
        pattern: &TriplePattern,
        subject_in: Option<&[Term]>,
        object_in: Option<&[Term]>,
        taxo_unfold: bool,
        ctx: &Binding,
    ) -> Vec<Binding> {
        let s = resolve(&pattern.subject, ctx);
        let o = resolve(&pattern.object, ctx);
        // A bound endpoint outside its pushed-down value set cannot match.
        if let (Some(sv), Some(list)) = (s, subject_in) {
            if !list.contains(&sv) {
                return Vec::new();
            }
        }
        if let (Some(ov), Some(list)) = (o, object_in) {
            if !list.contains(&ov) {
                return Vec::new();
            }
        }
        let shape = match (s.is_some(), o.is_some()) {
            (true, true) => "spo",
            (true, false) => "sp?",
            (false, true) => "?po",
            (false, false) => "?p?",
        };
        self.sink.count_labeled(names::SPARQL_PATTERN_SCAN, shape, 1);
        let narrowable = matches!(pattern.path, PropPath::Rel(_))
            && ((s.is_none() && subject_in.is_some())
                || (o.is_none() && object_in.is_some()));
        let pairs = if narrowable {
            // Plain edge scans probe the pushed-down values directly
            // instead of enumerating the full relation. (Path scans keep
            // the full enumeration + post-filter: their reflexive pairs
            // range over vocabulary elements, which value probing would
            // silently widen to arbitrary pushed-down terms.)
            let expand = |bound: Option<Term>, list: Option<&[Term]>| -> Vec<Option<Term>> {
                match (bound, list) {
                    (None, Some(l)) => {
                        let mut l = l.to_vec();
                        l.sort();
                        l.dedup();
                        l.into_iter().map(Some).collect()
                    }
                    (b, _) => vec![b],
                }
            };
            let svs = expand(s, subject_in);
            let ovs = expand(o, object_in);
            let mut out = Vec::new();
            for &sv in &svs {
                for &ov in &ovs {
                    out.extend(self.pairs(&pattern.path, sv, ov, false));
                }
            }
            out
        } else {
            let mut out = self.pairs(&pattern.path, s, o, taxo_unfold);
            if s.is_none() {
                if let Some(list) = subject_in {
                    out.retain(|(a, _)| list.contains(a));
                }
            }
            if o.is_none() {
                if let Some(list) = object_in {
                    out.retain(|(_, b)| list.contains(b));
                }
            }
            out
        };
        let mut rows = Vec::with_capacity(pairs.len());
        for (sv, ov) in pairs {
            let mut b = ctx.clone();
            if extend(&mut b, &pattern.subject, sv) && extend(&mut b, &pattern.object, ov) {
                rows.push(b);
            }
        }
        rows
    }

    /// Pairs `(a, b)` matching `path` given the endpoint constraints.
    fn pairs(
        &mut self,
        path: &PropPath,
        s: Option<Term>,
        o: Option<Term>,
        taxo_unfold: bool,
    ) -> Vec<(Term, Term)> {
        match path {
            PropPath::Rel(r) => self.direct(*r, s, o),
            PropPath::Star(r) => {
                if taxo_unfold {
                    self.taxo_pairs(s, o, true)
                } else {
                    self.closure_pairs(*r, s, o, true)
                }
            }
            PropPath::Plus(r) => {
                if taxo_unfold {
                    self.taxo_pairs(s, o, false)
                } else {
                    self.closure_pairs(*r, s, o, false)
                }
            }
            PropPath::Opt(r) => {
                let mut v = self.direct(*r, s, o);
                // Zero-step pairs, mirroring `*`'s reflexive universe.
                match (s, o) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            v.push((a, b));
                        }
                    }
                    (Some(a), None) => v.push((a, a)),
                    (None, Some(b)) => v.push((b, b)),
                    (None, None) => {
                        for (e, _) in self.ontology.vocabulary().elements() {
                            v.push((Term::Element(e), Term::Element(e)));
                        }
                    }
                }
                v.sort();
                v.dedup();
                v
            }
            PropPath::Seq(parts) => {
                let last_only = parts.len() == 1;
                let mut frontier =
                    self.pairs(&parts[0], s, if last_only { o } else { None }, false);
                frontier.sort();
                frontier.dedup();
                for (i, part) in parts.iter().enumerate().skip(1) {
                    let last = i == parts.len() - 1;
                    let mut next = Vec::new();
                    for &(start, mid) in &frontier {
                        for (_, end) in
                            self.pairs(part, Some(mid), if last { o } else { None }, false)
                        {
                            next.push((start, end));
                        }
                    }
                    next.sort();
                    next.dedup();
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            }
            PropPath::Alt(parts) => {
                let mut v = Vec::new();
                for p in parts {
                    v.extend(self.pairs(p, s, o, false));
                }
                v.sort();
                v.dedup();
                v
            }
        }
    }

    /// Single-edge matches under the mode's relation match-list.
    fn direct(&mut self, r: RelationId, s: Option<Term>, o: Option<Term>) -> Vec<(Term, Term)> {
        let rels = self.rels(r);
        let mut pairs = Vec::new();
        for rel in rels {
            pairs.extend(
                self.ontology
                    .store()
                    .matching(s, Some(rel), o)
                    .map(|t| (t.subject, t.object)),
            );
        }
        pairs
    }

    /// Pairs `(a, b)` with `a —r→* b` (or `+` when `reflexive` is false),
    /// via memoized BFS over stored edges.
    fn closure_pairs(
        &mut self,
        r: RelationId,
        s: Option<Term>,
        o: Option<Term>,
        reflexive: bool,
    ) -> Vec<(Term, Term)> {
        match (s, o) {
            (Some(s), Some(o)) => {
                let reach = self.forward(r, s);
                let hit = if s == o {
                    reflexive || reach.contains(&o)
                } else {
                    reach.contains(&o)
                };
                if hit {
                    vec![(s, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), None) => {
                let mut v: Vec<(Term, Term)> =
                    self.forward(r, s).iter().map(|&t| (s, t)).collect();
                if reflexive {
                    v.push((s, s));
                }
                v
            }
            (None, Some(o)) => {
                let mut v: Vec<(Term, Term)> =
                    self.backward(r, o).iter().map(|&t| (t, o)).collect();
                if reflexive {
                    v.push((o, o));
                }
                v
            }
            (None, None) => {
                // Unconstrained path: enumerate from every node incident to a
                // matching edge; reflexive pairs over all vocabulary elements.
                let mut nodes: HashSet<Term> = HashSet::new();
                for rel in self.rels(r) {
                    for t in self.ontology.store().matching(None, Some(rel), None) {
                        nodes.insert(t.subject);
                        nodes.insert(t.object);
                    }
                }
                let mut pairs = Vec::new();
                if reflexive {
                    for (e, _) in self.ontology.vocabulary().elements() {
                        pairs.push((Term::Element(e), Term::Element(e)));
                    }
                }
                let nodes: Vec<Term> = nodes.into_iter().collect();
                for n in nodes {
                    for t in self.forward(r, n) {
                        pairs.push((n, t));
                    }
                }
                pairs
            }
        }
    }

    /// Path pairs answered by `≤E` reachability — only reached when the
    /// optimizer's mirror check proved edge-reachability equals taxonomy
    /// reachability (see `plan::Planner::taxo_unfoldable`).
    fn taxo_pairs(&self, s: Option<Term>, o: Option<Term>, reflexive: bool) -> Vec<(Term, Term)> {
        let vocab = self.ontology.vocabulary();
        let taxo = vocab.elements_order();
        match (s, o) {
            (Some(s), Some(o)) => {
                let hit = if s == o {
                    reflexive
                } else {
                    match (s.as_element(), o.as_element()) {
                        (Some(se), Some(oe)) => taxo.lt(oe, se),
                        _ => false,
                    }
                };
                if hit {
                    vec![(s, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), None) => {
                let mut v = Vec::new();
                if let Some(se) = s.as_element() {
                    for a in taxo.ancestors(se) {
                        if a != se {
                            v.push((s, Term::Element(a)));
                        }
                    }
                }
                if reflexive {
                    v.push((s, s));
                }
                v
            }
            (None, Some(o)) => {
                let mut v = Vec::new();
                if let Some(oe) = o.as_element() {
                    for d in taxo.descendants(oe) {
                        if d != oe {
                            v.push((Term::Element(d), o));
                        }
                    }
                }
                if reflexive {
                    v.push((o, o));
                }
                v
            }
            (None, None) => {
                let mut v = Vec::new();
                for (e, _) in vocab.elements() {
                    if reflexive {
                        v.push((Term::Element(e), Term::Element(e)));
                    }
                    for a in taxo.ancestors(e) {
                        if a != e {
                            v.push((Term::Element(e), Term::Element(a)));
                        }
                    }
                }
                v
            }
        }
    }

    /// Nodes strictly reachable from `from` via matching edges (excludes
    /// `from` unless it lies on a cycle).
    fn forward(&mut self, r: RelationId, from: Term) -> Vec<Term> {
        if let Some(v) = self.fwd_closure.get(&(r, from)) {
            return v.clone();
        }
        let rels = self.rels(r);
        let (set, depth) = bfs(from, |n| {
            let mut next = Vec::new();
            for &rel in &rels {
                next.extend(self.ontology.store().objects(n, rel));
            }
            next
        });
        self.sink.observe(names::SPARQL_PATH_DEPTH, depth as f64);
        self.fwd_closure.insert((r, from), set.clone());
        set
    }

    /// Nodes that strictly reach `to` via matching edges.
    fn backward(&mut self, r: RelationId, to: Term) -> Vec<Term> {
        if let Some(v) = self.bwd_closure.get(&(r, to)) {
            return v.clone();
        }
        let rels = self.rels(r);
        let (set, depth) = bfs(to, |n| {
            let mut next = Vec::new();
            for &rel in &rels {
                next.extend(self.ontology.store().subjects(rel, n));
            }
            next
        });
        self.sink.observe(names::SPARQL_PATH_DEPTH, depth as f64);
        self.bwd_closure.insert((r, to), set.clone());
        set
    }
}

/// Compare two bindings by `ORDER BY` keys, falling back to equal
/// (callers rely on stable sorting for deterministic ties).
pub(crate) fn compare_by_keys(a: &Binding, b: &Binding, keys: &[(Var, SortDir)]) -> Ordering {
    for (v, dir) in keys {
        let ord = a.get(*v).cmp(&b.get(*v));
        let ord = if *dir == SortDir::Desc {
            ord.reverse()
        } else {
            ord
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Bind `t` to `val` in `b`; false when `t` is a conflicting constant or
/// an already-bound variable with a different value.
fn extend(b: &mut Binding, t: &PatTerm, val: Term) -> bool {
    match t {
        PatTerm::Const(c) => *c == val,
        PatTerm::Var(v) => match b.get(*v) {
            Some(existing) => existing == val,
            None => {
                b.set(*v, val);
                true
            }
        },
    }
}

/// Distinct nodes reachable in ≥1 step from `start` under `next`, plus the
/// largest shortest-path distance at which a node was discovered (the
/// path-expansion depth; 0 when nothing is reachable).
fn bfs<F>(start: Term, mut next: F) -> (Vec<Term>, usize)
where
    F: FnMut(Term) -> Vec<Term>,
{
    let mut seen: HashSet<Term> = HashSet::new();
    let mut queue: VecDeque<(Term, usize)> = VecDeque::from([(start, 0)]);
    let mut out = Vec::new();
    let mut depth = 0;
    while let Some((n, d)) = queue.pop_front() {
        for m in next(n) {
            if seen.insert(m) {
                out.push(m);
                queue.push_back((m, d + 1));
                depth = depth.max(d + 1);
            }
        }
    }
    (out, depth)
}

fn resolve(t: &PatTerm, binding: &Binding) -> Option<Term> {
    match t {
        PatTerm::Const(c) => Some(*c),
        PatTerm::Var(v) => binding.get(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_patterns, parse_where};
    use oassis_store::ontology::figure1_ontology;

    fn eval(src: &str, mode: MatchMode) -> (Vec<Binding>, VarTable, oassis_store::Ontology) {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns(src, &o, &mut vars).unwrap();
        let res = evaluate(&o, &pats, &vars, mode);
        (res, vars, o)
    }

    fn eval_where(src: &str, mode: MatchMode) -> (Vec<Binding>, VarTable, oassis_store::Ontology) {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let clause = parse_where(src, &o, &mut vars).unwrap();
        let res = evaluate_where(&o, &clause, &vars, mode);
        (res, vars, o)
    }

    fn names(
        results: &[Binding],
        vars: &VarTable,
        o: &oassis_store::Ontology,
        var: &str,
    ) -> Vec<String> {
        let v = vars.get(var).unwrap();
        let mut out: Vec<String> = results
            .iter()
            .filter_map(|b| b.get(v))
            .filter_map(|t| t.as_element())
            .map(|e| o.vocabulary().element_name(e).to_owned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn star_path_is_reflexive_transitive() {
        let (res, vars, o) = eval("$w subClassOf* Attraction", MatchMode::Syntactic);
        let ws = names(&res, &vars, &o, "w");
        assert!(ws.contains(&"Attraction".to_owned()), "reflexive: {ws:?}");
        assert!(ws.contains(&"Park".to_owned()), "transitive: {ws:?}");
        assert!(ws.contains(&"Zoo".to_owned()));
        // Instances are reached only via instanceOf, not subClassOf.
        assert!(!ws.contains(&"Central Park".to_owned()));
    }

    #[test]
    fn plus_path_excludes_reflexive() {
        let (res, vars, o) = eval("$w subClassOf+ Attraction", MatchMode::Syntactic);
        let ws = names(&res, &vars, &o, "w");
        assert!(!ws.contains(&"Attraction".to_owned()));
        assert!(ws.contains(&"Park".to_owned()));
    }

    #[test]
    fn join_instances_of_star_classes() {
        let (res, vars, o) = eval(
            "$w subClassOf* Attraction. $x instanceOf $w",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn label_filter() {
        let (res, vars, o) = eval(
            r#"$x instanceOf Park. $x hasLabel "child-friendly""#,
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Central Park", "Madison Square"]);
    }

    #[test]
    fn semantic_mode_matches_relation_specializations() {
        // nearBy ≤R inside, so `$a nearBy NYC` semantically matches the
        // stored `Central Park inside NYC`.
        let (res, vars, o) = eval("$a nearBy NYC", MatchMode::Semantic);
        let xs = names(&res, &vars, &o, "a");
        assert!(xs.contains(&"Central Park".to_owned()), "{xs:?}");
        let (res_syn, vars2, o2) = eval("$a nearBy NYC", MatchMode::Syntactic);
        assert!(
            !names(&res_syn, &vars2, &o2, "a").contains(&"Central Park".to_owned()),
            "syntactic mode must not"
        );
    }

    #[test]
    fn running_example_where_clause_has_expected_assignments() {
        let src = r#"
            $w subClassOf* Attraction.
            $x instanceOf $w.
            $x inside NYC.
            $x hasLabel "child-friendly".
            $y subClassOf* Activity.
            $z instanceOf Restaurant.
            $z nearBy $x
        "#;
        let (res, vars, o) = eval(src, MatchMode::Syntactic);
        assert!(!res.is_empty());
        let xs = names(&res, &vars, &o, "x");
        // Bronx Zoo (Pine nearBy), Central Park and Madison Square (Maoz).
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
        let ys = names(&res, &vars, &o, "y");
        assert!(ys.contains(&"Biking".to_owned()));
        assert!(ys.contains(&"Sport".to_owned()), "classes are included");
        let zs = names(&res, &vars, &o, "z");
        assert_eq!(zs, ["Maoz Veg.", "Pine"]);
        // The φ16 combination exists: x=Central Park, y=Biking, z=Maoz Veg.
        let (x, y, z) = (
            vars.get("x").unwrap(),
            vars.get("y").unwrap(),
            vars.get("z").unwrap(),
        );
        let v = o.vocabulary();
        let phi16 = res.iter().any(|b| {
            b.get(x) == Some(v.element("Central Park").unwrap().into())
                && b.get(y) == Some(v.element("Biking").unwrap().into())
                && b.get(z) == Some(v.element("Maoz Veg.").unwrap().into())
        });
        assert!(phi16, "φ16 must be a valid assignment");
    }

    #[test]
    fn fully_bound_pattern_checks_membership() {
        let (res, _, _) = eval("<Central Park> inside NYC", MatchMode::Syntactic);
        assert_eq!(res.len(), 1, "one empty binding = true");
        let (res, _, _) = eval("NYC inside <Central Park>", MatchMode::Syntactic);
        assert!(res.is_empty(), "no binding = false");
    }

    #[test]
    fn both_free_star_includes_reflexive_pairs() {
        let (res, vars, o) = eval("$a subClassOf* $b", MatchMode::Syntactic);
        let v = o.vocabulary();
        let biking: Term = v.element("Biking").unwrap().into();
        let sport: Term = v.element("Sport").unwrap().into();
        let a = vars.get("a").unwrap();
        let b = vars.get("b").unwrap();
        assert!(res
            .iter()
            .any(|r| r.get(a) == Some(biking) && r.get(b) == Some(biking)));
        assert!(res
            .iter()
            .any(|r| r.get(a) == Some(biking) && r.get(b) == Some(sport)));
        assert!(!res
            .iter()
            .any(|r| r.get(a) == Some(sport) && r.get(b) == Some(biking)));
    }

    #[test]
    fn shared_variable_join_is_consistent() {
        // $x must be the same element in both patterns.
        let (res, vars, o) = eval(
            "$x inside NYC. $x hasLabel \"child-friendly\"",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn no_matches_yields_empty() {
        let (res, _, _) = eval("NYC nearBy NYC", MatchMode::Syntactic);
        assert!(res.is_empty());
    }

    #[test]
    fn results_are_distinct() {
        let (res, _, _) = eval("$x inside NYC. $x inside NYC", MatchMode::Syntactic);
        let mut seen = std::collections::HashSet::new();
        for b in &res {
            assert!(seen.insert(b.clone()), "duplicate binding {b:?}");
        }
    }

    // ---- WHERE-clause algebra ------------------------------------------

    #[test]
    fn union_merges_branch_solutions() {
        let (res, vars, o) = eval_where(
            "{ $x instanceOf Park } UNION { $x instanceOf Zoo }",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn union_branches_join_with_outer_patterns() {
        let (res, vars, o) = eval_where(
            "$x inside NYC. { $x instanceOf Park } UNION { $x instanceOf Zoo }",
            MatchMode::Syntactic,
        );
        let xs = names(&res, &vars, &o, "x");
        assert_eq!(xs, ["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn optional_keeps_unmatched_left_rows() {
        let (res, vars, o) = eval_where(
            "$z instanceOf Restaurant. OPTIONAL { $z nearBy <Bronx Zoo> }",
            MatchMode::Syntactic,
        );
        // Pine matches the optional; Maoz Veg. survives without it.
        let zs = names(&res, &vars, &o, "z");
        assert_eq!(zs, ["Maoz Veg.", "Pine"]);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn optional_binds_when_present() {
        let (res, vars, o) = eval_where(
            "$z instanceOf Restaurant. OPTIONAL { $z nearBy $x }",
            MatchMode::Syntactic,
        );
        let x = vars.get("x").unwrap();
        let z = vars.get("z").unwrap();
        let v = o.vocabulary();
        let pine: Term = v.element("Pine").unwrap().into();
        let zoo: Term = v.element("Bronx Zoo").unwrap().into();
        assert!(res
            .iter()
            .any(|b| b.get(z) == Some(pine) && b.get(x) == Some(zoo)));
        // Every restaurant is nearBy something, so no row has x unbound.
        assert!(res.iter().all(|b| b.get(x).is_some()));
    }

    #[test]
    fn filter_restricts_solutions() {
        let (res, vars, o) = eval_where(
            "$x instanceOf Park. FILTER($x != <Central Park>)",
            MatchMode::Syntactic,
        );
        assert_eq!(names(&res, &vars, &o, "x"), ["Madison Square"]);
        let (res, vars, o) = eval_where(
            "$x inside NYC. FILTER($x IN (<Central Park>, <Bronx Zoo>))",
            MatchMode::Syntactic,
        );
        assert_eq!(names(&res, &vars, &o, "x"), ["Bronx Zoo", "Central Park"]);
        let (res, vars, o) = eval_where(
            "$x inside NYC. FILTER($x NOT IN (<Central Park>))",
            MatchMode::Syntactic,
        );
        assert_eq!(names(&res, &vars, &o, "x"), ["Bronx Zoo", "Madison Square"]);
    }

    #[test]
    fn order_limit_offset_slice_the_ordered_list() {
        let (all, vars, _) = eval_where("$x inside NYC ORDER BY $x", MatchMode::Syntactic);
        assert_eq!(all.len(), 3);
        let x = vars.get("x").unwrap();
        let mut sorted = all.clone();
        sorted.sort_by(|a, b| a.get(x).cmp(&b.get(x)));
        assert_eq!(all, sorted, "ORDER BY $x yields key-sorted rows");
        let (page, _, _) = eval_where(
            "$x inside NYC ORDER BY $x LIMIT 2 OFFSET 1",
            MatchMode::Syntactic,
        );
        assert_eq!(page, all[1..3].to_vec());
        let (desc, _, _) = eval_where("$x inside NYC ORDER BY $x DESC", MatchMode::Syntactic);
        assert_eq!(desc, all.iter().rev().cloned().collect::<Vec<_>>());
    }

    #[test]
    fn sequence_path_composes_edges() {
        // $z nearBy $x and $x inside NYC ⇒ $z nearBy/inside NYC.
        let (res, vars, o) = eval_where("$z nearBy/inside $c", MatchMode::Syntactic);
        let cs = names(&res, &vars, &o, "c");
        assert_eq!(cs, ["NYC"]);
        let zs = names(&res, &vars, &o, "z");
        assert_eq!(zs, ["Maoz Veg.", "Pine"]);
    }

    #[test]
    fn alternation_path_unions_edge_sets() {
        let (res, vars, o) = eval_where("$a inside|nearBy $b", MatchMode::Syntactic);
        let v = o.vocabulary();
        let a = vars.get("a").unwrap();
        let b = vars.get("b").unwrap();
        let pine: Term = v.element("Pine").unwrap().into();
        let zoo: Term = v.element("Bronx Zoo").unwrap().into();
        let cp: Term = v.element("Central Park").unwrap().into();
        let nyc: Term = v.element("NYC").unwrap().into();
        assert!(res.iter().any(|r| r.get(a) == Some(pine) && r.get(b) == Some(zoo)));
        assert!(res.iter().any(|r| r.get(a) == Some(cp) && r.get(b) == Some(nyc)));
    }

    #[test]
    fn optional_step_path_is_zero_or_one_edges() {
        let (res, vars, o) = eval_where("<Central Park> inside? $y", MatchMode::Syntactic);
        let ys = names(&res, &vars, &o, "y");
        assert_eq!(ys, ["Central Park", "NYC"]);
        // Fully-bound reflexive check.
        let (res, _, _) = eval_where("NYC nearBy? NYC", MatchMode::Syntactic);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn optimized_plan_matches_unoptimized_plan() {
        let o = figure1_ontology();
        for mode in [MatchMode::Syntactic, MatchMode::Semantic] {
            for src in [
                "$w subClassOf* Attraction",
                "$w subClassOf+ $v",
                "$x inside NYC. $x instanceOf $w. FILTER($w != Park)",
                "{ $x instanceOf Park } UNION { $x instanceOf Zoo }. \
                 OPTIONAL { $x hasLabel \"child-friendly\" }",
            ] {
                let mut vars = VarTable::new();
                let clause = parse_where(src, &o, &mut vars).unwrap();
                let optimized = evaluate_where(&o, &clause, &vars, mode);
                let naive_plan = plan::compile(&o, &clause, mode);
                let unoptimized = run_plan(&o, &naive_plan, &vars, mode);
                assert_eq!(optimized, unoptimized, "{src} under {mode:?}");
            }
        }
    }

    #[test]
    fn planner_events_reach_the_sink() {
        use oassis_obs::InMemorySink;
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let clause = parse_where(
            "$w subClassOf* Attraction. FILTER($w IN (Park, Zoo))",
            &o,
            &mut vars,
        )
        .unwrap();
        let mem = InMemorySink::shared();
        let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
        let res = evaluate_where_with_sink(&o, &clause, &vars, MatchMode::Semantic, &sink);
        assert_eq!(res.len(), 2);
        let snap = mem.snapshot();
        assert!(snap.counter(names::SPARQL_PLAN_PUSHDOWN) >= 1);
        assert!(snap.counter(names::SPARQL_PLAN_UNFOLD) >= 1);
        assert!(snap.counter_across_labels(names::SPARQL_PATTERN_SCAN) >= 1);
    }
}
