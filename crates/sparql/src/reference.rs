//! A deliberately naive reference evaluator for differential testing.
//!
//! [`evaluate_reference`] implements the WHERE-clause semantics by direct
//! recursion over the AST with none of the planner's machinery: patterns
//! run in source order, filters apply only at the end of their group,
//! property paths are answered by fresh unmemoized depth-first search per
//! lookup, and no pushed-down restrictions or taxonomy unfolding exist.
//! It is the "obviously correct" spelling of the semantics; the proptest
//! oracle in `tests/` checks that the optimized planner, the unoptimized
//! plan interpreter, and this evaluator agree binding-for-binding on
//! random queries over random taxonomies.

use std::collections::HashSet;

use oassis_store::{Ontology, Term};
use oassis_vocab::RelationId;

use crate::ast::{
    FilterExpr, GraphPattern, GroupItem, PatTerm, PropPath, TriplePattern, VarTable, WhereClause,
};
use crate::eval::{Binding, MatchMode};

/// Evaluate `clause` the slow, obvious way. Results follow the same
/// contract as [`crate::evaluate_where`]: set-semantic (sorted by binding
/// value, deduplicated), then `ORDER BY`-sorted and `OFFSET`/`LIMIT`
/// sliced.
pub fn evaluate_reference(
    ontology: &Ontology,
    clause: &WhereClause,
    vars: &VarTable,
    mode: MatchMode,
) -> Vec<Binding> {
    let r = Ref { ontology, mode };
    let mut rows = r.group(&clause.pattern, &Binding::new(vars.len()));
    rows.sort();
    rows.dedup();
    if !clause.order_by.is_empty() {
        rows.sort_by(|a, b| crate::eval::compare_by_keys(a, b, &clause.order_by));
    }
    let offset = usize::try_from(clause.offset).unwrap_or(usize::MAX);
    let limit = clause
        .limit
        .map(|l| usize::try_from(l).unwrap_or(usize::MAX))
        .unwrap_or(usize::MAX);
    rows.into_iter().skip(offset).take(limit).collect()
}

struct Ref<'a> {
    ontology: &'a Ontology,
    mode: MatchMode,
}

impl<'a> Ref<'a> {
    /// Relations `r` matches under the mode — recomputed on every call,
    /// deliberately.
    fn rels(&self, r: RelationId) -> Vec<RelationId> {
        match self.mode {
            MatchMode::Syntactic => vec![r],
            MatchMode::Semantic => self
                .ontology
                .vocabulary()
                .relations_order()
                .descendants(r)
                .collect(),
        }
    }

    /// Solutions of `group` extending `ctx`: items in source order,
    /// filters collected and applied once at group close.
    fn group(&self, group: &GraphPattern, ctx: &Binding) -> Vec<Binding> {
        let mut rows = vec![ctx.clone()];
        let mut filters: Vec<&FilterExpr> = Vec::new();
        for item in &group.items {
            match item {
                GroupItem::Triple(t) => {
                    let mut next = Vec::new();
                    for b in &rows {
                        next.extend(self.triple(t, b));
                    }
                    rows = next;
                }
                GroupItem::Optional(body) => {
                    let mut next = Vec::new();
                    for b in &rows {
                        let inner = self.group(body, b);
                        if inner.is_empty() {
                            next.push(b.clone());
                        } else {
                            next.extend(inner);
                        }
                    }
                    rows = next;
                }
                GroupItem::Union(branches) => {
                    let mut next = Vec::new();
                    for b in &rows {
                        for branch in branches {
                            next.extend(self.group(branch, b));
                        }
                    }
                    rows = next;
                }
                GroupItem::Filter(e) => filters.push(e),
            }
        }
        rows.retain(|b| filters.iter().all(|e| e.eval(|v| b.get(v))));
        rows
    }

    /// Extensions of `ctx` matching one triple pattern.
    fn triple(&self, t: &TriplePattern, ctx: &Binding) -> Vec<Binding> {
        let s = resolve(&t.subject, ctx);
        let o = resolve(&t.object, ctx);
        let mut out = Vec::new();
        for (sv, ov) in self.pairs(&t.path, s, o) {
            let mut b = ctx.clone();
            if bind(&mut b, &t.subject, sv) && bind(&mut b, &t.object, ov) {
                out.push(b);
            }
        }
        out
    }

    /// `(subject, object)` pairs matching `path` under the constraints —
    /// all by linear scans and fresh DFS.
    fn pairs(&self, path: &PropPath, s: Option<Term>, o: Option<Term>) -> Vec<(Term, Term)> {
        match path {
            PropPath::Rel(r) => self.edges(*r, s, o),
            PropPath::Star(r) => self.closure(*r, s, o, true),
            PropPath::Plus(r) => self.closure(*r, s, o, false),
            PropPath::Opt(r) => {
                let mut v = self.edges(*r, s, o);
                match (s, o) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            v.push((a, b));
                        }
                    }
                    (Some(a), None) => v.push((a, a)),
                    (None, Some(b)) => v.push((b, b)),
                    (None, None) => {
                        for (e, _) in self.ontology.vocabulary().elements() {
                            v.push((Term::Element(e), Term::Element(e)));
                        }
                    }
                }
                v.sort();
                v.dedup();
                v
            }
            PropPath::Seq(parts) => {
                let mut frontier = self.pairs(&parts[0], s, None);
                frontier.sort();
                frontier.dedup();
                for (i, part) in parts.iter().enumerate().skip(1) {
                    let last = i == parts.len() - 1;
                    let mut next = Vec::new();
                    for &(start, mid) in &frontier {
                        for (_, end) in self.pairs(part, Some(mid), if last { o } else { None }) {
                            next.push((start, end));
                        }
                    }
                    next.sort();
                    next.dedup();
                    frontier = next;
                }
                frontier
            }
            PropPath::Alt(parts) => {
                let mut v = Vec::new();
                for p in parts {
                    v.extend(self.pairs(p, s, o));
                }
                v.sort();
                v.dedup();
                v
            }
        }
    }

    /// Single edges: scan every stored triple of every matched relation
    /// and keep the endpoint-compatible ones.
    fn edges(&self, r: RelationId, s: Option<Term>, o: Option<Term>) -> Vec<(Term, Term)> {
        let mut out = Vec::new();
        for rel in self.rels(r) {
            for t in self.ontology.store().matching(None, Some(rel), None) {
                if s.is_some_and(|s| s != t.subject) {
                    continue;
                }
                if o.is_some_and(|o| o != t.object) {
                    continue;
                }
                out.push((t.subject, t.object));
            }
        }
        out
    }

    /// `*`/`+` pairs via fresh DFS — same semantics as the interpreter's
    /// memoized BFS (reflexive pairs range over vocabulary elements when
    /// both endpoints are free).
    fn closure(
        &self,
        r: RelationId,
        s: Option<Term>,
        o: Option<Term>,
        reflexive: bool,
    ) -> Vec<(Term, Term)> {
        match (s, o) {
            (Some(s), Some(o)) => {
                let hit = if s == o {
                    reflexive || self.reach(r, s).contains(&o)
                } else {
                    self.reach(r, s).contains(&o)
                };
                if hit {
                    vec![(s, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), None) => {
                let mut v: Vec<(Term, Term)> =
                    self.reach(r, s).into_iter().map(|t| (s, t)).collect();
                if reflexive {
                    v.push((s, s));
                }
                v
            }
            (None, Some(o)) => {
                let mut v: Vec<(Term, Term)> =
                    self.co_reach(r, o).into_iter().map(|t| (t, o)).collect();
                if reflexive {
                    v.push((o, o));
                }
                v
            }
            (None, None) => {
                let mut nodes: HashSet<Term> = HashSet::new();
                for rel in self.rels(r) {
                    for t in self.ontology.store().matching(None, Some(rel), None) {
                        nodes.insert(t.subject);
                        nodes.insert(t.object);
                    }
                }
                let mut pairs = Vec::new();
                if reflexive {
                    for (e, _) in self.ontology.vocabulary().elements() {
                        pairs.push((Term::Element(e), Term::Element(e)));
                    }
                }
                for n in nodes {
                    for t in self.reach(r, n) {
                        pairs.push((n, t));
                    }
                }
                pairs
            }
        }
    }

    /// Nodes strictly reachable from `from` (fresh DFS, no memo).
    fn reach(&self, r: RelationId, from: Term) -> Vec<Term> {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            for (s2, o2) in self.edges(r, Some(n), None) {
                debug_assert_eq!(s2, n);
                if seen.insert(o2) {
                    out.push(o2);
                    stack.push(o2);
                }
            }
        }
        out
    }

    /// Nodes that strictly reach `to` (fresh DFS, no memo).
    fn co_reach(&self, r: RelationId, to: Term) -> Vec<Term> {
        let mut seen = HashSet::new();
        let mut stack = vec![to];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            for (s2, o2) in self.edges(r, None, Some(n)) {
                debug_assert_eq!(o2, n);
                if seen.insert(s2) {
                    out.push(s2);
                    stack.push(s2);
                }
            }
        }
        out
    }
}

fn resolve(t: &PatTerm, b: &Binding) -> Option<Term> {
    match t {
        PatTerm::Const(c) => Some(*c),
        PatTerm::Var(v) => b.get(*v),
    }
}

fn bind(b: &mut Binding, t: &PatTerm, val: Term) -> bool {
    match t {
        PatTerm::Const(c) => *c == val,
        PatTerm::Var(v) => match b.get(*v) {
            Some(existing) => existing == val,
            None => {
                b.set(*v, val);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_where;
    use crate::parser::parse_where;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn reference_agrees_with_planner_on_figure1() {
        let o = figure1_ontology();
        let sources = [
            "$x instanceOf Park",
            "$w subClassOf* Attraction. $x instanceOf $w",
            "$z nearBy/inside $c",
            "$a inside|nearBy $b",
            "<Central Park> inside? $y",
            "{ $x instanceOf Park } UNION { $x instanceOf Zoo }",
            "$z instanceOf Restaurant. OPTIONAL { $z nearBy <Bronx Zoo> }",
            "$x inside NYC. FILTER($x NOT IN (<Central Park>))",
            "$x inside NYC ORDER BY $x DESC LIMIT 2",
        ];
        for mode in [MatchMode::Syntactic, MatchMode::Semantic] {
            for src in sources {
                let mut vars = VarTable::new();
                let clause = parse_where(src, &o, &mut vars).unwrap();
                let fast = evaluate_where(&o, &clause, &vars, mode);
                let slow = evaluate_reference(&o, &clause, &vars, mode);
                assert_eq!(fast, slow, "{src} under {mode:?}");
            }
        }
    }

    #[test]
    fn reference_reflexive_star_over_elements() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let clause = parse_where("$a subClassOf* $a", &o, &mut vars).unwrap();
        let slow = evaluate_reference(&o, &clause, &vars, MatchMode::Syntactic);
        // One row per vocabulary element (reflexive pairs).
        assert_eq!(slow.len(), o.vocabulary().elements().count());
    }
}
