#![warn(missing_docs)]

//! # oassis-sparql
//!
//! A from-scratch compiler and evaluator for the SPARQL fragment that
//! OASSIS-QL builds on (the paper's prototype delegated this part to
//! RDFLIB's SPARQL engine):
//!
//! * basic graph patterns over the ontology's triple store,
//! * variables (`$x`), constants, string literals and the blank `[]`,
//! * the group-pattern algebra: `{ ... } UNION { ... }`, `OPTIONAL { ... }`
//!   and `FILTER (...)` with `=` / `!=` / `IN` / `NOT IN`,
//! * generalized property paths: `rel*` (reflexive-transitive), `rel+`
//!   (transitive), `rel?` (zero-or-one), sequences `p1/p2` and
//!   alternations `p1|p2`,
//! * solution modifiers `DISTINCT`, `ORDER BY`, `LIMIT`, `OFFSET`,
//! * two matching modes: plain syntactic SPARQL matching, and *semantic*
//!   matching where a pattern relation also matches its `≤R`-specializations
//!   (`$z nearBy $x` matches a stored `inside` triple because
//!   `nearBy ≤R inside`), which is what Definition 2.5's validity test
//!   `φ(A_WHERE) ≤ O` requires.
//!
//! Evaluation is staged: [`parse_where`] builds a [`WhereClause`] AST,
//! [`plan::compile`] lowers it to a logical [`plan::Plan`],
//! [`plan::optimize`] rewrites the plan (constraint pushdown into scans,
//! taxonomy-aware unfolding of `subClassOf*`-style paths, empty-branch
//! pruning, deterministic greedy join ordering), and the interpreter in
//! [`eval`] executes it with memoized path closures. A deliberately naive
//! [`reference`] evaluator re-implements the same semantics by direct AST
//! recursion for differential testing, and [`plan::Plan::explain`] renders
//! plans as deterministic `EXPLAIN`-style trees.

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod reference;

pub use ast::{
    FilterExpr, FilterTerm, GraphPattern, GroupItem, PatTerm, PropPath, SortDir, TriplePattern,
    Var, VarTable, WhereClause,
};
pub use error::{Span, SparqlError};
pub use eval::{
    evaluate, evaluate_where, evaluate_where_with_sink, evaluate_with_sink, run_plan,
    run_plan_with_sink, Binding, MatchMode,
};
pub use lexer::{tokenize, Token};
pub use parser::{parse_patterns, parse_where};
pub use plan::{Plan, PlanOp, PlanReport};
pub use reference::evaluate_reference;
