#![warn(missing_docs)]

//! # oassis-sparql
//!
//! A from-scratch evaluator for the SPARQL fragment that OASSIS-QL builds on
//! (the paper's prototype delegated this part to RDFLIB's SPARQL engine):
//!
//! * basic graph patterns over the ontology's triple store,
//! * variables (`$x`), constants, string literals and the blank `[]`,
//! * property paths `rel*` (reflexive-transitive) and `rel+` (transitive),
//!   e.g. `$w subClassOf* Attraction`,
//! * two matching modes: plain syntactic SPARQL matching, and *semantic*
//!   matching where a pattern relation also matches its `≤R`-specializations
//!   (`$z nearBy $x` matches a stored `inside` triple because
//!   `nearBy ≤R inside`), which is what Definition 2.5's validity test
//!   `φ(A_WHERE) ≤ O` requires.
//!
//! The evaluator performs a backtracking join with a greedy
//! most-selective-pattern-first order, memoizing path closures per query.

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{PatTerm, PropPath, TriplePattern, Var, VarTable};
pub use error::SparqlError;
pub use eval::{evaluate, evaluate_with_sink, Binding, MatchMode};
pub use lexer::{tokenize, Token};
pub use parser::parse_patterns;
