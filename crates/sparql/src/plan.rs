//! Logical query plans: an IR for WHERE clauses, an optimizing rewriter,
//! and an `EXPLAIN`-style rendering.
//!
//! [`compile`] lowers a [`WhereClause`] into a [`Plan`] tree that mirrors
//! the query's syntactic shape (scans in source order, filters attached to
//! their group). [`optimize`] then rewrites it:
//!
//! * **Filter pushdown** — positive per-variable constraints (`$x = c`,
//!   `$x IN (...)`) become `subject∈`/`object∈` restrictions on every scan
//!   below the filter that mentions the variable. The residual filter is
//!   kept (pushdown narrows scans, it never changes semantics).
//! * **Taxonomy-aware path unfolding** — a `rel*`/`rel+` scan whose matched
//!   relations *mirror* the element taxonomy (every stored edge is a
//!   strict `≤E` step, and every Hasse edge of `≤E` is stored) is answered
//!   by O(1) interval-style reachability checks (`elements_order`
//!   descendants bitsets) instead of BFS over stored edges. In semantic
//!   mode with `subClassOf ≤R instanceOf` this covers the paper's
//!   `subClassOf*` chains; in syntactic mode the mirror check fails
//!   (instanceOf edges are not matched) and BFS is kept — preserving the
//!   "instances are reached only via instanceOf" semantics.
//! * **Empty-branch pruning** — provably empty scans collapse to
//!   [`PlanOp::Empty`], which then annihilates joins, drops union
//!   branches, and erases optional arms.
//! * **Join reordering** — the greedy most-selective-first order, extended
//!   with a stable total-order tie-break (the operand's source position)
//!   so the plan shape is byte-identical across runs.

use std::collections::{HashMap, HashSet};

use oassis_store::{Ontology, Term};
use oassis_vocab::RelationId;

use crate::ast::{
    FilterExpr, FilterTerm, GraphPattern, GroupItem, PatTerm, PropPath, SortDir, TriplePattern,
    Var, VarTable, WhereClause,
};
use crate::eval::MatchMode;

/// A plan node with its cardinality estimate (rows it may emit, from
/// per-relation stored-triple counts; heuristic, not a bound).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The operator.
    pub op: PlanOp,
    /// Estimated output cardinality.
    pub est: usize,
}

/// Plan operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Provably no solutions.
    Empty,
    /// Enumerate matches of one triple pattern, under the evaluation's
    /// match mode, restricted by pushed-down value sets.
    Scan {
        /// The pattern to match.
        pattern: TriplePattern,
        /// Pushed-down admissible subject values (`None` = unrestricted).
        subject_in: Option<Vec<Term>>,
        /// Pushed-down admissible object values (`None` = unrestricted).
        object_in: Option<Vec<Term>>,
        /// Answer `rel*`/`rel+` by taxonomy reachability instead of BFS.
        taxo_unfold: bool,
    },
    /// Natural join of the children, evaluated left to right (an empty
    /// child list is the identity: one empty binding).
    Join(Vec<Plan>),
    /// SPARQL `OPTIONAL`: keep every left row, extended by right matches
    /// when they exist.
    LeftJoin(Box<Plan>, Box<Plan>),
    /// SPARQL `UNION`: concatenate branch solutions.
    Union(Vec<Plan>),
    /// Keep rows passing every expression (unbound variables fail).
    Filter(Box<Plan>, Vec<FilterExpr>),
    /// Keep only the listed variables bound (others become unbound).
    Project(Box<Plan>, Vec<Var>),
    /// Sort by full binding value and drop duplicates (set semantics).
    Distinct(Box<Plan>),
    /// Stable sort by `ORDER BY` keys (unbound sorts first).
    Sort(Box<Plan>, Vec<(Var, SortDir)>),
    /// `OFFSET`/`LIMIT` applied to the ordered solution list.
    Slice(Box<Plan>, u64, Option<u64>),
}

impl Plan {
    fn new(op: PlanOp, est: usize) -> Plan {
        Plan { op, est }
    }

    /// Variables any scan below this node can bind.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        self.collect_vars(&mut seen, &mut out);
        out
    }

    fn collect_vars(&self, seen: &mut HashSet<Var>, out: &mut Vec<Var>) {
        match &self.op {
            PlanOp::Empty => {}
            PlanOp::Scan { pattern, .. } => {
                for v in pattern.vars() {
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
            PlanOp::Join(cs) | PlanOp::Union(cs) => {
                cs.iter().for_each(|c| c.collect_vars(seen, out))
            }
            PlanOp::LeftJoin(l, r) => {
                l.collect_vars(seen, out);
                r.collect_vars(seen, out);
            }
            PlanOp::Filter(c, _)
            | PlanOp::Project(c, _)
            | PlanOp::Distinct(c)
            | PlanOp::Sort(c, _)
            | PlanOp::Slice(c, _, _) => c.collect_vars(seen, out),
        }
    }

    /// Number of operator nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + match &self.op {
            PlanOp::Empty | PlanOp::Scan { .. } => 0,
            PlanOp::Join(cs) | PlanOp::Union(cs) => cs.iter().map(Plan::node_count).sum(),
            PlanOp::LeftJoin(l, r) => l.node_count() + r.node_count(),
            PlanOp::Filter(c, _)
            | PlanOp::Project(c, _)
            | PlanOp::Distinct(c)
            | PlanOp::Sort(c, _)
            | PlanOp::Slice(c, _, _) => c.node_count(),
        }
    }
}

/// What the optimizer did to a plan (for instrumentation and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanReport {
    /// Scans that received a pushed-down value restriction.
    pub pushdowns: usize,
    /// Path scans switched to taxonomy reachability.
    pub unfolds: usize,
    /// Subtrees collapsed to `Empty` (or erased entirely).
    pub pruned: usize,
}

/// Lower `clause` to an unoptimized plan: scans in source order, filters
/// applied at their group, modifiers as a `Distinct`/`Sort`/`Slice` shell.
pub fn compile(ontology: &Ontology, clause: &WhereClause, mode: MatchMode) -> Plan {
    let mut planner = Planner::new(ontology, mode);
    let body = planner.compile_group(&clause.pattern);
    let est = body.est;
    let mut plan = Plan::new(PlanOp::Distinct(Box::new(body)), est);
    if !clause.order_by.is_empty() {
        plan = Plan::new(
            PlanOp::Sort(Box::new(plan), clause.order_by.clone()),
            est,
        );
    }
    if clause.limit.is_some() || clause.offset > 0 {
        let est = clause
            .limit
            .map_or(est, |l| est.min(usize::try_from(l).unwrap_or(usize::MAX)));
        plan = Plan::new(
            PlanOp::Slice(Box::new(plan), clause.offset, clause.limit),
            est,
        );
    }
    plan
}

/// Rewrite `plan` (pushdown, unfolding, pruning, join reordering) and
/// report what changed.
pub fn optimize_report(ontology: &Ontology, plan: Plan, mode: MatchMode) -> (Plan, PlanReport) {
    let mut planner = Planner::new(ontology, mode);
    let mut bound = HashSet::new();
    let optimized = planner.optimize_node(plan, &mut bound);
    (optimized, planner.report)
}

/// [`optimize_report`] without the report.
pub fn optimize(ontology: &Ontology, plan: Plan, mode: MatchMode) -> Plan {
    optimize_report(ontology, plan, mode).0
}

/// Shared state for one compile/optimize pass.
struct Planner<'a> {
    ontology: &'a Ontology,
    mode: MatchMode,
    /// Per pattern-relation match list under `mode`.
    rel_matches: HashMap<RelationId, Vec<RelationId>>,
    /// Memoized taxonomy-mirror verdicts per pattern relation.
    unfold_cache: HashMap<RelationId, bool>,
    report: PlanReport,
}

impl<'a> Planner<'a> {
    fn new(ontology: &'a Ontology, mode: MatchMode) -> Self {
        Planner {
            ontology,
            mode,
            rel_matches: HashMap::new(),
            unfold_cache: HashMap::new(),
            report: PlanReport::default(),
        }
    }

    fn match_rels(&mut self, r: RelationId) -> &[RelationId] {
        let ontology = self.ontology;
        let mode = self.mode;
        self.rel_matches.entry(r).or_insert_with(|| match mode {
            MatchMode::Syntactic => vec![r],
            MatchMode::Semantic => ontology
                .vocabulary()
                .relations_order()
                .descendants(r)
                .collect(),
        })
    }

    // ---- compile -------------------------------------------------------

    fn compile_group(&mut self, group: &GraphPattern) -> Plan {
        let mut join_children: Vec<Plan> = Vec::new();
        let mut optionals: Vec<Plan> = Vec::new();
        let mut filters: Vec<FilterExpr> = Vec::new();
        for item in &group.items {
            match item {
                GroupItem::Triple(t) => join_children.push(self.scan_plan(t.clone())),
                GroupItem::Union(branches) => {
                    let plans: Vec<Plan> =
                        branches.iter().map(|b| self.compile_group(b)).collect();
                    let est = plans.iter().map(|p| p.est).sum();
                    join_children.push(Plan::new(PlanOp::Union(plans), est));
                }
                GroupItem::Optional(body) => optionals.push(self.compile_group(body)),
                GroupItem::Filter(e) => filters.push(e.clone()),
            }
        }
        let mut node = join_plan(join_children);
        for opt in optionals {
            let est = node.est.saturating_mul(opt.est.max(1));
            node = Plan::new(PlanOp::LeftJoin(Box::new(node), Box::new(opt)), est);
        }
        if !filters.is_empty() {
            let est = node.est;
            node = Plan::new(PlanOp::Filter(Box::new(node), filters), est);
        }
        node
    }

    fn scan_plan(&mut self, pattern: TriplePattern) -> Plan {
        let mut plan = Plan::new(
            PlanOp::Scan {
                pattern,
                subject_in: None,
                object_in: None,
                taxo_unfold: false,
            },
            0,
        );
        plan.est = self.scan_est(&plan.op);
        plan
    }

    /// Estimate one scan's output from stored-triple counts.
    fn scan_est(&mut self, op: &PlanOp) -> usize {
        let PlanOp::Scan {
            pattern,
            subject_in,
            object_in,
            ..
        } = op
        else {
            return 0;
        };
        let as_const = |t: &PatTerm| match t {
            PatTerm::Const(c) => Some(*c),
            PatTerm::Var(_) => None,
        };
        let s = as_const(&pattern.subject);
        let o = as_const(&pattern.object);
        let nelems = self.ontology.vocabulary().elements_order().len();
        let edge_count = |planner: &mut Self, r: RelationId, s: Option<Term>, o: Option<Term>| {
            let rels = planner.match_rels(r).to_vec();
            rels.iter()
                .map(|&rel| planner.ontology.store().count_matching(s, Some(rel), o))
                .sum::<usize>()
        };
        let mut est = match &pattern.path {
            PropPath::Rel(r) => edge_count(self, *r, s, o),
            PropPath::Plus(r) => edge_count(self, *r, None, None),
            PropPath::Star(r) | PropPath::Opt(r) => {
                edge_count(self, *r, None, None).saturating_add(nelems)
            }
            p @ (PropPath::Seq(_) | PropPath::Alt(_)) => {
                let mut total = 0usize;
                for r in p.relations() {
                    total = total.saturating_add(edge_count(self, r, None, None));
                }
                // Reflexive steps widen the reachable universe.
                fn has_reflexive(p: &PropPath) -> bool {
                    match p {
                        PropPath::Star(_) | PropPath::Opt(_) => true,
                        PropPath::Seq(ps) | PropPath::Alt(ps) => ps.iter().any(has_reflexive),
                        _ => false,
                    }
                }
                if has_reflexive(p) {
                    total = total.saturating_add(nelems);
                }
                total
            }
        };
        for list in [subject_in, object_in].into_iter().flatten() {
            est = est.min(list.len());
        }
        est
    }

    /// Whether a scan can emit *no* row, provably (exact counts, not
    /// estimates): an empty pushed-down value set, a plain edge pattern
    /// with no stored matches, or a `+` path over zero stored edges.
    fn scan_provably_empty(&mut self, op: &PlanOp) -> bool {
        let PlanOp::Scan {
            pattern,
            subject_in,
            object_in,
            ..
        } = op
        else {
            return false;
        };
        if subject_in.as_ref().is_some_and(Vec::is_empty)
            || object_in.as_ref().is_some_and(Vec::is_empty)
        {
            return true;
        }
        let as_const = |t: &PatTerm| match t {
            PatTerm::Const(c) => Some(*c),
            PatTerm::Var(_) => None,
        };
        match &pattern.path {
            PropPath::Rel(r) => {
                let rels = self.match_rels(*r).to_vec();
                let (s, o) = (as_const(&pattern.subject), as_const(&pattern.object));
                rels.iter()
                    .all(|&rel| self.ontology.store().count_matching(s, Some(rel), o) == 0)
            }
            PropPath::Plus(r) => {
                let rels = self.match_rels(*r).to_vec();
                rels.iter().all(|&rel| {
                    self.ontology.store().count_matching(None, Some(rel), None) == 0
                })
            }
            _ => false,
        }
    }

    // ---- optimize ------------------------------------------------------

    fn optimize_node(&mut self, plan: Plan, bound: &mut HashSet<Var>) -> Plan {
        match plan.op {
            PlanOp::Empty => plan,
            op @ PlanOp::Scan { .. } => self.optimize_scan(op),
            PlanOp::Join(children) => {
                let ordered = self.reorder(children, bound);
                let mut out = Vec::with_capacity(ordered.len());
                for c in ordered {
                    let c = self.optimize_node(c, bound);
                    if matches!(c.op, PlanOp::Empty) {
                        self.report.pruned += 1;
                        return Plan::new(PlanOp::Empty, 0);
                    }
                    out.push(c);
                }
                join_plan(out)
            }
            PlanOp::LeftJoin(l, r) => {
                let l = self.optimize_node(*l, bound);
                if matches!(l.op, PlanOp::Empty) {
                    self.report.pruned += 1;
                    return Plan::new(PlanOp::Empty, 0);
                }
                // The right side sees the left side's bindings.
                let r = self.optimize_node(*r, bound);
                if matches!(r.op, PlanOp::Empty) {
                    self.report.pruned += 1;
                    return l;
                }
                let est = l.est.saturating_mul(r.est.max(1));
                Plan::new(PlanOp::LeftJoin(Box::new(l), Box::new(r)), est)
            }
            PlanOp::Union(branches) => {
                let mut out = Vec::with_capacity(branches.len());
                for b in branches {
                    // Branches do not bind variables for one another.
                    let mut branch_bound = bound.clone();
                    let b = self.optimize_node(b, &mut branch_bound);
                    if matches!(b.op, PlanOp::Empty) {
                        self.report.pruned += 1;
                    } else {
                        out.push(b);
                    }
                }
                match out.len() {
                    0 => Plan::new(PlanOp::Empty, 0),
                    1 => out.pop().expect("len checked"),
                    _ => {
                        let est = out.iter().map(|p| p.est).sum();
                        // Union children still bind their variables for
                        // later join operands.
                        for b in &out {
                            bound.extend(b.vars());
                        }
                        Plan::new(PlanOp::Union(out), est)
                    }
                }
            }
            PlanOp::Filter(input, exprs) => {
                let mut input = *input;
                // Positive single-variable constraints narrow every scan
                // below the filter that mentions the variable.
                let constraints = value_constraints(&exprs);
                if !constraints.is_empty() {
                    self.push_values(&mut input, &constraints);
                }
                let input = self.optimize_node(input, bound);
                if matches!(input.op, PlanOp::Empty) {
                    self.report.pruned += 1;
                    return Plan::new(PlanOp::Empty, 0);
                }
                // Constant-fold variable-free expressions.
                let mut kept = Vec::with_capacity(exprs.len());
                for e in exprs {
                    if e.vars().is_empty() {
                        if e.eval(|_| None) {
                            continue; // statically true: drop
                        }
                        self.report.pruned += 1;
                        return Plan::new(PlanOp::Empty, 0);
                    }
                    kept.push(e);
                }
                if kept.is_empty() {
                    return input;
                }
                let est = input.est;
                Plan::new(PlanOp::Filter(Box::new(input), kept), est)
            }
            PlanOp::Project(input, vars) => {
                let input = self.optimize_node(*input, bound);
                if matches!(input.op, PlanOp::Empty) {
                    return Plan::new(PlanOp::Empty, 0);
                }
                let est = input.est;
                Plan::new(PlanOp::Project(Box::new(input), vars), est)
            }
            PlanOp::Distinct(input) => {
                let input = self.optimize_node(*input, bound);
                if matches!(input.op, PlanOp::Empty) {
                    return Plan::new(PlanOp::Empty, 0);
                }
                let est = input.est;
                Plan::new(PlanOp::Distinct(Box::new(input)), est)
            }
            PlanOp::Sort(input, keys) => {
                let input = self.optimize_node(*input, bound);
                if matches!(input.op, PlanOp::Empty) {
                    return Plan::new(PlanOp::Empty, 0);
                }
                let est = input.est;
                Plan::new(PlanOp::Sort(Box::new(input), keys), est)
            }
            PlanOp::Slice(input, offset, limit) => {
                let input = self.optimize_node(*input, bound);
                if matches!(input.op, PlanOp::Empty) {
                    return Plan::new(PlanOp::Empty, 0);
                }
                let est = limit.map_or(input.est, |l| {
                    input.est.min(usize::try_from(l).unwrap_or(usize::MAX))
                });
                Plan::new(PlanOp::Slice(Box::new(input), offset, limit), est)
            }
        }
    }

    fn optimize_scan(&mut self, mut op: PlanOp) -> Plan {
        if self.scan_provably_empty(&op) {
            self.report.pruned += 1;
            return Plan::new(PlanOp::Empty, 0);
        }
        if let PlanOp::Scan {
            pattern,
            taxo_unfold,
            ..
        } = &mut op
        {
            if let PropPath::Star(r) | PropPath::Plus(r) = pattern.path {
                if self.taxo_unfoldable(r) {
                    *taxo_unfold = true;
                    self.report.unfolds += 1;
                }
            }
        }
        let est = self.scan_est(&op);
        Plan::new(op, est)
    }

    /// Greedy most-selective-first ordering of join operands: most bound
    /// positions first, plain edges before paths, smaller estimates
    /// before larger — and, as the final tie-break, the operand's source
    /// position, making the chosen order a *total* one (byte-identical
    /// plans across runs, usable in sim replay oracles).
    fn reorder(&mut self, children: Vec<Plan>, bound: &mut HashSet<Var>) -> Vec<Plan> {
        let mut remaining: Vec<(usize, Plan)> = children.into_iter().enumerate().collect();
        let mut out = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let score = |(idx, p): &(usize, Plan)| -> (usize, usize, usize, usize) {
                match &p.op {
                    PlanOp::Scan { pattern, .. } => {
                        let pos_bound = |t: &PatTerm| match t {
                            PatTerm::Const(_) => true,
                            PatTerm::Var(v) => bound.contains(v),
                        };
                        let n_bound = pos_bound(&pattern.subject) as usize
                            + pos_bound(&pattern.object) as usize;
                        (2 - n_bound, pattern.path.is_path() as usize, p.est, *idx)
                    }
                    _ => {
                        let vars = p.vars();
                        let n_bound = vars.iter().filter(|v| bound.contains(v)).count().min(2);
                        (2 - n_bound, 1, p.est, *idx)
                    }
                }
            };
            let (i, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, c)| (i, score(c)))
                .min_by_key(|(_, s)| *s)
                .expect("remaining is non-empty");
            let (_, p) = remaining.remove(i);
            bound.extend(p.vars());
            out.push(p);
        }
        out
    }

    /// Intersect pushed-down value sets into every scan mentioning a
    /// constrained variable, anywhere below `plan`.
    fn push_values(&mut self, plan: &mut Plan, constraints: &HashMap<Var, Vec<Term>>) {
        match &mut plan.op {
            PlanOp::Empty => {}
            PlanOp::Scan {
                pattern,
                subject_in,
                object_in,
                ..
            } => {
                for (term, slot) in [
                    (&pattern.subject, &mut *subject_in),
                    (&pattern.object, &mut *object_in),
                ] {
                    let Some(v) = term.as_var() else { continue };
                    let Some(values) = constraints.get(&v) else {
                        continue;
                    };
                    let narrowed = match slot.take() {
                        None => values.clone(),
                        Some(prev) => prev.into_iter().filter(|t| values.contains(t)).collect(),
                    };
                    *slot = Some(narrowed);
                    self.report.pushdowns += 1;
                }
            }
            PlanOp::Join(cs) | PlanOp::Union(cs) => {
                cs.iter_mut().for_each(|c| self.push_values(c, constraints))
            }
            PlanOp::LeftJoin(l, r) => {
                self.push_values(l, constraints);
                self.push_values(r, constraints);
            }
            PlanOp::Filter(c, _)
            | PlanOp::Project(c, _)
            | PlanOp::Distinct(c)
            | PlanOp::Sort(c, _)
            | PlanOp::Slice(c, _, _) => self.push_values(c, constraints),
        }
    }

    /// Whether the stored edges matched by pattern relation `r` mirror the
    /// element taxonomy exactly (both directions), making taxonomy
    /// reachability a sound replacement for BFS over stored edges.
    fn taxo_unfoldable(&mut self, r: RelationId) -> bool {
        if let Some(&cached) = self.unfold_cache.get(&r) {
            return cached;
        }
        let rels = self.match_rels(r).to_vec();
        let vocab = self.ontology.vocabulary();
        let taxo = vocab.elements_order();
        let store = self.ontology.store();
        let mut ok = true;
        // (a) Every stored edge under the matched relations is a strict
        //     `≤E` step between elements.
        'stored: for &rel in &rels {
            for t in store.matching(None, Some(rel), None) {
                let (Some(s), Some(o)) = (t.subject.as_element(), t.object.as_element()) else {
                    ok = false;
                    break 'stored;
                };
                if !taxo.lt(o, s) {
                    ok = false;
                    break 'stored;
                }
            }
        }
        // (b) Every Hasse edge of `≤E` is stored under a matched relation,
        //     so every taxonomy-reachable pair is edge-reachable too.
        if ok {
            'hasse: for (e, _) in vocab.elements() {
                for &p in taxo.parents(e) {
                    let stored = rels.iter().any(|&rel| {
                        store.count_matching(
                            Some(Term::Element(e)),
                            Some(rel),
                            Some(Term::Element(p)),
                        ) > 0
                    });
                    if !stored {
                        ok = false;
                        break 'hasse;
                    }
                }
            }
        }
        self.unfold_cache.insert(r, ok);
        ok
    }
}

/// Wrap join operands, collapsing the single-child case.
fn join_plan(mut children: Vec<Plan>) -> Plan {
    match children.len() {
        1 => children.pop().expect("len checked"),
        _ => {
            let est = children
                .iter()
                .map(|p| p.est)
                .fold(1usize, usize::saturating_mul);
            let est = if children.is_empty() { 1 } else { est };
            Plan::new(PlanOp::Join(children), est)
        }
    }
}

/// Positive single-variable value sets implied by `exprs`
/// (`$x = c` and `$x IN (...)`; intersected when a variable repeats).
fn value_constraints(exprs: &[FilterExpr]) -> HashMap<Var, Vec<Term>> {
    let mut out: HashMap<Var, Vec<Term>> = HashMap::new();
    let mut add = |v: Var, values: Vec<Term>| match out.entry(v) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(values);
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            e.get_mut().retain(|t| values.contains(t));
        }
    };
    for e in exprs {
        match e {
            FilterExpr::Eq(FilterTerm::Var(v), FilterTerm::Const(c))
            | FilterExpr::Eq(FilterTerm::Const(c), FilterTerm::Var(v)) => add(*v, vec![*c]),
            FilterExpr::In(v, ts) => add(*v, ts.clone()),
            _ => {}
        }
    }
    out
}

// ---- EXPLAIN -----------------------------------------------------------

impl Plan {
    /// Render the plan as an indented operator tree with estimates —
    /// deterministic, human-readable, and stable across runs (the
    /// determinism oracle compares these strings byte-for-byte).
    pub fn explain(&self, ontology: &Ontology, vars: &VarTable) -> String {
        let mut out = String::new();
        self.explain_into(ontology, vars, 0, &mut out);
        out
    }

    fn explain_into(&self, o: &Ontology, vars: &VarTable, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let indent = "  ".repeat(depth);
        let term = |t: &PatTerm| render_pat_term(o, vars, t);
        match &self.op {
            PlanOp::Empty => {
                let _ = writeln!(out, "{indent}Empty");
            }
            PlanOp::Scan {
                pattern,
                subject_in,
                object_in,
                taxo_unfold,
            } => {
                let _ = write!(
                    out,
                    "{indent}Scan {} {} {}",
                    term(&pattern.subject),
                    render_path(o, &pattern.path),
                    term(&pattern.object)
                );
                if *taxo_unfold {
                    let _ = write!(out, " [taxo-unfold]");
                }
                for (label, list) in [("subject", subject_in), ("object", object_in)] {
                    if let Some(list) = list {
                        let names: Vec<String> =
                            list.iter().map(|t| render_term(o, t)).collect();
                        let _ = write!(out, " {label}∈{{{}}}", names.join(", "));
                    }
                }
                let _ = writeln!(out, " est={}", self.est);
            }
            PlanOp::Join(cs) => {
                let _ = writeln!(out, "{indent}Join est={}", self.est);
                cs.iter()
                    .for_each(|c| c.explain_into(o, vars, depth + 1, out));
            }
            PlanOp::LeftJoin(l, r) => {
                let _ = writeln!(out, "{indent}LeftJoin est={}", self.est);
                l.explain_into(o, vars, depth + 1, out);
                r.explain_into(o, vars, depth + 1, out);
            }
            PlanOp::Union(cs) => {
                let _ = writeln!(out, "{indent}Union est={}", self.est);
                cs.iter()
                    .for_each(|c| c.explain_into(o, vars, depth + 1, out));
            }
            PlanOp::Filter(c, exprs) => {
                let rendered: Vec<String> =
                    exprs.iter().map(|e| render_filter(o, vars, e)).collect();
                let _ = writeln!(out, "{indent}Filter {} est={}", rendered.join(" && "), self.est);
                c.explain_into(o, vars, depth + 1, out);
            }
            PlanOp::Project(c, keep) => {
                let names: Vec<String> =
                    keep.iter().map(|v| format!("${}", vars.name(*v))).collect();
                let _ = writeln!(out, "{indent}Project {} est={}", names.join(", "), self.est);
                c.explain_into(o, vars, depth + 1, out);
            }
            PlanOp::Distinct(c) => {
                let _ = writeln!(out, "{indent}Distinct est={}", self.est);
                c.explain_into(o, vars, depth + 1, out);
            }
            PlanOp::Sort(c, keys) => {
                let rendered: Vec<String> = keys
                    .iter()
                    .map(|(v, d)| {
                        format!(
                            "${}{}",
                            vars.name(*v),
                            if *d == SortDir::Desc { " DESC" } else { "" }
                        )
                    })
                    .collect();
                let _ = writeln!(out, "{indent}Sort {} est={}", rendered.join(", "), self.est);
                c.explain_into(o, vars, depth + 1, out);
            }
            PlanOp::Slice(c, offset, limit) => {
                let _ = write!(out, "{indent}Slice offset={offset}");
                if let Some(l) = limit {
                    let _ = write!(out, " limit={l}");
                }
                let _ = writeln!(out, " est={}", self.est);
                c.explain_into(o, vars, depth + 1, out);
            }
        }
    }
}

fn render_term(o: &Ontology, t: &Term) -> String {
    match t {
        Term::Element(e) => o.vocabulary().element_name(*e).to_owned(),
        Term::Literal(l) => format!("{:?}", o.literal_str(*l)),
    }
}

fn render_pat_term(o: &Ontology, vars: &VarTable, t: &PatTerm) -> String {
    match t {
        PatTerm::Var(v) => format!("${}", vars.name(*v)),
        PatTerm::Const(c) => render_term(o, c),
    }
}

fn render_path(o: &Ontology, p: &PropPath) -> String {
    let name = |r: &RelationId| o.vocabulary().relation_name(*r).to_owned();
    match p {
        PropPath::Rel(r) => name(r),
        PropPath::Star(r) => format!("{}*", name(r)),
        PropPath::Plus(r) => format!("{}+", name(r)),
        PropPath::Opt(r) => format!("{}?", name(r)),
        PropPath::Seq(ps) => ps
            .iter()
            .map(|p| render_path(o, p))
            .collect::<Vec<_>>()
            .join("/"),
        PropPath::Alt(ps) => ps
            .iter()
            .map(|p| render_path(o, p))
            .collect::<Vec<_>>()
            .join("|"),
    }
}

fn render_filter(o: &Ontology, vars: &VarTable, e: &FilterExpr) -> String {
    let ft = |t: &FilterTerm| match t {
        FilterTerm::Var(v) => format!("${}", vars.name(*v)),
        FilterTerm::Const(c) => render_term(o, c),
    };
    match e {
        FilterExpr::Eq(a, b) => format!("{} = {}", ft(a), ft(b)),
        FilterExpr::Ne(a, b) => format!("{} != {}", ft(a), ft(b)),
        FilterExpr::In(v, ts) => format!(
            "${} IN ({})",
            vars.name(*v),
            ts.iter().map(|t| render_term(o, t)).collect::<Vec<_>>().join(", ")
        ),
        FilterExpr::NotIn(v, ts) => format!(
            "${} NOT IN ({})",
            vars.name(*v),
            ts.iter().map(|t| render_term(o, t)).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_where;
    use oassis_store::ontology::figure1_ontology;

    fn planned(src: &str, mode: MatchMode) -> (Plan, PlanReport, VarTable, Ontology) {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let wc = parse_where(src, &o, &mut vars).unwrap();
        let compiled = compile(&o, &wc, mode);
        let (opt, report) = optimize_report(&o, compiled, mode);
        (opt, report, vars, o)
    }

    #[test]
    fn filter_pushdown_restricts_scans() {
        let (plan, report, vars, o) = planned(
            "$x inside NYC. FILTER($x IN (<Central Park>, <Bronx Zoo>))",
            MatchMode::Syntactic,
        );
        assert!(report.pushdowns >= 1, "{report:?}");
        let rendered = plan.explain(&o, &vars);
        assert!(rendered.contains("subject∈{"), "{rendered}");
        assert!(rendered.contains("Central Park"), "{rendered}");
    }

    #[test]
    fn taxonomy_unfold_requires_the_mirror() {
        // Semantic mode: subClassOf also matches instanceOf edges
        // (subClassOf ≤R instanceOf in Figure 1), so the stored edges
        // mirror `≤E` and the scan unfolds.
        let (_, report, _, _) = planned("$w subClassOf* Attraction", MatchMode::Semantic);
        assert_eq!(report.unfolds, 1, "{report:?}");
        // Syntactic mode: instanceOf Hasse edges are not matched by
        // subClassOf, the mirror check fails, BFS is kept.
        let (_, report, _, _) = planned("$w subClassOf* Attraction", MatchMode::Syntactic);
        assert_eq!(report.unfolds, 0, "{report:?}");
    }

    #[test]
    fn empty_scan_prunes_the_join() {
        // `NYC nearBy NYC` has no stored match in syntactic mode.
        let (plan, report, _, _) = planned(
            "$x inside NYC. NYC nearBy NYC",
            MatchMode::Syntactic,
        );
        assert!(report.pruned >= 1);
        assert!(matches!(plan.op, PlanOp::Empty), "{plan:?}");
    }

    #[test]
    fn empty_union_branch_is_dropped() {
        let (plan, report, vars, o) = planned(
            "{ $x instanceOf Park } UNION { NYC nearBy NYC }",
            MatchMode::Syntactic,
        );
        assert!(report.pruned >= 1);
        let rendered = plan.explain(&o, &vars);
        assert!(!rendered.contains("Union"), "single branch left:\n{rendered}");
    }

    #[test]
    fn join_order_is_deterministic_and_selective_first() {
        let src = r#"
            $y subClassOf* Activity.
            $x instanceOf $w.
            $x inside NYC.
            $w subClassOf* Attraction
        "#;
        let (p1, _, vars, o) = planned(src, MatchMode::Syntactic);
        let (p2, _, vars2, o2) = planned(src, MatchMode::Syntactic);
        let e1 = p1.explain(&o, &vars);
        assert_eq!(e1, p2.explain(&o2, &vars2), "byte-identical plans");
        // The constant-bound non-path scan comes first.
        let first_scan = e1.lines().find(|l| l.trim_start().starts_with("Scan")).unwrap();
        assert!(first_scan.contains("$x inside NYC"), "{e1}");
    }

    #[test]
    fn statically_false_filter_empties_the_plan() {
        let (plan, _, _, _) = planned(
            "$x inside NYC. FILTER(NYC = <Central Park>)",
            MatchMode::Syntactic,
        );
        assert!(matches!(plan.op, PlanOp::Empty));
        let (plan, _, _, _) = planned(
            "$x inside NYC. FILTER(NYC = NYC)",
            MatchMode::Syntactic,
        );
        assert!(!matches!(plan.op, PlanOp::Empty), "true filter dropped, plan kept");
    }

    #[test]
    fn node_count_and_vars() {
        let (plan, _, vars, _) = planned(
            "$x inside NYC. OPTIONAL { $x hasLabel \"child-friendly\" }",
            MatchMode::Syntactic,
        );
        assert!(plan.node_count() >= 3);
        let x = vars.get("x").unwrap();
        assert!(plan.vars().contains(&x));
    }
}
