//! Tokenizer shared by the SPARQL pattern parser and the OASSIS-QL parser.
//!
//! Names are bare identifiers (`Attraction`, `doAt`) or angle-bracketed when
//! they contain spaces or punctuation (`<Central Park>`, `<Maoz Veg.>`).
//! Variables are `$ident`; string literals are double-quoted; `[]` is the
//! blank term; `*`, `+`, `?` modify paths or multiplicities; `.` separates
//! patterns; `=` and numbers appear in `WITH SUPPORT = 0.4`; `{`/`}` delimit
//! explicit multiplicities and group graph patterns; `(`/`)`, `,` and `!=`
//! appear in `FILTER` expressions; `/` and `|` build property paths.

use crate::error::{Span, SparqlError};

/// A lexical token with its 1-based source line and byte span (for error
/// messages that can point back into the source text).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
    /// Byte range the token occupies in the source.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare or angle-bracketed name (also used for language keywords).
    Name(String),
    /// `$x` — a variable (payload excludes the sigil).
    Var(String),
    /// `"..."` — a string literal (payload excludes the quotes).
    Literal(String),
    /// `[]` — the blank / don't-care term.
    Blank,
    /// `.` — pattern separator.
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `=`
    Equals,
    /// `!=`
    NotEquals,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `/` — property-path sequence.
    Slash,
    /// `|` — property-path alternation.
    Pipe,
    /// `,` — list separator inside `FILTER (... IN (a, b))`.
    Comma,
    /// An unsigned decimal number, kept as text (`0.4`, `12`).
    Number(String),
}

impl TokenKind {
    /// The name payload, if this token is a name.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            TokenKind::Name(n) => Some(n),
            _ => None,
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize `src`. Comments run from `#` to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SparqlError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.char_indices().peekable();
    // Byte offset at the cursor (== src.len() when exhausted).
    macro_rules! at {
        () => {
            chars.peek().map_or(src.len(), |&(i, _)| i)
        };
    }
    while let Some(&(start, c)) = chars.peek() {
        // Single-character punctuation shares one emission path.
        let mut punct = |kind: TokenKind, chars: &mut std::iter::Peekable<std::str::CharIndices>| {
            chars.next();
            let end = chars.peek().map_or(src.len(), |&(i, _)| i);
            out.push(Token {
                kind,
                line,
                span: Span::new(start, end),
            });
        };
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '$' => {
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_name_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(SparqlError::Lex {
                        line,
                        span: Span::new(start, at!()),
                        msg: "expected variable name after `$`".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Var(name),
                    line,
                    span: Span::new(start, at!()),
                });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(SparqlError::Lex {
                        line,
                        span: Span::new(start, at!()),
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Literal(s),
                    line,
                    span: Span::new(start, at!()),
                });
            }
            '<' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == '>' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed || s.trim().is_empty() {
                    return Err(SparqlError::Lex {
                        line,
                        span: Span::new(start, at!()),
                        msg: "unterminated or empty `<...>` name".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Name(s.trim().to_owned()),
                    line,
                    span: Span::new(start, at!()),
                });
            }
            '[' => {
                chars.next();
                if chars.next().map(|(_, c)| c) != Some(']') {
                    return Err(SparqlError::Lex {
                        line,
                        span: Span::new(start, at!()),
                        msg: "expected `]` after `[`".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Blank,
                    line,
                    span: Span::new(start, at!()),
                });
            }
            '!' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::NotEquals,
                        line,
                        span: Span::new(start, at!()),
                    });
                } else {
                    return Err(SparqlError::Lex {
                        line,
                        span: Span::new(start, at!()),
                        msg: "expected `=` after `!`".into(),
                    });
                }
            }
            '.' => punct(TokenKind::Dot, &mut chars),
            '*' => punct(TokenKind::Star, &mut chars),
            '+' => punct(TokenKind::Plus, &mut chars),
            '?' => punct(TokenKind::Question, &mut chars),
            '=' => punct(TokenKind::Equals, &mut chars),
            '{' => punct(TokenKind::LBrace, &mut chars),
            '}' => punct(TokenKind::RBrace, &mut chars),
            '(' => punct(TokenKind::LParen, &mut chars),
            ')' => punct(TokenKind::RParen, &mut chars),
            '/' => punct(TokenKind::Slash, &mut chars),
            '|' => punct(TokenKind::Pipe, &mut chars),
            ',' => punct(TokenKind::Comma, &mut chars),
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // A fractional part: only consume the `.` if a digit follows,
                // so `5.` still lexes as number-then-separator.
                let mut look = chars.clone();
                if look.next().map(|(_, c)| c) == Some('.') {
                    if let Some((_, d)) = look.next() {
                        if d.is_ascii_digit() {
                            s.push('.');
                            chars.next();
                            while let Some(&(_, c)) = chars.peek() {
                                if c.is_ascii_digit() {
                                    s.push(c);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Number(s),
                    line,
                    span: Span::new(start, at!()),
                });
            }
            c if is_name_char(c) => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_name_char(c) {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Name(s),
                    line,
                    span: Span::new(start, at!()),
                });
            }
            other => {
                return Err(SparqlError::Lex {
                    line,
                    span: Span::new(start, start + other.len_utf8()),
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_pattern_line() {
        use TokenKind::*;
        assert_eq!(
            kinds("$w subClassOf* Attraction."),
            vec![
                Var("w".into()),
                Name("subClassOf".into()),
                Star,
                Name("Attraction".into()),
                Dot
            ]
        );
    }

    #[test]
    fn angle_names_and_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"$x hasLabel "child-friendly". <Maoz Veg.> nearBy $x"#),
            vec![
                Var("x".into()),
                Name("hasLabel".into()),
                Literal("child-friendly".into()),
                Dot,
                Name("Maoz Veg.".into()),
                Name("nearBy".into()),
                Var("x".into()),
            ]
        );
    }

    #[test]
    fn blank_and_multiplicity_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("$y+ doAt $x. [] eatAt $z"),
            vec![
                Var("y".into()),
                Plus,
                Name("doAt".into()),
                Var("x".into()),
                Dot,
                Blank,
                Name("eatAt".into()),
                Var("z".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_equals() {
        use TokenKind::*;
        assert_eq!(
            kinds("WITH SUPPORT = 0.4"),
            vec![
                Name("WITH".into()),
                Name("SUPPORT".into()),
                Equals,
                Number("0.4".into())
            ]
        );
        assert_eq!(kinds("{2}"), vec![LBrace, Number("2".into()), RBrace]);
    }

    #[test]
    fn filter_and_path_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("FILTER($x != Biking). $a inside/nearBy|doAt $b"),
            vec![
                Name("FILTER".into()),
                LParen,
                Var("x".into()),
                NotEquals,
                Name("Biking".into()),
                RParen,
                Dot,
                Var("a".into()),
                Name("inside".into()),
                Slash,
                Name("nearBy".into()),
                Pipe,
                Name("doAt".into()),
                Var("b".into()),
            ]
        );
        assert_eq!(
            kinds("IN (NYC, Park)"),
            vec![
                Name("IN".into()),
                LParen,
                Name("NYC".into()),
                Comma,
                Name("Park".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_separator() {
        use TokenKind::*;
        assert_eq!(
            kinds("5. x"),
            vec![Number("5".into()), Dot, Name("x".into())]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("# hi\n$x doAt $y\n$z").unwrap();
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn byte_spans_point_into_the_source() {
        let src = "$x doAt <Central Park>";
        let toks = tokenize(src).unwrap();
        assert_eq!(&src[toks[0].span.start..toks[0].span.end], "$x");
        assert_eq!(&src[toks[1].span.start..toks[1].span.end], "doAt");
        assert_eq!(
            &src[toks[2].span.start..toks[2].span.end],
            "<Central Park>"
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("$ x").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("<unclosed").is_err());
        assert!(tokenize("[x]").is_err());
        assert!(tokenize("%").is_err());
        assert!(tokenize("<  >").is_err());
        assert!(tokenize("! x").is_err(), "lone `!` is not a token");
    }
}
