//! Tokenizer shared by the SPARQL pattern parser and the OASSIS-QL parser.
//!
//! Names are bare identifiers (`Attraction`, `doAt`) or angle-bracketed when
//! they contain spaces or punctuation (`<Central Park>`, `<Maoz Veg.>`).
//! Variables are `$ident`; string literals are double-quoted; `[]` is the
//! blank term; `*`, `+`, `?` modify paths or multiplicities; `.` separates
//! patterns; `=` and numbers appear in `WITH SUPPORT = 0.4`; `{`/`}` delimit
//! explicit multiplicities.

use crate::error::SparqlError;

/// A lexical token with its 1-based source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare or angle-bracketed name (also used for language keywords).
    Name(String),
    /// `$x` — a variable (payload excludes the sigil).
    Var(String),
    /// `"..."` — a string literal (payload excludes the quotes).
    Literal(String),
    /// `[]` — the blank / don't-care term.
    Blank,
    /// `.` — pattern separator.
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `=`
    Equals,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// An unsigned decimal number, kept as text (`0.4`, `12`).
    Number(String),
}

impl TokenKind {
    /// The name payload, if this token is a name.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            TokenKind::Name(n) => Some(n),
            _ => None,
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize `src`. Comments run from `#` to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SparqlError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '$' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_name_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(SparqlError::Lex {
                        line,
                        msg: "expected variable name after `$`".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Var(name),
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(SparqlError::Lex {
                        line,
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Literal(s),
                    line,
                });
            }
            '<' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '>' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed || s.trim().is_empty() {
                    return Err(SparqlError::Lex {
                        line,
                        msg: "unterminated or empty `<...>` name".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Name(s.trim().to_owned()),
                    line,
                });
            }
            '[' => {
                chars.next();
                if chars.next() != Some(']') {
                    return Err(SparqlError::Lex {
                        line,
                        msg: "expected `]` after `[`".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Blank,
                    line,
                });
            }
            '.' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
            }
            '*' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
            }
            '+' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
            }
            '?' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Question,
                    line,
                });
            }
            '=' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
            }
            '{' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // A fractional part: only consume the `.` if a digit follows,
                // so `5.` still lexes as number-then-separator.
                let mut look = chars.clone();
                if look.next() == Some('.') {
                    if let Some(d) = look.next() {
                        if d.is_ascii_digit() {
                            s.push('.');
                            chars.next();
                            while let Some(&c) = chars.peek() {
                                if c.is_ascii_digit() {
                                    s.push(c);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Number(s),
                    line,
                });
            }
            c if is_name_char(c) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if is_name_char(c) {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Name(s),
                    line,
                });
            }
            other => {
                return Err(SparqlError::Lex {
                    line,
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_pattern_line() {
        use TokenKind::*;
        assert_eq!(
            kinds("$w subClassOf* Attraction."),
            vec![
                Var("w".into()),
                Name("subClassOf".into()),
                Star,
                Name("Attraction".into()),
                Dot
            ]
        );
    }

    #[test]
    fn angle_names_and_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"$x hasLabel "child-friendly". <Maoz Veg.> nearBy $x"#),
            vec![
                Var("x".into()),
                Name("hasLabel".into()),
                Literal("child-friendly".into()),
                Dot,
                Name("Maoz Veg.".into()),
                Name("nearBy".into()),
                Var("x".into()),
            ]
        );
    }

    #[test]
    fn blank_and_multiplicity_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("$y+ doAt $x. [] eatAt $z"),
            vec![
                Var("y".into()),
                Plus,
                Name("doAt".into()),
                Var("x".into()),
                Dot,
                Blank,
                Name("eatAt".into()),
                Var("z".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_equals() {
        use TokenKind::*;
        assert_eq!(
            kinds("WITH SUPPORT = 0.4"),
            vec![
                Name("WITH".into()),
                Name("SUPPORT".into()),
                Equals,
                Number("0.4".into())
            ]
        );
        assert_eq!(kinds("{2}"), vec![LBrace, Number("2".into()), RBrace]);
    }

    #[test]
    fn integer_followed_by_dot_separator() {
        use TokenKind::*;
        assert_eq!(
            kinds("5. x"),
            vec![Number("5".into()), Dot, Name("x".into())]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("# hi\n$x doAt $y\n$z").unwrap();
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("$ x").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("<unclosed").is_err());
        assert!(tokenize("[x]").is_err());
        assert!(tokenize("%").is_err());
        assert!(tokenize("<  >").is_err());
    }
}
