//! Error type for SPARQL lexing, parsing and evaluation.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
///
/// Every lexer/parser error carries one, so callers can underline the
/// offending token instead of hunting by line number alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at`.
    pub fn at(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// Errors raised by the SPARQL subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlError {
    /// Tokenizer error.
    Lex {
        /// 1-based line.
        line: usize,
        /// Byte range of the offending text.
        span: Span,
        /// Description.
        msg: String,
    },
    /// Parser error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Byte range of the offending token.
        span: Span,
        /// Description.
        msg: String,
    },
    /// A name did not resolve against the ontology's vocabulary.
    UnknownName {
        /// 1-based line.
        line: usize,
        /// Byte range of the unresolved name.
        span: Span,
        /// The unresolved name.
        name: String,
        /// What kind of name was expected (element/relation/literal).
        expected: &'static str,
    },
    /// A `FILTER` references a variable no triple pattern in its group
    /// binds. The name is the variable's *source* name, not its dense id.
    UnboundFilterVar {
        /// 1-based line.
        line: usize,
        /// Byte range of the variable reference.
        span: Span,
        /// The variable's original name (without the `$` sigil).
        name: String,
    },
}

impl SparqlError {
    /// The byte range this error points at.
    pub fn span(&self) -> Span {
        match self {
            SparqlError::Lex { span, .. }
            | SparqlError::Parse { span, .. }
            | SparqlError::UnknownName { span, .. }
            | SparqlError::UnboundFilterVar { span, .. } => *span,
        }
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { line, span, msg } => {
                write!(f, "lex error at line {line} ({span}): {msg}")
            }
            SparqlError::Parse { line, span, msg } => {
                write!(f, "parse error at line {line} ({span}): {msg}")
            }
            SparqlError::UnknownName {
                line,
                span,
                name,
                expected,
            } => write!(f, "unknown {expected} {name:?} at line {line} ({span})"),
            SparqlError::UnboundFilterVar { line, span, name } => write!(
                f,
                "FILTER references ${name} at line {line} ({span}), but no \
                 triple pattern in its group binds ${name}"
            ),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SparqlError::UnknownName {
            line: 4,
            span: Span::new(10, 16),
            name: "Skiing".into(),
            expected: "element",
        };
        assert!(e.to_string().contains("Skiing"));
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("bytes 10..16"));
    }

    #[test]
    fn unbound_filter_var_names_the_variable() {
        let e = SparqlError::UnboundFilterVar {
            line: 2,
            span: Span::new(7, 12),
            name: "whom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("$whom"), "{s}");
        assert!(s.contains("bytes 7..12"), "{s}");
        assert_eq!(e.span(), Span::new(7, 12));
    }

    #[test]
    fn span_helpers() {
        let s = Span::new(3, 8);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Span::at(4).is_empty());
    }
}
