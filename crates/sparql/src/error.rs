//! Error type for SPARQL lexing, parsing and evaluation.

use std::fmt;

/// Errors raised by the SPARQL subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlError {
    /// Tokenizer error.
    Lex {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Parser error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// A name did not resolve against the ontology's vocabulary.
    UnknownName {
        /// 1-based line.
        line: usize,
        /// The unresolved name.
        name: String,
        /// What kind of name was expected (element/relation/literal).
        expected: &'static str,
    },
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            SparqlError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparqlError::UnknownName {
                line,
                name,
                expected,
            } => write!(f, "unknown {expected} {name:?} at line {line}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SparqlError::UnknownName {
            line: 4,
            name: "Skiing".into(),
            expected: "element",
        };
        assert!(e.to_string().contains("Skiing"));
        assert!(e.to_string().contains("line 4"));
    }
}
