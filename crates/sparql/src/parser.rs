//! Parser for basic graph patterns (the body of a WHERE clause).
//!
//! Grammar (one pattern per `.`-separated statement; final `.` optional):
//!
//! ```text
//! patterns := pattern (DOT pattern)* DOT?
//! pattern  := term path term
//! term     := VAR | NAME | LITERAL | '[]'
//! path     := NAME ('*' | '+')?
//! ```
//!
//! Names resolve against the ontology at parse time: subjects/objects to
//! elements (or literals when quoted), paths to relations. The blank `[]`
//! becomes a fresh anonymous variable.

use oassis_store::Ontology;

use crate::ast::{PatTerm, PropPath, TriplePattern, VarTable};
use crate::error::SparqlError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a WHERE-style pattern block into triple patterns.
///
/// `vars` is shared so OASSIS-QL can parse its WHERE and SATISFYING clauses
/// against a single variable namespace.
pub fn parse_patterns(
    src: &str,
    ontology: &Ontology,
    vars: &mut VarTable,
) -> Result<Vec<TriplePattern>, SparqlError> {
    let tokens = tokenize(src)?;
    let mut p = PatternParser {
        tokens: &tokens,
        pos: 0,
        ontology,
    };
    p.patterns(vars)
}

/// Cursor-based pattern parser over a token slice.
///
/// Exposed (doc-hidden) so the OASSIS-QL parser can reuse the WHERE-clause
/// grammar over its own token stream.
#[doc(hidden)]
pub struct PatternParser<'a> {
    /// The full token stream.
    pub tokens: &'a [Token],
    /// Current cursor.
    pub pos: usize,
    /// Ontology used for name resolution.
    pub ontology: &'a Ontology,
}

impl<'a> PatternParser<'a> {
    /// Peek the current token.
    pub fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    /// Consume and return the current token.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    /// Line number at the cursor (for error messages).
    pub fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    /// Parse `pattern (DOT pattern)* DOT?` until end of tokens.
    pub fn patterns(&mut self, vars: &mut VarTable) -> Result<Vec<TriplePattern>, SparqlError> {
        let mut out = Vec::new();
        loop {
            if self.peek().is_none() {
                break;
            }
            out.push(self.pattern(vars)?);
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Dot) => {
                    self.next();
                }
                None => break,
                Some(_) => {
                    return Err(SparqlError::Parse {
                        line: self.line(),
                        msg: "expected `.` between patterns".into(),
                    });
                }
            }
        }
        Ok(out)
    }

    pub fn pattern(&mut self, vars: &mut VarTable) -> Result<TriplePattern, SparqlError> {
        let subject = self.term(vars, "subject")?;
        let path = self.path()?;
        let object = self.term(vars, "object")?;
        Ok(TriplePattern::new(subject, path, object))
    }

    pub fn term(
        &mut self,
        vars: &mut VarTable,
        position: &'static str,
    ) -> Result<PatTerm, SparqlError> {
        let line = self.line();
        match self.next().map(|t| &t.kind) {
            Some(TokenKind::Var(name)) => Ok(PatTerm::Var(vars.var(name))),
            Some(TokenKind::Blank) => Ok(PatTerm::Var(vars.fresh("blank"))),
            Some(TokenKind::Name(name)) => {
                let e = self.ontology.vocabulary().element(name).ok_or_else(|| {
                    SparqlError::UnknownName {
                        line,
                        name: name.clone(),
                        expected: "element",
                    }
                })?;
                Ok(PatTerm::Const(e.into()))
            }
            Some(TokenKind::Literal(s)) => {
                let l = self
                    .ontology
                    .literal(s)
                    .ok_or_else(|| SparqlError::UnknownName {
                        line,
                        name: s.clone(),
                        expected: "literal",
                    })?;
                Ok(PatTerm::Const(l.into()))
            }
            other => Err(SparqlError::Parse {
                line,
                msg: format!("expected {position} term, got {other:?}"),
            }),
        }
    }

    pub fn path(&mut self) -> Result<PropPath, SparqlError> {
        let line = self.line();
        let Some(TokenKind::Name(name)) = self.next().map(|t| &t.kind) else {
            return Err(SparqlError::Parse {
                line,
                msg: "expected relation name".into(),
            });
        };
        let rel =
            self.ontology
                .vocabulary()
                .relation(name)
                .ok_or_else(|| SparqlError::UnknownName {
                    line,
                    name: name.clone(),
                    expected: "relation",
                })?;
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Star) => {
                self.next();
                Ok(PropPath::Star(rel))
            }
            Some(TokenKind::Plus) => {
                self.next();
                Ok(PropPath::Plus(rel))
            }
            _ => Ok(PropPath::Rel(rel)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn parses_the_running_example_where_clause() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let src = r#"
            $w subClassOf* Attraction.
            $x instanceOf $w.
            $x inside NYC.
            $x hasLabel "child-friendly".
            $y subClassOf* Activity .
            $z instanceOf Restaurant.
            $z nearBy $x
        "#;
        let pats = parse_patterns(src, &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 7);
        assert_eq!(vars.len(), 4);
        assert!(matches!(pats[0].path, PropPath::Star(_)));
        assert!(matches!(pats[1].path, PropPath::Rel(_)));
        // `$x inside NYC` resolves NYC as a constant element.
        assert!(matches!(pats[2].object, PatTerm::Const(_)));
        // `$x hasLabel "child-friendly"` resolves the literal.
        assert!(matches!(pats[3].object, PatTerm::Const(t) if t.as_literal().is_some()));
    }

    #[test]
    fn blank_allocates_fresh_vars() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns("[] eatAt $z. [] eatAt $z", &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 2);
        let b1 = pats[0].subject.as_var().unwrap();
        let b2 = pats[1].subject.as_var().unwrap();
        assert_ne!(b1, b2, "each [] is a distinct variable");
        assert!(vars.is_anon(b1));
    }

    #[test]
    fn trailing_dot_is_optional() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert_eq!(
            parse_patterns("$x inside NYC.", &o, &mut vars)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            parse_patterns("$x inside NYC", &o, &mut vars)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn unknown_names_are_reported_with_kind() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let err = parse_patterns("$x inside Gotham", &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "element",
                ..
            }
        ));
        let err = parse_patterns("$x orbits NYC", &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "relation",
                ..
            }
        ));
        let err = parse_patterns(r#"$x hasLabel "spooky""#, &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "literal",
                ..
            }
        ));
    }

    #[test]
    fn missing_separator_is_an_error() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert!(parse_patterns("$x inside NYC $y inside NYC", &o, &mut vars).is_err());
    }

    #[test]
    fn empty_input_is_empty_patterns() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert!(parse_patterns("  # nothing\n", &o, &mut vars)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn angle_bracket_names_resolve() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns("<Maoz Veg.> nearBy <Central Park>", &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 1);
        assert!(matches!(pats[0].subject, PatTerm::Const(_)));
    }
}
