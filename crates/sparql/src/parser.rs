//! Parser for graph patterns (the body of a WHERE clause).
//!
//! Grammar (keywords are uppercase; element names that collide must be
//! written in `<angle brackets>`):
//!
//! ```text
//! where     := group modifier*
//! group     := item*
//! item      := triple DOT?                 -- DOT required *between* triples
//!            | OPTIONAL '{' group '}' DOT?
//!            | '{' group '}' (UNION '{' group '}')* DOT?
//!            | FILTER '(' filter ')' DOT?
//! triple    := term path term
//! term      := VAR | NAME | LITERAL | '[]'
//! path      := seq ('|' seq)*             -- '/' binds tighter than '|'
//! seq       := step ('/' step)*
//! step      := NAME ('*' | '+' | '?')?
//! filter    := operand '=' operand | operand '!=' operand
//!            | VAR IN '(' const (',' const)* ')'
//!            | VAR NOT IN '(' const (',' const)* ')'
//! operand   := VAR | NAME | LITERAL
//! modifier  := DISTINCT
//!            | ORDER BY (VAR (ASC | DESC)?)+
//!            | LIMIT INT | OFFSET INT
//! ```
//!
//! Names resolve against the ontology at parse time: subjects/objects to
//! elements (or literals when quoted), paths to relations. The blank `[]`
//! becomes a fresh anonymous variable. `FILTER` variables must be bound by
//! a triple pattern inside the filter's own group (including its nested
//! `OPTIONAL`/`UNION` bodies) — referencing an outer variable is an error,
//! which keeps filter semantics identical under compositional and
//! substitution-based evaluation.

use std::collections::HashSet;

use oassis_store::Ontology;

use crate::ast::{
    FilterExpr, FilterTerm, GraphPattern, GroupItem, PatTerm, PropPath, SortDir, TriplePattern,
    Var, VarTable, WhereClause,
};
use crate::error::{Span, SparqlError};
use crate::lexer::{tokenize, Token, TokenKind};

/// Keywords that may open a non-triple item or a solution modifier inside a
/// WHERE clause.
pub const WHERE_KEYWORDS: &[&str] = &[
    "OPTIONAL", "UNION", "FILTER", "DISTINCT", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET",
    "IN", "NOT",
];

fn is_modifier_start(name: &str) -> bool {
    matches!(name, "DISTINCT" | "ORDER" | "LIMIT" | "OFFSET")
}

/// Parse a WHERE-style pattern block into plain triple patterns.
///
/// This is the pre-algebra entry point: the block must be a bare basic
/// graph pattern (no `UNION`/`OPTIONAL`/`FILTER`, no modifiers). Use
/// [`parse_where`] for the full grammar. `vars` is shared so OASSIS-QL can
/// parse its WHERE and SATISFYING clauses against a single variable
/// namespace.
pub fn parse_patterns(
    src: &str,
    ontology: &Ontology,
    vars: &mut VarTable,
) -> Result<Vec<TriplePattern>, SparqlError> {
    let tokens = tokenize(src)?;
    let mut p = PatternParser {
        tokens: &tokens,
        pos: 0,
        ontology,
    };
    p.patterns(vars)
}

/// Parse a full WHERE clause: group graph pattern plus solution modifiers.
pub fn parse_where(
    src: &str,
    ontology: &Ontology,
    vars: &mut VarTable,
) -> Result<WhereClause, SparqlError> {
    let tokens = tokenize(src)?;
    let mut p = PatternParser {
        tokens: &tokens,
        pos: 0,
        ontology,
    };
    let clause = p.where_clause(vars)?;
    if let Some(t) = p.peek() {
        return Err(SparqlError::Parse {
            line: t.line,
            span: t.span,
            msg: format!("unexpected trailing token {:?}", t.kind),
        });
    }
    Ok(clause)
}

/// Cursor-based pattern parser over a token slice.
///
/// Exposed (doc-hidden) so the OASSIS-QL parser can reuse the WHERE-clause
/// grammar over its own token stream.
#[doc(hidden)]
pub struct PatternParser<'a> {
    /// The full token stream.
    pub tokens: &'a [Token],
    /// Current cursor.
    pub pos: usize,
    /// Ontology used for name resolution.
    pub ontology: &'a Ontology,
}

impl<'a> PatternParser<'a> {
    /// Peek the current token.
    pub fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    /// Consume and return the current token.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    /// Line number at the cursor (for error messages).
    pub fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    /// Byte span at the cursor (the current token's, or the last one's end).
    pub fn span(&self) -> Span {
        match self.tokens.get(self.pos) {
            Some(t) => t.span,
            None => self
                .tokens
                .last()
                .map_or(Span::at(0), |t| Span::at(t.span.end)),
        }
    }

    fn err(&self, msg: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            line: self.line(),
            span: self.span(),
            msg: msg.into(),
        }
    }

    fn at_name(&self, name: &str) -> bool {
        matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Name(n)) if n == name)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), SparqlError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {what}, got {:?}",
                self.peek().map(|t| &t.kind)
            )))
        }
    }

    /// Parse `pattern (DOT pattern)* DOT?` until end of tokens — the bare
    /// basic-graph-pattern grammar, with no algebra items or modifiers.
    pub fn patterns(&mut self, vars: &mut VarTable) -> Result<Vec<TriplePattern>, SparqlError> {
        let mut out = Vec::new();
        loop {
            if self.peek().is_none() {
                break;
            }
            out.push(self.pattern(vars)?);
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Dot) => {
                    self.next();
                }
                None => break,
                Some(_) => {
                    return Err(self.err("expected `.` between patterns"));
                }
            }
        }
        Ok(out)
    }

    /// Parse a full WHERE clause (top-level group + modifiers), stopping at
    /// end of tokens.
    pub fn where_clause(&mut self, vars: &mut VarTable) -> Result<WhereClause, SparqlError> {
        let pattern = self.group(vars, true)?;
        let mut clause = WhereClause {
            pattern,
            ..WhereClause::default()
        };
        let mut seen: HashSet<&'static str> = HashSet::new();
        loop {
            let which = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Name(n)) if is_modifier_start(n) => n.clone(),
                _ => break,
            };
            let key: &'static str = match which.as_str() {
                "DISTINCT" => "DISTINCT",
                "ORDER" => "ORDER BY",
                "LIMIT" => "LIMIT",
                _ => "OFFSET",
            };
            if !seen.insert(key) {
                return Err(self.err(format!("duplicate {key} modifier")));
            }
            self.next();
            match key {
                "DISTINCT" => clause.distinct = true,
                "ORDER BY" => {
                    if !self.at_name("BY") {
                        return Err(self.err("expected BY after ORDER"));
                    }
                    self.next();
                    while let Some(TokenKind::Var(name)) = self.peek().map(|t| &t.kind) {
                        let v = vars.var(name);
                        self.next();
                        let dir = if self.at_name("DESC") {
                            self.next();
                            SortDir::Desc
                        } else {
                            if self.at_name("ASC") {
                                self.next();
                            }
                            SortDir::Asc
                        };
                        clause.order_by.push((v, dir));
                    }
                    if clause.order_by.is_empty() {
                        return Err(self.err("ORDER BY needs at least one `$var` key"));
                    }
                }
                "LIMIT" => clause.limit = Some(self.unsigned("LIMIT")?),
                _ => clause.offset = self.unsigned("OFFSET")?,
            }
        }
        Ok(clause)
    }

    /// Parse an unsigned integer argument for `LIMIT`/`OFFSET`.
    fn unsigned(&mut self, what: &str) -> Result<u64, SparqlError> {
        match self.next().map(|t| &t.kind) {
            Some(TokenKind::Number(n)) if !n.contains('.') => n
                .parse::<u64>()
                .map_err(|e| self.err(format!("bad {what} value {n:?}: {e}"))),
            other => Err(self.err(format!("expected integer after {what}, got {other:?}"))),
        }
    }

    /// Parse a group graph pattern. At top level (`top`), the group ends at
    /// end-of-tokens or at a solution-modifier keyword; nested groups end
    /// at `}` (left for the caller to consume).
    fn group(&mut self, vars: &mut VarTable, top: bool) -> Result<GraphPattern, SparqlError> {
        let mut items = Vec::new();
        // Variable references made by FILTERs in this group, to check
        // against the group's bound variables once it is fully parsed.
        let mut filter_refs: Vec<(Var, String, usize, Span)> = Vec::new();
        loop {
            match self.peek().map(|t| &t.kind) {
                None => {
                    if top {
                        break;
                    }
                    return Err(self.err("expected `}` to close group"));
                }
                Some(TokenKind::RBrace) if !top => break,
                Some(TokenKind::Name(n)) if n == "OPTIONAL" => {
                    self.next();
                    self.expect(TokenKind::LBrace, "`{` after OPTIONAL")?;
                    let g = self.group(vars, false)?;
                    self.expect(TokenKind::RBrace, "`}` closing OPTIONAL group")?;
                    items.push(GroupItem::Optional(g));
                    self.eat(&TokenKind::Dot);
                }
                Some(TokenKind::Name(n)) if n == "FILTER" => {
                    self.next();
                    self.expect(TokenKind::LParen, "`(` after FILTER")?;
                    let expr = self.filter_expr(vars, &mut filter_refs)?;
                    self.expect(TokenKind::RParen, "`)` closing FILTER")?;
                    items.push(GroupItem::Filter(expr));
                    self.eat(&TokenKind::Dot);
                }
                Some(TokenKind::LBrace) => {
                    let mut branches = Vec::new();
                    loop {
                        self.expect(TokenKind::LBrace, "`{` opening group")?;
                        branches.push(self.group(vars, false)?);
                        self.expect(TokenKind::RBrace, "`}` closing group")?;
                        if self.at_name("UNION") {
                            self.next();
                        } else {
                            break;
                        }
                    }
                    items.push(GroupItem::Union(branches));
                    self.eat(&TokenKind::Dot);
                }
                Some(TokenKind::Name(n)) if top && is_modifier_start(n) => break,
                _ => {
                    items.push(GroupItem::Triple(self.pattern(vars)?));
                    // A `.` is required between a triple and whatever item
                    // follows; it is optional before the end of the group
                    // or the modifier tail.
                    match self.peek().map(|t| &t.kind) {
                        Some(TokenKind::Dot) => {
                            self.next();
                        }
                        None if top => break,
                        Some(TokenKind::RBrace) if !top => break,
                        Some(TokenKind::Name(n)) if top && is_modifier_start(n) => break,
                        _ => return Err(self.err("expected `.` between patterns")),
                    }
                }
            }
        }
        let pattern = GraphPattern { items };
        // FILTER scope check: every referenced variable must be bound by a
        // triple somewhere inside this very group.
        let bound: HashSet<Var> = pattern.vars().into_iter().collect();
        if let Some((_, name, line, span)) =
            filter_refs.into_iter().find(|(v, ..)| !bound.contains(v))
        {
            return Err(SparqlError::UnboundFilterVar { line, span, name });
        }
        Ok(pattern)
    }

    /// One `FILTER(...)` body.
    fn filter_expr(
        &mut self,
        vars: &mut VarTable,
        refs: &mut Vec<(Var, String, usize, Span)>,
    ) -> Result<FilterExpr, SparqlError> {
        let left_span = self.span();
        let left_line = self.line();
        let left = self.filter_operand(vars, refs)?;
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Equals) => {
                self.next();
                let right = self.filter_operand(vars, refs)?;
                Ok(FilterExpr::Eq(left, right))
            }
            Some(TokenKind::NotEquals) => {
                self.next();
                let right = self.filter_operand(vars, refs)?;
                Ok(FilterExpr::Ne(left, right))
            }
            Some(TokenKind::Name(n)) if n == "IN" || n == "NOT" => {
                let negated = n == "NOT";
                self.next();
                if negated {
                    if !self.at_name("IN") {
                        return Err(self.err("expected IN after NOT"));
                    }
                    self.next();
                }
                let Some(v) = left.as_var() else {
                    return Err(SparqlError::Parse {
                        line: left_line,
                        span: left_span,
                        msg: "IN / NOT IN requires a `$variable` on the left".into(),
                    });
                };
                self.expect(TokenKind::LParen, "`(` opening IN list")?;
                let mut terms = Vec::new();
                loop {
                    match self.filter_operand(vars, &mut Vec::new())? {
                        FilterTerm::Const(t) => terms.push(t),
                        FilterTerm::Var(_) => {
                            return Err(self.err("IN lists hold constants, not variables"))
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen, "`)` closing IN list")?;
                if negated {
                    Ok(FilterExpr::NotIn(v, terms))
                } else {
                    Ok(FilterExpr::In(v, terms))
                }
            }
            other => Err(self.err(format!(
                "expected `=`, `!=`, IN or NOT IN in FILTER, got {other:?}"
            ))),
        }
    }

    fn filter_operand(
        &mut self,
        vars: &mut VarTable,
        refs: &mut Vec<(Var, String, usize, Span)>,
    ) -> Result<FilterTerm, SparqlError> {
        let line = self.line();
        let span = self.span();
        match self.next().map(|t| &t.kind) {
            Some(TokenKind::Var(name)) => {
                let v = vars.var(name);
                refs.push((v, name.clone(), line, span));
                Ok(FilterTerm::Var(v))
            }
            Some(TokenKind::Name(name)) => {
                let e = self.ontology.vocabulary().element(name).ok_or_else(|| {
                    SparqlError::UnknownName {
                        line,
                        span,
                        name: name.clone(),
                        expected: "element",
                    }
                })?;
                Ok(FilterTerm::Const(e.into()))
            }
            Some(TokenKind::Literal(s)) => {
                let l = self
                    .ontology
                    .literal(s)
                    .ok_or_else(|| SparqlError::UnknownName {
                        line,
                        span,
                        name: s.clone(),
                        expected: "literal",
                    })?;
                Ok(FilterTerm::Const(l.into()))
            }
            other => Err(SparqlError::Parse {
                line,
                span,
                msg: format!("expected FILTER operand, got {other:?}"),
            }),
        }
    }

    pub fn pattern(&mut self, vars: &mut VarTable) -> Result<TriplePattern, SparqlError> {
        let subject = self.term(vars, "subject")?;
        let path = self.path()?;
        let object = self.term(vars, "object")?;
        Ok(TriplePattern::new(subject, path, object))
    }

    pub fn term(
        &mut self,
        vars: &mut VarTable,
        position: &'static str,
    ) -> Result<PatTerm, SparqlError> {
        let line = self.line();
        let span = self.span();
        match self.next().map(|t| &t.kind) {
            Some(TokenKind::Var(name)) => Ok(PatTerm::Var(vars.var(name))),
            Some(TokenKind::Blank) => Ok(PatTerm::Var(vars.fresh("blank"))),
            Some(TokenKind::Name(name)) => {
                let e = self.ontology.vocabulary().element(name).ok_or_else(|| {
                    SparqlError::UnknownName {
                        line,
                        span,
                        name: name.clone(),
                        expected: "element",
                    }
                })?;
                Ok(PatTerm::Const(e.into()))
            }
            Some(TokenKind::Literal(s)) => {
                let l = self
                    .ontology
                    .literal(s)
                    .ok_or_else(|| SparqlError::UnknownName {
                        line,
                        span,
                        name: s.clone(),
                        expected: "literal",
                    })?;
                Ok(PatTerm::Const(l.into()))
            }
            other => Err(SparqlError::Parse {
                line,
                span,
                msg: format!("expected {position} term, got {other:?}"),
            }),
        }
    }

    /// Parse `seq ('|' seq)*`.
    pub fn path(&mut self) -> Result<PropPath, SparqlError> {
        let mut branches = vec![self.path_seq()?];
        while self.eat(&TokenKind::Pipe) {
            branches.push(self.path_seq()?);
        }
        Ok(PropPath::alt(branches))
    }

    /// Parse `step ('/' step)*`.
    fn path_seq(&mut self) -> Result<PropPath, SparqlError> {
        let mut steps = vec![self.path_step()?];
        while self.eat(&TokenKind::Slash) {
            steps.push(self.path_step()?);
        }
        Ok(PropPath::seq(steps))
    }

    /// Parse `NAME ('*' | '+' | '?')?`.
    fn path_step(&mut self) -> Result<PropPath, SparqlError> {
        let line = self.line();
        let span = self.span();
        let Some(TokenKind::Name(name)) = self.next().map(|t| &t.kind) else {
            return Err(SparqlError::Parse {
                line,
                span,
                msg: "expected relation name".into(),
            });
        };
        let rel = self
            .ontology
            .vocabulary()
            .relation(name)
            .ok_or_else(|| SparqlError::UnknownName {
                line,
                span,
                name: name.clone(),
                expected: "relation",
            })?;
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Star) => {
                self.next();
                Ok(PropPath::Star(rel))
            }
            Some(TokenKind::Plus) => {
                self.next();
                Ok(PropPath::Plus(rel))
            }
            Some(TokenKind::Question) => {
                self.next();
                Ok(PropPath::Opt(rel))
            }
            _ => Ok(PropPath::Rel(rel)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn parses_the_running_example_where_clause() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let src = r#"
            $w subClassOf* Attraction.
            $x instanceOf $w.
            $x inside NYC.
            $x hasLabel "child-friendly".
            $y subClassOf* Activity .
            $z instanceOf Restaurant.
            $z nearBy $x
        "#;
        let pats = parse_patterns(src, &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 7);
        assert_eq!(vars.len(), 4);
        assert!(matches!(pats[0].path, PropPath::Star(_)));
        assert!(matches!(pats[1].path, PropPath::Rel(_)));
        // `$x inside NYC` resolves NYC as a constant element.
        assert!(matches!(pats[2].object, PatTerm::Const(_)));
        // `$x hasLabel "child-friendly"` resolves the literal.
        assert!(matches!(pats[3].object, PatTerm::Const(t) if t.as_literal().is_some()));
    }

    #[test]
    fn blank_allocates_fresh_vars() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns("[] eatAt $z. [] eatAt $z", &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 2);
        let b1 = pats[0].subject.as_var().unwrap();
        let b2 = pats[1].subject.as_var().unwrap();
        assert_ne!(b1, b2, "each [] is a distinct variable");
        assert!(vars.is_anon(b1));
    }

    #[test]
    fn trailing_dot_is_optional() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert_eq!(
            parse_patterns("$x inside NYC.", &o, &mut vars)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            parse_patterns("$x inside NYC", &o, &mut vars)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn unknown_names_are_reported_with_kind() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let err = parse_patterns("$x inside Gotham", &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "element",
                ..
            }
        ));
        let err = parse_patterns("$x orbits NYC", &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "relation",
                ..
            }
        ));
        let err = parse_patterns(r#"$x hasLabel "spooky""#, &o, &mut vars).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::UnknownName {
                expected: "literal",
                ..
            }
        ));
    }

    #[test]
    fn unknown_name_span_points_at_the_name() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let src = "$x inside Gotham";
        let err = parse_patterns(src, &o, &mut vars).unwrap_err();
        let span = err.span();
        assert_eq!(&src[span.start..span.end], "Gotham");
    }

    #[test]
    fn missing_separator_is_an_error() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert!(parse_patterns("$x inside NYC $y inside NYC", &o, &mut vars).is_err());
        assert!(parse_where("$x inside NYC $y inside NYC", &o, &mut vars).is_err());
    }

    #[test]
    fn empty_input_is_empty_patterns() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert!(parse_patterns("  # nothing\n", &o, &mut vars)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn angle_bracket_names_resolve() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns("<Maoz Veg.> nearBy <Central Park>", &o, &mut vars).unwrap();
        assert_eq!(pats.len(), 1);
        assert!(matches!(pats[0].subject, PatTerm::Const(_)));
    }

    #[test]
    fn compound_paths_parse() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let pats = parse_patterns(
            "$x instanceOf/subClassOf* $w. $z nearBy|inside $x. $a inside? NYC",
            &o,
            &mut vars,
        )
        .unwrap();
        assert!(matches!(&pats[0].path, PropPath::Seq(s) if s.len() == 2));
        assert!(matches!(&pats[1].path, PropPath::Alt(a) if a.len() == 2));
        assert!(matches!(pats[2].path, PropPath::Opt(_)));
    }

    #[test]
    fn union_optional_filter_parse() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let src = r#"
            $x inside NYC.
            { $x instanceOf Park } UNION { $x instanceOf Zoo }.
            OPTIONAL { $x hasLabel "child-friendly" }
            FILTER($x != <Bronx Zoo>)
        "#;
        let wc = parse_where(src, &o, &mut vars).unwrap();
        assert_eq!(wc.pattern.items.len(), 4);
        assert!(matches!(&wc.pattern.items[1], GroupItem::Union(b) if b.len() == 2));
        assert!(matches!(&wc.pattern.items[2], GroupItem::Optional(_)));
        assert!(matches!(&wc.pattern.items[3], GroupItem::Filter(_)));
        assert_eq!(wc.required_triples().len(), 1);
    }

    #[test]
    fn modifiers_parse() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let wc = parse_where(
            "$x inside NYC. DISTINCT ORDER BY $x DESC LIMIT 5 OFFSET 2",
            &o,
            &mut vars,
        )
        .unwrap();
        assert!(wc.distinct);
        assert_eq!(wc.order_by.len(), 1);
        assert_eq!(wc.order_by[0].1, SortDir::Desc);
        assert_eq!(wc.limit, Some(5));
        assert_eq!(wc.offset, 2);
        assert!(parse_where("$x inside NYC. LIMIT 5 LIMIT 6", &o, &mut vars).is_err());
        assert!(parse_where("$x inside NYC. ORDER BY", &o, &mut vars).is_err());
    }

    #[test]
    fn filter_in_lists_parse() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        let wc = parse_where(
            "$x inside NYC. FILTER($x IN (<Central Park>, <Bronx Zoo>))",
            &o,
            &mut vars,
        )
        .unwrap();
        assert!(
            matches!(&wc.pattern.items[1], GroupItem::Filter(FilterExpr::In(_, ts)) if ts.len() == 2)
        );
        let wc = parse_where(
            "$x inside NYC. FILTER($x NOT IN (<Central Park>))",
            &o,
            &mut vars,
        )
        .unwrap();
        assert!(matches!(
            &wc.pattern.items[1],
            GroupItem::Filter(FilterExpr::NotIn(_, _))
        ));
        assert!(parse_where("$x inside NYC. FILTER(NYC IN (NYC))", &o, &mut vars).is_err());
        assert!(parse_where("$x inside NYC. FILTER($x IN ($x))", &o, &mut vars).is_err());
    }

    #[test]
    fn filter_vars_must_be_bound_in_their_group() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        // $whom is never bound by a triple in the filter's group.
        let src = "$x inside NYC. FILTER($whom = NYC)";
        let err = parse_where(src, &o, &mut vars).unwrap_err();
        let rendered = err.to_string();
        // The satellite requirement: the message names the variable by its
        // *source* name (not a dense `$N` index) and carries a byte span.
        assert!(rendered.contains("$whom"), "{rendered}");
        let span = err.span();
        assert_eq!(&src[span.start..span.end], "$whom");
        // A filter in a UNION branch cannot see outer bindings either.
        let err = parse_where(
            "$x inside NYC. { $y instanceOf Park. FILTER($x = NYC) } UNION { $y instanceOf Zoo }",
            &o,
            &mut vars,
        )
        .unwrap_err();
        assert!(matches!(err, SparqlError::UnboundFilterVar { .. }));
    }

    #[test]
    fn nested_group_errors() {
        let o = figure1_ontology();
        let mut vars = VarTable::new();
        assert!(parse_where("{ $x inside NYC", &o, &mut vars).is_err());
        assert!(parse_where("OPTIONAL $x inside NYC", &o, &mut vars).is_err());
        assert!(parse_where("$x inside NYC. UNION { $x instanceOf Park }", &o, &mut vars).is_err());
    }
}
