//! AST for graph patterns: variables, pattern terms and property paths.

use std::collections::HashMap;
use std::fmt;

use oassis_store::Term;
use oassis_vocab::RelationId;

/// A query variable, dense per [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// Interns variable names (`$x`) within one query.
///
/// The blank node `[]` and the `MORE` clause allocate *anonymous* variables,
/// which have generated names and are excluded from
/// [`named`](VarTable::named) iteration.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
    anon: Vec<bool>,
}

impl VarTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a named variable (without the `$` sigil).
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        self.anon.push(false);
        v
    }

    /// Allocate a fresh anonymous variable (for `[]` / `MORE`).
    pub fn fresh(&mut self, hint: &str) -> Var {
        let v = Var(self.names.len() as u32);
        self.names.push(format!("_{}{}", hint, v.0));
        self.anon.push(true);
        v
    }

    /// Look up an existing named variable.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// The display name of `v` (anonymous names start with `_`).
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Whether `v` was allocated by [`fresh`](VarTable::fresh).
    pub fn is_anon(&self, v: Var) -> bool {
        self.anon[v.index()]
    }

    /// Number of variables (named + anonymous).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables exist.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All variables in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// Named (non-anonymous) variables in allocation order.
    pub fn named(&self) -> impl Iterator<Item = Var> + '_ {
        self.iter().filter(|v| !self.is_anon(*v))
    }
}

/// A subject/object position in a triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatTerm {
    /// A query variable.
    Var(Var),
    /// A constant term (element or literal).
    Const(Term),
}

impl PatTerm {
    /// The variable, if this position is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            PatTerm::Var(v) => Some(*v),
            PatTerm::Const(_) => None,
        }
    }
}

/// A property path over one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropPath {
    /// Exactly one `rel` edge.
    Rel(RelationId),
    /// Zero or more `rel` edges (`rel*`).
    Star(RelationId),
    /// One or more `rel` edges (`rel+`).
    Plus(RelationId),
}

impl PropPath {
    /// The underlying relation.
    pub fn relation(&self) -> RelationId {
        match self {
            PropPath::Rel(r) | PropPath::Star(r) | PropPath::Plus(r) => *r,
        }
    }

    /// Whether this is a multi-step path (`*` or `+`).
    pub fn is_path(&self) -> bool {
        !matches!(self, PropPath::Rel(_))
    }
}

/// One triple pattern `subject path object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: PatTerm,
    /// The (possibly starred) relation.
    pub path: PropPath,
    /// The object position.
    pub object: PatTerm,
}

impl TriplePattern {
    /// Construct a pattern.
    pub fn new(subject: PatTerm, path: PropPath, object: PatTerm) -> Self {
        TriplePattern {
            subject,
            path,
            object,
        }
    }

    /// The variables this pattern mentions (0, 1 or 2).
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        self.subject
            .as_var()
            .into_iter()
            .chain(self.object.as_var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::ElementId;

    #[test]
    fn var_table_interns() {
        let mut t = VarTable::new();
        let x = t.var("x");
        assert_eq!(t.var("x"), x);
        let y = t.var("y");
        assert_ne!(x, y);
        assert_eq!(t.name(x), "x");
        assert_eq!(t.get("y"), Some(y));
        assert_eq!(t.get("z"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_vars_are_anonymous_and_unique() {
        let mut t = VarTable::new();
        let a = t.fresh("blank");
        let b = t.fresh("blank");
        assert_ne!(a, b);
        assert!(t.is_anon(a));
        let x = t.var("x");
        assert!(!t.is_anon(x));
        let named: Vec<_> = t.named().collect();
        assert_eq!(named.len(), 1);
    }

    #[test]
    fn pattern_vars() {
        let mut t = VarTable::new();
        let x = t.var("x");
        let p = TriplePattern::new(
            PatTerm::Var(x),
            PropPath::Rel(oassis_vocab::RelationId(0)),
            PatTerm::Const(Term::Element(ElementId(1))),
        );
        assert_eq!(p.vars().collect::<Vec<_>>(), [x]);
        assert!(!p.path.is_path());
        assert!(PropPath::Star(oassis_vocab::RelationId(0)).is_path());
    }
}
