//! AST for graph patterns: variables, pattern terms, property paths, the
//! group-graph-pattern algebra (`UNION` / `OPTIONAL` / `FILTER`) and the
//! solution modifiers (`DISTINCT` / `ORDER BY` / `LIMIT` / `OFFSET`).

use std::collections::HashMap;
use std::fmt;

use oassis_store::Term;
use oassis_vocab::RelationId;

/// A query variable, dense per [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// Interns variable names (`$x`) within one query.
///
/// The blank node `[]` and the `MORE` clause allocate *anonymous* variables,
/// which have generated names and are excluded from
/// [`named`](VarTable::named) iteration.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
    anon: Vec<bool>,
}

impl VarTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a named variable (without the `$` sigil).
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        self.anon.push(false);
        v
    }

    /// Allocate a fresh anonymous variable (for `[]` / `MORE`).
    pub fn fresh(&mut self, hint: &str) -> Var {
        let v = Var(self.names.len() as u32);
        self.names.push(format!("_{}{}", hint, v.0));
        self.anon.push(true);
        v
    }

    /// Look up an existing named variable.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// The display name of `v` (anonymous names start with `_`).
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Whether `v` was allocated by [`fresh`](VarTable::fresh).
    pub fn is_anon(&self, v: Var) -> bool {
        self.anon[v.index()]
    }

    /// Number of variables (named + anonymous).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables exist.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All variables in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// Named (non-anonymous) variables in allocation order.
    pub fn named(&self) -> impl Iterator<Item = Var> + '_ {
        self.iter().filter(|v| !self.is_anon(*v))
    }
}

/// A subject/object position in a triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatTerm {
    /// A query variable.
    Var(Var),
    /// A constant term (element or literal).
    Const(Term),
}

impl PatTerm {
    /// The variable, if this position is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            PatTerm::Var(v) => Some(*v),
            PatTerm::Const(_) => None,
        }
    }
}

/// A property path.
///
/// Elementary steps carry one relation with an optional `*`/`+`/`?`
/// modifier; compound paths compose steps with `/` (sequence) and `|`
/// (alternation). The grammar has no parentheses, so `/` binds tighter than
/// `|`: an [`Alt`](PropPath::Alt) contains only sequences or steps, and a
/// [`Seq`](PropPath::Seq) contains only steps. Compound constructors always
/// hold ≥ 2 parts (single-part compounds collapse to the part).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropPath {
    /// Exactly one `rel` edge.
    Rel(RelationId),
    /// Zero or more `rel` edges (`rel*`).
    Star(RelationId),
    /// One or more `rel` edges (`rel+`).
    Plus(RelationId),
    /// Zero or one `rel` edge (`rel?`).
    Opt(RelationId),
    /// `p1/p2/...` — steps in sequence.
    Seq(Vec<PropPath>),
    /// `p1|p2|...` — any branch.
    Alt(Vec<PropPath>),
}

impl PropPath {
    /// Build a sequence, collapsing the single-step case.
    pub fn seq(mut parts: Vec<PropPath>) -> PropPath {
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            PropPath::Seq(parts)
        }
    }

    /// Build an alternation, collapsing the single-branch case.
    pub fn alt(mut parts: Vec<PropPath>) -> PropPath {
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            PropPath::Alt(parts)
        }
    }

    /// The underlying relation of an *elementary* path (`rel`, `rel*`,
    /// `rel+`, `rel?`); `None` for compound `/` and `|` paths.
    pub fn relation(&self) -> Option<RelationId> {
        match self {
            PropPath::Rel(r) | PropPath::Star(r) | PropPath::Plus(r) | PropPath::Opt(r) => {
                Some(*r)
            }
            PropPath::Seq(_) | PropPath::Alt(_) => None,
        }
    }

    /// Every relation mentioned anywhere in the path, in syntactic order.
    pub fn relations(&self) -> Vec<RelationId> {
        fn walk(p: &PropPath, out: &mut Vec<RelationId>) {
            match p {
                PropPath::Rel(r) | PropPath::Star(r) | PropPath::Plus(r) | PropPath::Opt(r) => {
                    out.push(*r)
                }
                PropPath::Seq(ps) | PropPath::Alt(ps) => ps.iter().for_each(|p| walk(p, out)),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Whether evaluating this path can require more than one edge lookup
    /// per candidate (anything beyond a plain `rel`).
    pub fn is_path(&self) -> bool {
        !matches!(self, PropPath::Rel(_))
    }
}

/// One triple pattern `subject path object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: PatTerm,
    /// The property path.
    pub path: PropPath,
    /// The object position.
    pub object: PatTerm,
}

impl TriplePattern {
    /// Construct a pattern.
    pub fn new(subject: PatTerm, path: PropPath, object: PatTerm) -> Self {
        TriplePattern {
            subject,
            path,
            object,
        }
    }

    /// The variables this pattern mentions (0, 1 or 2).
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        self.subject
            .as_var()
            .into_iter()
            .chain(self.object.as_var())
    }
}

/// An operand of a `FILTER` comparison: a variable or a constant term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterTerm {
    /// A query variable.
    Var(Var),
    /// A constant (element or literal).
    Const(Term),
}

impl FilterTerm {
    /// The variable, if this operand is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            FilterTerm::Var(v) => Some(*v),
            FilterTerm::Const(_) => None,
        }
    }
}

/// A `FILTER` expression. Comparisons are by term identity (`=`, `!=`);
/// membership tests enumerate constant terms (`IN`, `NOT IN`). A filter
/// over an *unbound* variable rejects the solution (three-valued SPARQL
/// semantics collapse to false here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FilterExpr {
    /// `a = b`.
    Eq(FilterTerm, FilterTerm),
    /// `a != b`.
    Ne(FilterTerm, FilterTerm),
    /// `$v IN (t1, t2, ...)`.
    In(Var, Vec<Term>),
    /// `$v NOT IN (t1, t2, ...)`.
    NotIn(Var, Vec<Term>),
}

impl FilterExpr {
    /// Variables the expression references.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            FilterExpr::Eq(a, b) | FilterExpr::Ne(a, b) => {
                a.as_var().into_iter().chain(b.as_var()).collect()
            }
            FilterExpr::In(v, _) | FilterExpr::NotIn(v, _) => vec![*v],
        }
    }

    /// Evaluate against a lookup of variable values. `None` (unbound)
    /// makes the whole expression false.
    pub fn eval(&self, lookup: impl Fn(Var) -> Option<Term>) -> bool {
        let resolve = |t: &FilterTerm| match t {
            FilterTerm::Var(v) => lookup(*v),
            FilterTerm::Const(c) => Some(*c),
        };
        match self {
            FilterExpr::Eq(a, b) => matches!((resolve(a), resolve(b)), (Some(x), Some(y)) if x == y),
            FilterExpr::Ne(a, b) => matches!((resolve(a), resolve(b)), (Some(x), Some(y)) if x != y),
            FilterExpr::In(v, ts) => lookup(*v).is_some_and(|x| ts.contains(&x)),
            FilterExpr::NotIn(v, ts) => lookup(*v).is_some_and(|x| !ts.contains(&x)),
        }
    }
}

/// One item of a group graph pattern (a conjunction).
#[derive(Debug, Clone, PartialEq)]
pub enum GroupItem {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `OPTIONAL { ... }` — left-join the group against the body.
    Optional(GraphPattern),
    /// `{ ... } UNION { ... } ...` — any branch may match (≥ 1 branch).
    Union(Vec<GraphPattern>),
    /// `FILTER ( ... )` — restrict the group's solutions.
    Filter(FilterExpr),
}

/// A group graph pattern: the conjunction of its items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphPattern {
    /// Conjoined items, in source order.
    pub items: Vec<GroupItem>,
}

impl GraphPattern {
    /// A group holding only plain triple patterns.
    pub fn from_triples(triples: Vec<TriplePattern>) -> Self {
        GraphPattern {
            items: triples.into_iter().map(GroupItem::Triple).collect(),
        }
    }

    /// Triple patterns that *every* solution of this group must match:
    /// the group's own triples. Triples inside `OPTIONAL` bodies and
    /// `UNION` branches are excluded (a solution may satisfy the group
    /// without them), so downstream consumers that treat these as
    /// universal constraints (e.g. taxonomy anchors) stay sound.
    pub fn required_triples(&self) -> Vec<&TriplePattern> {
        self.items
            .iter()
            .filter_map(|i| match i {
                GroupItem::Triple(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// Every triple pattern anywhere in the group, including `OPTIONAL`
    /// bodies and `UNION` branches.
    pub fn all_triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.collect_triples(&mut out);
        out
    }

    fn collect_triples<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        for item in &self.items {
            match item {
                GroupItem::Triple(t) => out.push(t),
                GroupItem::Optional(g) => g.collect_triples(out),
                GroupItem::Union(branches) => {
                    branches.iter().for_each(|g| g.collect_triples(out))
                }
                GroupItem::Filter(_) => {}
            }
        }
    }

    /// Variables bound by any triple anywhere in the group, in first-use
    /// order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in self.all_triples() {
            for v in t.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Whether the group contains anything beyond plain triples (i.e.
    /// whether pre-algebra consumers could treat it as a bare BGP).
    pub fn is_plain_bgp(&self) -> bool {
        self.items
            .iter()
            .all(|i| matches!(i, GroupItem::Triple(_)))
    }
}

/// Sort direction of one `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortDir {
    /// Ascending (default, `ASC`).
    #[default]
    Asc,
    /// Descending (`DESC`).
    Desc,
}

/// A complete WHERE clause: the graph pattern plus solution modifiers.
///
/// Results are *always* set-semantic (the evaluator sorts and deduplicates
/// bindings), so `DISTINCT` is accepted and printed but adds nothing —
/// `distinct` records whether the query spelled it out.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WhereClause {
    /// The group graph pattern.
    pub pattern: GraphPattern,
    /// Whether `DISTINCT` was written (set semantics always apply).
    pub distinct: bool,
    /// `ORDER BY` keys, applied in order.
    pub order_by: Vec<(Var, SortDir)>,
    /// `LIMIT n` — keep at most `n` solutions (after ordering).
    pub limit: Option<u64>,
    /// `OFFSET n` — skip the first `n` solutions (after ordering).
    pub offset: u64,
}

impl WhereClause {
    /// A modifier-free clause over plain triple patterns (the pre-algebra
    /// conjunctive shape).
    pub fn from_triples(triples: Vec<TriplePattern>) -> Self {
        WhereClause {
            pattern: GraphPattern::from_triples(triples),
            ..WhereClause::default()
        }
    }

    /// Triples every solution must match (see
    /// [`GraphPattern::required_triples`]).
    pub fn required_triples(&self) -> Vec<&TriplePattern> {
        self.pattern.required_triples()
    }

    /// Whether any solution modifier is present.
    pub fn has_modifiers(&self) -> bool {
        self.distinct || !self.order_by.is_empty() || self.limit.is_some() || self.offset > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_vocab::ElementId;

    #[test]
    fn var_table_interns() {
        let mut t = VarTable::new();
        let x = t.var("x");
        assert_eq!(t.var("x"), x);
        let y = t.var("y");
        assert_ne!(x, y);
        assert_eq!(t.name(x), "x");
        assert_eq!(t.get("y"), Some(y));
        assert_eq!(t.get("z"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_vars_are_anonymous_and_unique() {
        let mut t = VarTable::new();
        let a = t.fresh("blank");
        let b = t.fresh("blank");
        assert_ne!(a, b);
        assert!(t.is_anon(a));
        let x = t.var("x");
        assert!(!t.is_anon(x));
        let named: Vec<_> = t.named().collect();
        assert_eq!(named.len(), 1);
    }

    #[test]
    fn pattern_vars() {
        let mut t = VarTable::new();
        let x = t.var("x");
        let p = TriplePattern::new(
            PatTerm::Var(x),
            PropPath::Rel(oassis_vocab::RelationId(0)),
            PatTerm::Const(Term::Element(ElementId(1))),
        );
        assert_eq!(p.vars().collect::<Vec<_>>(), [x]);
        assert!(!p.path.is_path());
        assert!(PropPath::Star(oassis_vocab::RelationId(0)).is_path());
    }

    #[test]
    fn compound_paths_collapse_and_enumerate() {
        let r0 = RelationId(0);
        let r1 = RelationId(1);
        assert_eq!(PropPath::seq(vec![PropPath::Rel(r0)]), PropPath::Rel(r0));
        assert_eq!(PropPath::alt(vec![PropPath::Star(r1)]), PropPath::Star(r1));
        let p = PropPath::alt(vec![
            PropPath::seq(vec![PropPath::Rel(r0), PropPath::Plus(r1)]),
            PropPath::Opt(r0),
        ]);
        assert_eq!(p.relation(), None);
        assert_eq!(p.relations(), vec![r0, r1, r0]);
        assert!(p.is_path());
    }

    #[test]
    fn filter_eval_semantics() {
        let mut t = VarTable::new();
        let x = t.var("x");
        let a = Term::Element(ElementId(1));
        let b = Term::Element(ElementId(2));
        let bound = |v: Var| if v == x { Some(a) } else { None };
        assert!(FilterExpr::Eq(FilterTerm::Var(x), FilterTerm::Const(a)).eval(bound));
        assert!(!FilterExpr::Eq(FilterTerm::Var(x), FilterTerm::Const(b)).eval(bound));
        assert!(FilterExpr::Ne(FilterTerm::Var(x), FilterTerm::Const(b)).eval(bound));
        assert!(FilterExpr::In(x, vec![a, b]).eval(bound));
        assert!(!FilterExpr::NotIn(x, vec![a, b]).eval(bound));
        // Unbound variables make every expression false, even NOT IN.
        let unbound = |_: Var| None;
        assert!(!FilterExpr::Eq(FilterTerm::Var(x), FilterTerm::Const(a)).eval(unbound));
        assert!(!FilterExpr::NotIn(x, vec![b]).eval(unbound));
    }

    #[test]
    fn required_vs_all_triples() {
        let mut t = VarTable::new();
        let x = t.var("x");
        let y = t.var("y");
        let triple = |v: Var| {
            TriplePattern::new(
                PatTerm::Var(v),
                PropPath::Rel(RelationId(0)),
                PatTerm::Const(Term::Element(ElementId(0))),
            )
        };
        let g = GraphPattern {
            items: vec![
                GroupItem::Triple(triple(x)),
                GroupItem::Optional(GraphPattern::from_triples(vec![triple(y)])),
                GroupItem::Union(vec![
                    GraphPattern::from_triples(vec![triple(y)]),
                    GraphPattern::default(),
                ]),
                GroupItem::Filter(FilterExpr::In(x, vec![])),
            ],
        };
        assert_eq!(g.required_triples().len(), 1);
        assert_eq!(g.all_triples().len(), 3);
        assert_eq!(g.vars(), vec![x, y]);
        assert!(!g.is_plain_bgp());
        assert!(GraphPattern::from_triples(vec![triple(x)]).is_plain_bgp());
    }

    #[test]
    fn where_clause_modifiers() {
        let wc = WhereClause::from_triples(vec![]);
        assert!(!wc.has_modifiers());
        let wc = WhereClause {
            limit: Some(3),
            ..WhereClause::from_triples(vec![])
        };
        assert!(wc.has_modifiers());
    }
}
