//! Time abstraction for the session runtime.
//!
//! Everything in the runtime that waits — simulated member latency, the
//! per-question timeout, the synchronous path's in-line delay — goes
//! through a [`Clock`], so the exact same timeout / retry / deadline logic
//! runs against real time in production ([`SystemClock`]) and against a
//! purely virtual, instantly-advancing time in the deterministic
//! simulation harness ([`VirtualClock`], see [`crate::runtime::sim`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of (possibly virtual) time.
///
/// `now()` is only ever compared against other `now()` readings from the
/// same clock, so the epoch is arbitrary.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Let `d` pass. The system clock genuinely sleeps the calling
    /// thread; the virtual clock advances its counter and returns
    /// immediately.
    fn sleep(&self, d: Duration);
}

/// The production clock: monotonic wall time and real sleeps.
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// The simulation clock: time is a shared counter that only moves when
/// somebody sleeps, so a run consumes zero wall-clock waiting and replays
/// identically no matter how fast the host machine is. Clones share the
/// same underlying counter.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        let step = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(step, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_on_sleep() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        clock.sleep(Duration::ZERO);
        assert_eq!(clock.now(), Duration::from_millis(250));
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.sleep(Duration::from_secs(1));
        assert_eq!(b.now(), Duration::from_secs(1));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let t0 = clock.now();
        let t1 = clock.now();
        assert!(t1 >= t0);
    }
}
