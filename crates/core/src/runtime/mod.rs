//! The concurrent crowd-session runtime (worker-pool dispatcher).
//!
//! The paper's multi-user algorithm (§4.2) *emulates* parallel sessions
//! with a round-robin loop; this module makes the sessions actually
//! concurrent while keeping the algorithm's answer set bit-identical. The
//! design splits the engine into:
//!
//! * a **coordinator** (the caller's thread) that runs the *exact*
//!   sequential commit loop — every answer is applied to the border, cache
//!   and statistics in the same order as the synchronous engine, which is
//!   the deterministic-merge rule: a concurrent run with seed S produces
//!   the same answer set as a sequential run with seed S;
//! * an [`Executor`] that carries the actual crowd round-trips (simulated
//!   answer latency, drops, timeouts, retries). Questions travel to the
//!   executor as [`AskRequest`]s tagged with explicit [`QuestionId`]s; each
//!   request checks the member out of its slot and the response checks it
//!   back in, so a member is owned by exactly one execution context at a
//!   time.
//!
//! Two executors implement that contract:
//!
//! * the production `ThreadedExecutor` — a pool of worker threads racing
//!   real time through a [`SystemClock`];
//! * the deterministic [`sim::SimExecutor`] — a single-threaded step
//!   scheduler over a [`VirtualClock`] that owns every interleaving
//!   decision and replays bit-identically from one `u64` seed (select it
//!   with [`SessionRuntime::simulated`]).
//!
//! Wall-clock speedup comes from **speculative prefetch**: while other
//! members take their committed turns, the coordinator predicts each idle
//! member's next question and dispatches it speculatively. Answers land in
//! a lock-striped [`SharedCrowdCache`]; when the commit loop reaches that
//! question it consumes the prefetched answer without waiting. The executor
//! consults the published [`SharedBorder`] when picking up speculative work
//! and cancels asks whose target has meanwhile been classified — safe,
//! because the commit loop never asks about classified assignments.
//!
//! Unresponsive members are handled per question: a member whose simulated
//! delay exceeds `question_timeout` (or whose answer is dropped) is retried
//! up to `max_retries` times, then **excluded** from the rest of the run.
//! The deadline itself follows one tie-break rule, `channel_verdict`: an
//! answer arriving *exactly at* the deadline is delivered and committed;
//! the timeout fires only for strictly later (or dropped) answers — so a
//! member can never be both excluded and committed for the same question.
//! If every member ends up excluded the engine reports
//! [`RuntimeErrorKind::CrowdExhausted`] instead of spinning.

pub mod clock;
pub mod sim;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use sim::{SimChaos, SimConfig, SimTrace, SimTraceHandle};

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use oassis_crowd::{CrowdMember, MemberId, SharedCrowdCache};
use oassis_obs::{names, EventSink, SinkExt, Span};
use oassis_vocab::{ElementId, FactSet, Vocabulary};

use crate::assignment::Assignment;
use crate::border::SharedBorder;

use sim::SimExecutor;

/// Identifier of one dispatched question (unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuestionId(pub u64);

impl std::fmt::Display for QuestionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Tuning knobs of the session runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Worker threads carrying crowd round-trips (min 1, default 4; on the
    /// threaded path, raised to at least one per shard). Ignored in
    /// simulation, where a single-threaded scheduler serves every request.
    pub workers: usize,
    /// How long a worker waits for one answer before declaring a timeout.
    pub question_timeout: Duration,
    /// Re-asks after a timeout before the member is excluded.
    pub max_retries: usize,
    /// Independent member shards (min 1, default 1). Each shard owns a
    /// dispatch queue and a slice of the worker pool; a member is pinned
    /// to one shard by the consistent [`oassis_crowd::placement`] hash,
    /// so shards never contend on each other's queues. In simulation the
    /// scheduler is logically one shard and this is ignored.
    pub shards: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            workers: 4,
            question_timeout: Duration::from_millis(250),
            max_retries: 2,
            shards: 1,
        }
    }
}

/// A crowd handed to the engine for concurrent execution: the members plus
/// the runtime's tuning knobs. Construct with [`SessionRuntime::new`], then
/// chain setters:
///
/// ```no_run
/// # let members = Vec::new();
/// use std::time::Duration;
/// use oassis_core::SessionRuntime;
///
/// let runtime = SessionRuntime::new(members)
///     .workers(8)
///     .question_timeout(Duration::from_millis(50))
///     .max_retries(1);
/// ```
///
/// Chain [`simulated`](Self::simulated) to run the session on the
/// deterministic simulation executor instead of real worker threads:
///
/// ```no_run
/// # let members = Vec::new();
/// use oassis_core::{SessionRuntime, SimConfig};
///
/// let runtime = SessionRuntime::new(members).simulated(SimConfig::new(42));
/// ```
pub struct SessionRuntime {
    members: Vec<Box<dyn CrowdMember>>,
    options: RuntimeOptions,
    sim: Option<SimConfig>,
}

impl std::fmt::Debug for SessionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRuntime")
            .field("members", &self.members.len())
            .field("options", &self.options)
            .field("sim", &self.sim)
            .finish()
    }
}

impl SessionRuntime {
    /// A runtime over `members` with default [`RuntimeOptions`].
    pub fn new(members: Vec<Box<dyn CrowdMember>>) -> Self {
        SessionRuntime {
            members,
            options: RuntimeOptions::default(),
            sim: None,
        }
    }

    /// Set the worker-thread count (values below 1 are clamped to 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.options.workers = n.max(1);
        self
    }

    /// Set the per-question timeout.
    pub fn question_timeout(mut self, timeout: Duration) -> Self {
        self.options.question_timeout = timeout;
        self
    }

    /// Set the retry budget per question.
    pub fn max_retries(mut self, n: usize) -> Self {
        self.options.max_retries = n;
        self
    }

    /// Set the member-shard count (values below 1 are clamped to 1). Each
    /// shard gets its own dispatch queue and at least one worker thread.
    pub fn shards(mut self, n: usize) -> Self {
        self.options.shards = n.max(1);
        self
    }

    /// Run the session on the deterministic simulation executor: a seeded
    /// single-threaded scheduler over a virtual clock, replaying
    /// bit-identically from `sim`'s seed (see [`sim`](crate::runtime::sim)).
    pub fn simulated(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Whether this runtime will execute on the simulation executor.
    pub fn is_simulated(&self) -> bool {
        self.sim.is_some()
    }

    /// The configured options.
    pub fn options(&self) -> RuntimeOptions {
        self.options
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the crowd is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Dissolve the runtime, returning the members.
    pub fn into_members(self) -> Vec<Box<dyn CrowdMember>> {
        self.members
    }
}

impl From<Vec<Box<dyn CrowdMember>>> for SessionRuntime {
    fn from(members: Vec<Box<dyn CrowdMember>>) -> Self {
        SessionRuntime::new(members)
    }
}

/// What went wrong inside the session runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// A member failed to answer a question within the timeout, through
    /// all retries.
    QuestionTimeout {
        /// The unresponsive member.
        member: MemberId,
        /// The question that timed out.
        question: QuestionId,
        /// Delivery attempts made (initial ask + retries).
        attempts: usize,
    },
    /// A member's answer callback panicked on a worker thread; the member
    /// was discarded.
    WorkerPoisoned {
        /// The member whose callback panicked.
        member: MemberId,
    },
    /// Every member has been excluded (timed out or poisoned) and the run
    /// cannot make progress.
    CrowdExhausted {
        /// How many members were excluded.
        excluded: usize,
    },
}

/// A session-runtime failure, with an optional underlying cause
/// (reachable through [`std::error::Error::source`]).
#[derive(Debug)]
pub struct RuntimeError {
    kind: RuntimeErrorKind,
    source: Option<Box<dyn std::error::Error + Send + Sync>>,
}

impl RuntimeError {
    /// An error of `kind` with no underlying cause.
    pub fn new(kind: RuntimeErrorKind) -> Self {
        RuntimeError { kind, source: None }
    }

    /// Attach an underlying cause.
    pub fn with_source(mut self, source: Box<dyn std::error::Error + Send + Sync>) -> Self {
        self.source = Some(source);
        self
    }

    /// The failure kind.
    pub fn kind(&self) -> &RuntimeErrorKind {
        &self.kind
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            RuntimeErrorKind::QuestionTimeout {
                member,
                question,
                attempts,
            } => write!(
                f,
                "member {member} did not answer question {question} within {attempts} attempts"
            ),
            RuntimeErrorKind::WorkerPoisoned { member } => {
                write!(f, "member {member} panicked on a worker thread")
            }
            RuntimeErrorKind::CrowdExhausted { excluded } => write!(
                f,
                "crowd exhausted: all {excluded} members were excluded as unresponsive"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// The payload a worker thread panicked with, captured as an error so it
/// can ride a [`RuntimeError`]'s source chain.
#[derive(Debug)]
struct PanicPayload(String);

impl std::fmt::Display for PanicPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panic: {}", self.0)
    }
}

impl std::error::Error for PanicPayload {}

/// The question kinds an executor can carry.
#[derive(Debug, Clone)]
pub(crate) enum AskPayload {
    /// A concrete question about one assignment's fact-set.
    Concrete {
        assignment: Assignment,
        factset: FactSet,
    },
    /// A specialization question over candidate fact-sets.
    Specialization {
        base: FactSet,
        candidates: Vec<FactSet>,
    },
    /// A user-guided-pruning interaction.
    Pruning { factset: FactSet },
    /// A speculative batch of candidate concrete questions (one crowd
    /// round-trip answers the whole form). Only dispatched speculatively.
    Prefetch {
        candidates: Vec<(Assignment, FactSet)>,
    },
}

impl AskPayload {
    /// How many crowd questions this payload carries.
    fn question_count(&self) -> u64 {
        match self {
            AskPayload::Prefetch { candidates } => candidates.len() as u64,
            _ => 1,
        }
    }
}

/// A successfully delivered answer.
#[derive(Debug, Clone)]
pub(crate) enum AskValue {
    /// Concrete support.
    Support(f64),
    /// Specialization choice.
    Choice(Option<(usize, f64)>),
    /// Irrelevant elements (pruning).
    Irrelevant(Vec<ElementId>),
    /// Answers to a speculative prefetch batch.
    Prefetched(Vec<(FactSet, f64)>),
}

/// What came back for one request.
#[derive(Debug)]
pub(crate) enum AskOutcome {
    Answered(AskValue),
    TimedOut { attempts: usize },
    Cancelled,
    Poisoned { message: String },
}

pub(crate) struct AskRequest {
    pub(crate) question: QuestionId,
    pub(crate) member_idx: usize,
    pub(crate) member: Box<dyn CrowdMember>,
    pub(crate) payload: AskPayload,
    pub(crate) speculative: bool,
    /// The member shard this request is pinned to (consistent placement
    /// over the member id). The sim executor, logically one shard,
    /// ignores it.
    pub(crate) shard: usize,
}

pub(crate) struct AskResponse {
    pub(crate) question: QuestionId,
    pub(crate) member_idx: usize,
    /// The member, checked back in (`None` if its callback panicked).
    pub(crate) member: Option<Box<dyn CrowdMember>>,
    pub(crate) outcome: AskOutcome,
    pub(crate) payload: AskPayload,
    pub(crate) speculative: bool,
    /// Speculative questions dropped unasked (target already classified).
    pub(crate) cancelled: u64,
    /// Delivery attempts made serving this request (0 when cancelled).
    pub(crate) attempts: usize,
}

/// How the coordinator's requests reach execution: the production
/// `ThreadedExecutor` or the deterministic [`sim::SimExecutor`]. The
/// contract mirrors a channel pair; [`Pool`] owns all slot/exclusion
/// bookkeeping on top.
pub(crate) trait Executor: Send {
    /// Enqueue one request for execution.
    fn submit(&mut self, request: AskRequest);

    /// Deliver the next response, blocking if necessary. `None` means no
    /// response can ever arrive (channel gone / nothing pending).
    fn recv(&mut self) -> Option<AskResponse>;

    /// Stop accepting new work; in-flight requests still complete and
    /// must be drained with [`recv`](Self::recv).
    fn begin_shutdown(&mut self);

    /// Release execution resources (join worker threads).
    fn finish_shutdown(&mut self);
}

/// The request channel shared by coordinator and workers. Two lanes:
/// committed questions are served before speculative prefetch, so a
/// deep backlog of optional wave work can never delay the answer a
/// session is actually blocked on (prefetch is a latency hider, not a
/// competitor for worker time).
struct WorkQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    committed: VecDeque<AskRequest>,
    speculative: VecDeque<AskRequest>,
    shutdown: bool,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                committed: VecDeque::new(),
                speculative: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, request: AskRequest) {
        let mut state = self.state.lock().expect("work queue poisoned");
        if request.speculative {
            state.speculative.push_back(request);
        } else {
            state.committed.push_back(request);
        }
        drop(state);
        self.ready.notify_one();
    }

    /// Blocking pop, committed lane first; `None` once the queue is shut
    /// down and drained.
    fn pop(&self) -> Option<AskRequest> {
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(request) = state
                .committed
                .pop_front()
                .or_else(|| state.speculative.pop_front())
            {
                return Some(request);
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).expect("work queue poisoned");
        }
    }

    fn shutdown(&self) {
        self.state.lock().expect("work queue poisoned").shutdown = true;
        self.ready.notify_all();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// The production executor: `shards` independent work queues, each served
/// by its own slice of the worker pool, all answering into one response
/// channel. A request's [`shard`](AskRequest::shard) picks its queue, so
/// shards never contend on each other's dispatch path; `recv` stays a
/// single blocking point for the coordinator.
struct ThreadedExecutor {
    queues: Vec<Arc<WorkQueue>>,
    responses: mpsc::Receiver<AskResponse>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedExecutor {
    fn spawn(
        options: RuntimeOptions,
        border: SharedBorder,
        vocab: Arc<Vocabulary>,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        let shards = options.shards.max(1);
        let queues: Vec<Arc<WorkQueue>> =
            (0..shards).map(|_| Arc::new(WorkQueue::new())).collect();
        let (tx, rx) = mpsc::channel();
        // At least one worker per shard; extra workers round-robin.
        let n_workers = options.workers.max(1).max(shards);
        let workers = (0..n_workers)
            .map(|w| {
                let queue = Arc::clone(&queues[w % shards]);
                let tx = tx.clone();
                let border = border.clone();
                let vocab = Arc::clone(&vocab);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || worker_loop(queue, tx, border, vocab, sink, options))
            })
            .collect();
        ThreadedExecutor {
            queues,
            responses: rx,
            workers,
        }
    }
}

impl Executor for ThreadedExecutor {
    fn submit(&mut self, request: AskRequest) {
        let queue = request.shard % self.queues.len();
        self.queues[queue].push(request);
    }

    fn recv(&mut self) -> Option<AskResponse> {
        self.responses.recv().ok()
    }

    fn begin_shutdown(&mut self) {
        for queue in &self.queues {
            queue.shutdown();
        }
    }

    fn finish_shutdown(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker thread: pop requests, simulate the crowd channel (delay,
/// drop, timeout, retry), ask the member, send the response back.
fn worker_loop(
    queue: Arc<WorkQueue>,
    responses: mpsc::Sender<AskResponse>,
    border: SharedBorder,
    vocab: Arc<Vocabulary>,
    sink: Arc<dyn EventSink>,
    options: RuntimeOptions,
) {
    let clock = SystemClock::new();
    while let Some(request) = queue.pop() {
        let response = serve(request, &border, &vocab, &sink, &options, &clock);
        if responses.send(response).is_err() {
            return; // coordinator gone
        }
    }
}

/// Outcome of one delivery attempt against the per-question deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChannelVerdict {
    /// The answer arrives in time: wait `d`, then deliver it.
    Deliver(Duration),
    /// No answer by the deadline.
    Expire {
        /// Whether the answer was dropped (vs merely too slow).
        dropped: bool,
    },
}

/// The runtime's single deadline tie-break rule, shared by every executor:
/// an answer arriving **exactly at** the deadline is delivered (and will be
/// committed); the timeout fires only for answers strictly later than the
/// deadline, or dropped outright. Centralizing the comparison here is what
/// keeps the threaded and simulated paths from ever disagreeing about the
/// race — a member answering at the deadline can never be excluded *and*
/// committed for the same question.
pub(crate) fn channel_verdict(delay: Option<Duration>, timeout: Duration) -> ChannelVerdict {
    match delay {
        Some(d) if d <= timeout => ChannelVerdict::Deliver(d),
        Some(_) => ChannelVerdict::Expire { dropped: false },
        None => ChannelVerdict::Expire { dropped: true },
    }
}

pub(crate) fn serve(
    mut request: AskRequest,
    border: &SharedBorder,
    vocab: &Vocabulary,
    sink: &Arc<dyn EventSink>,
    options: &RuntimeOptions,
    clock: &dyn Clock,
) -> AskResponse {
    let _span = Span::enter(&**sink, names::SPAN_WORKER);

    // A speculative question whose target got classified while queued is
    // stale: the commit loop will never ask it. Drop stale candidates from
    // a prefetch batch; return the member unasked if nothing remains.
    let mut cancelled = 0u64;
    if request.speculative {
        let stale = match &mut request.payload {
            AskPayload::Concrete { assignment, .. } => {
                usize::from(border.is_classified(assignment, vocab))
            }
            AskPayload::Prefetch { candidates } => {
                let before = candidates.len();
                candidates.retain(|(a, _)| !border.is_classified(a, vocab));
                before - candidates.len()
            }
            _ => 0,
        };
        cancelled = stale as u64;
        if stale > 0 {
            sink.count(names::RUNTIME_CANCELLED, cancelled);
        }
        let empty = match &request.payload {
            AskPayload::Concrete { .. } => stale > 0,
            AskPayload::Prefetch { candidates } => candidates.is_empty(),
            _ => false,
        };
        if empty {
            return AskResponse {
                question: request.question,
                member_idx: request.member_idx,
                member: Some(request.member),
                outcome: AskOutcome::Cancelled,
                payload: request.payload,
                speculative: true,
                cancelled,
                attempts: 0,
            };
        }
    }

    let start = clock.now();
    let mut attempts = 0usize;
    let outcome = loop {
        attempts += 1;
        match channel_verdict(request.member.answer_delay(), options.question_timeout) {
            ChannelVerdict::Deliver(d) => {
                clock.sleep(d);
                let member = &mut request.member;
                let payload = &request.payload;
                match catch_unwind(AssertUnwindSafe(|| answer(member.as_mut(), payload))) {
                    Ok(value) => break AskOutcome::Answered(value),
                    Err(panic) => {
                        // The member may be mid-mutation: discard it.
                        return AskResponse {
                            question: request.question,
                            member_idx: request.member_idx,
                            member: None,
                            outcome: AskOutcome::Poisoned {
                                message: panic_message(panic),
                            },
                            payload: request.payload,
                            speculative: request.speculative,
                            cancelled,
                            attempts,
                        };
                    }
                }
            }
            ChannelVerdict::Expire { dropped } => {
                // Dropped or slower than the timeout: wait the full timeout
                // (that is when the coordinator's patience runs out), then
                // retry with a fresh delay draw or give up.
                clock.sleep(options.question_timeout);
                let label = if dropped { "drop" } else { "slow" };
                sink.count_labeled(names::RUNTIME_TIMEOUT, label, 1);
                if attempts > options.max_retries {
                    break AskOutcome::TimedOut { attempts };
                }
                sink.count(names::RUNTIME_RETRY, 1);
            }
        }
    };
    let elapsed = clock.now().saturating_sub(start);
    sink.observe(names::RUNTIME_ANSWER_NANOS, elapsed.as_nanos() as f64);
    AskResponse {
        question: request.question,
        member_idx: request.member_idx,
        member: Some(request.member),
        outcome,
        payload: request.payload,
        speculative: request.speculative,
        cancelled,
        attempts,
    }
}

fn answer(member: &mut dyn CrowdMember, payload: &AskPayload) -> AskValue {
    match payload {
        AskPayload::Concrete { factset, .. } => AskValue::Support(member.ask_concrete(factset)),
        AskPayload::Specialization { base, candidates } => {
            AskValue::Choice(member.ask_specialization(base, candidates))
        }
        AskPayload::Pruning { factset } => AskValue::Irrelevant(member.irrelevant_elements(factset)),
        AskPayload::Prefetch { candidates } => AskValue::Prefetched(
            candidates
                .iter()
                .map(|(_, fs)| (fs.clone(), member.ask_concrete(fs)))
                .collect(),
        ),
    }
}

/// One member's seat on the coordinator side.
struct Slot {
    /// The member, when "home". `None` while checked out to the executor
    /// (a pending request exists) or lost to a poisoned worker.
    member: Option<Box<dyn CrowdMember>>,
    id: MemberId,
    excluded: bool,
    pending: Option<QuestionId>,
    /// Whether the pending question is speculative (wave prefetch). The
    /// service's wave staging counts these toward a session's outstanding
    /// wave without confusing them with committed dispatches.
    pending_speculative: bool,
}

/// Coordinator-side handle of the execution backend: slots, dispatch
/// bookkeeping and the response channel. Created per run by the engine.
pub(crate) struct Pool {
    exec: Box<dyn Executor>,
    slots: Vec<Slot>,
    shared: SharedCrowdCache,
    border: SharedBorder,
    sink: Arc<dyn EventSink>,
    /// Member-shard count the executor was built with (1 in simulation).
    shards: usize,
    next_question: u64,
    inflight: usize,
    spec_dispatched: u64,
    spec_hits: u64,
    spec_cancelled: u64,
    last_error: Option<RuntimeError>,
    /// Committed questions whose responses arrived while the coordinator
    /// was waiting on a *different* seat: `(question, seat, answer)`,
    /// `answer == None` when the question died (cancelled or the member
    /// was excluded). The service layer drains this with
    /// [`take_completed`](Pool::take_completed); the blocking [`ask`]
    /// path polls it for its own question id.
    completed: VecDeque<(QuestionId, usize, Option<AskValue>)>,
}

impl Pool {
    /// Start the executor (spawning workers on the threaded path) and seat
    /// the members.
    pub(crate) fn start(
        runtime: SessionRuntime,
        vocab: Arc<Vocabulary>,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        let SessionRuntime {
            members,
            options,
            sim,
        } = runtime;
        let slots: Vec<Slot> = members
            .into_iter()
            .map(|m| Slot {
                id: m.id(),
                member: Some(m),
                excluded: false,
                pending: None,
                pending_speculative: false,
            })
            .collect();
        let border = SharedBorder::new();
        // The sim executor is a single seeded scheduler: logically one
        // shard, so placement never perturbs its decision sequence.
        let shards = if sim.is_some() {
            1
        } else {
            options.shards.max(1)
        };
        let exec: Box<dyn Executor> = match sim {
            None => Box::new(ThreadedExecutor::spawn(
                options,
                border.clone(),
                vocab,
                Arc::clone(&sink),
            )),
            Some(config) => Box::new(SimExecutor::new(
                config,
                options,
                border.clone(),
                vocab,
                Arc::clone(&sink),
            )),
        };
        Pool {
            exec,
            slots,
            shared: SharedCrowdCache::with_stripes(
                oassis_crowd::DEFAULT_STRIPES.max(shards),
            ),
            border,
            sink,
            shards,
            next_question: 0,
            inflight: 0,
            spec_dispatched: 0,
            spec_hits: 0,
            spec_cancelled: 0,
            last_error: None,
            completed: VecDeque::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn member_id(&self, idx: usize) -> MemberId {
        self.slots[idx].id
    }

    /// The member, when home (synced and not poisoned).
    pub(crate) fn member(&self, idx: usize) -> Option<&dyn CrowdMember> {
        self.slots[idx].member.as_deref()
    }

    pub(crate) fn excluded(&self, idx: usize) -> bool {
        self.slots[idx].excluded
    }

    pub(crate) fn all_excluded(&self) -> bool {
        self.slots.iter().all(|s| s.excluded)
    }

    pub(crate) fn excluded_count(&self) -> usize {
        self.slots.iter().filter(|s| s.excluded).count()
    }

    pub(crate) fn shared(&self) -> &SharedCrowdCache {
        &self.shared
    }

    /// The most recent per-member failure (for `CrowdExhausted` chains).
    pub(crate) fn take_last_error(&mut self) -> Option<RuntimeError> {
        self.last_error.take()
    }

    /// Publish the coordinator's border so the executor can cancel stale
    /// speculative questions.
    pub(crate) fn publish_border(&self, state: &crate::border::ClassificationState) {
        self.border.publish(state);
    }

    /// Record a prefetched answer being consumed by the commit loop.
    pub(crate) fn note_speculation_hit(&mut self) {
        self.spec_hits += 1;
        self.sink.count_labeled(names::RUNTIME_SPECULATION, "hit", 1);
    }

    fn next_question_id(&mut self) -> QuestionId {
        self.next_question += 1;
        QuestionId(self.next_question)
    }

    fn set_inflight(&mut self, n: usize) {
        self.inflight = n;
        self.sink.gauge(names::RUNTIME_INFLIGHT, n as f64);
    }

    /// Check the member out of its slot and enqueue the question on its
    /// member's shard.
    fn dispatch(&mut self, idx: usize, payload: AskPayload, speculative: bool) -> QuestionId {
        let member = self.slots[idx]
            .member
            .take()
            .expect("dispatch requires the member to be home");
        let question = self.next_question_id();
        self.slots[idx].pending = Some(question);
        self.slots[idx].pending_speculative = speculative;
        self.set_inflight(self.inflight + 1);
        let label = if speculative { "speculative" } else { "committed" };
        self.sink.count_labeled(names::RUNTIME_DISPATCHED, label, 1);
        if speculative {
            let n = payload.question_count();
            self.spec_dispatched += n;
            self.sink
                .count_labeled(names::RUNTIME_SPECULATION, "dispatched", n);
        }
        let shard = self.shard_of(idx);
        if self.shards > 1 {
            self.sink
                .count_labeled(names::SHARD_DISPATCHED, &format!("shard{shard}"), 1);
        }
        self.exec.submit(AskRequest {
            question,
            member_idx: idx,
            member,
            payload,
            speculative,
            shard,
        });
        question
    }

    /// Apply one response: check the member back in, fold speculative
    /// answers into the shared cache, exclude failed members. A response
    /// that completes a *committed* question is buffered in
    /// [`completed`](Pool::completed) for whichever caller is waiting on
    /// it — never dropped, even when the coordinator was blocked on a
    /// different seat at the time.
    fn absorb(&mut self, response: AskResponse) {
        let idx = response.member_idx;
        debug_assert_eq!(self.slots[idx].pending, Some(response.question));
        self.slots[idx].pending = None;
        self.slots[idx].pending_speculative = false;
        self.set_inflight(self.inflight.saturating_sub(1));
        self.slots[idx].member = response.member;
        self.spec_cancelled += response.cancelled;
        let label = match &response.outcome {
            AskOutcome::Answered(_) => "answered",
            AskOutcome::Cancelled => "cancelled",
            AskOutcome::TimedOut { .. } => "timeout",
            AskOutcome::Poisoned { .. } => "poisoned",
        };
        self.sink.count_labeled(names::RUNTIME_RESOLVED, label, 1);
        let committed = !response.speculative;
        match response.outcome {
            AskOutcome::Answered(value) => {
                if committed {
                    self.completed.push_back((response.question, idx, Some(value)));
                } else {
                    match (&response.payload, &value) {
                        (AskPayload::Concrete { factset, .. }, AskValue::Support(s)) => {
                            self.shared.record(factset, self.slots[idx].id, *s);
                        }
                        (AskPayload::Prefetch { .. }, AskValue::Prefetched(answers)) => {
                            for (fs, s) in answers {
                                self.shared.record(fs, self.slots[idx].id, *s);
                            }
                        }
                        _ => {}
                    }
                }
            }
            AskOutcome::Cancelled => {
                if committed {
                    self.completed.push_back((response.question, idx, None));
                }
            }
            AskOutcome::TimedOut { attempts } => {
                self.exclude(
                    idx,
                    "timeout",
                    RuntimeError::new(RuntimeErrorKind::QuestionTimeout {
                        member: self.slots[idx].id,
                        question: response.question,
                        attempts,
                    }),
                );
                if committed {
                    self.completed.push_back((response.question, idx, None));
                }
            }
            AskOutcome::Poisoned { message } => {
                self.exclude(
                    idx,
                    "poisoned",
                    RuntimeError::new(RuntimeErrorKind::WorkerPoisoned {
                        member: self.slots[idx].id,
                    })
                    .with_source(Box::new(PanicPayload(message))),
                );
                if committed {
                    self.completed.push_back((response.question, idx, None));
                }
            }
        }
    }

    fn exclude(&mut self, idx: usize, label: &'static str, error: RuntimeError) {
        if !self.slots[idx].excluded {
            self.slots[idx].excluded = true;
            self.sink
                .count_labeled(names::RUNTIME_MEMBER_EXCLUDED, label, 1);
        }
        self.last_error = Some(error);
    }

    /// Block until `idx` has no in-flight question, absorbing every
    /// response that arrives meanwhile (including other members').
    pub(crate) fn sync(&mut self, idx: usize) {
        while self.slots[idx].pending.is_some() {
            let response = self
                .exec
                .recv()
                .expect("executor hung up with requests in flight");
            self.absorb(response);
        }
    }

    /// A committed (blocking) ask: waits for the member's answer. `None`
    /// means the member was excluded (timeout/poisoned) along the way.
    ///
    /// Other seats' committed answers arriving meanwhile stay buffered in
    /// [`completed`](Pool::completed) for their own callers.
    pub(crate) fn ask(&mut self, idx: usize, payload: AskPayload) -> Option<AskValue> {
        self.sync(idx);
        if self.slots[idx].excluded || self.slots[idx].member.is_none() {
            return None;
        }
        let question = self.dispatch(idx, payload, false);
        loop {
            if let Some(pos) = self.completed.iter().position(|(q, _, _)| *q == question) {
                let (_, _, value) = self.completed.remove(pos).expect("position just found");
                return value;
            }
            if !self.pump_one() {
                return None;
            }
        }
    }

    /// Whether `idx` may take a committed question right now: home, not
    /// excluded, nothing pending. (Same condition as
    /// [`can_speculate`](Pool::can_speculate); named for the service
    /// layer's committed-dispatch path.)
    pub(crate) fn available(&self, idx: usize) -> bool {
        self.can_speculate(idx)
    }

    /// Non-blocking committed dispatch for the service layer. `None` when
    /// the seat cannot take a question (excluded, checked out, or lost).
    /// The answer arrives later via [`take_completed`](Pool::take_completed).
    pub(crate) fn dispatch_committed(
        &mut self,
        idx: usize,
        payload: AskPayload,
    ) -> Option<QuestionId> {
        if !self.available(idx) {
            return None;
        }
        Some(self.dispatch(idx, payload, false))
    }

    /// Absorb one response if any work is in flight. Returns `false` when
    /// nothing is in flight (the caller should stop pumping).
    pub(crate) fn pump_one(&mut self) -> bool {
        if self.inflight == 0 {
            return false;
        }
        let response = self
            .exec
            .recv()
            .expect("executor hung up with requests in flight");
        self.absorb(response);
        true
    }

    /// Drain the committed-response buffer: `(question, seat, answer)`
    /// triples in arrival order; `answer == None` means the question died
    /// (cancelled or the member was excluded).
    pub(crate) fn take_completed(&mut self) -> Vec<(QuestionId, usize, Option<AskValue>)> {
        self.completed.drain(..).collect()
    }

    /// Whether `idx` may receive a speculative question right now.
    pub(crate) fn can_speculate(&self, idx: usize) -> bool {
        let slot = &self.slots[idx];
        !slot.excluded && slot.pending.is_none() && slot.member.is_some()
    }

    /// Whether `idx` currently has a *speculative* question in flight.
    /// The service's wave staging counts these toward a session's
    /// outstanding wave.
    pub(crate) fn pending_speculative(&self, idx: usize) -> bool {
        self.slots[idx].pending.is_some() && self.slots[idx].pending_speculative
    }

    /// The member shard seat `idx` is pinned to (consistent placement over
    /// the member id; always 0 with one shard or in simulation).
    pub(crate) fn shard_of(&self, idx: usize) -> usize {
        oassis_crowd::placement::member_shard(self.slots[idx].id, self.shards)
    }

    /// Dispatch a speculative prefetch batch for `idx` — the predicted
    /// next question plus fallback candidates, answered in one simulated
    /// crowd round-trip (a multi-question form).
    pub(crate) fn speculate(&mut self, idx: usize, candidates: Vec<(Assignment, FactSet)>) {
        if candidates.is_empty() || !self.can_speculate(idx) {
            return;
        }
        self.dispatch(idx, AskPayload::Prefetch { candidates }, true);
    }

    /// Final accounting: anything dispatched speculatively that was neither
    /// consumed nor cancelled was wasted crowd effort.
    pub(crate) fn finish(&mut self) {
        let wasted = self
            .spec_dispatched
            .saturating_sub(self.spec_hits + self.spec_cancelled);
        if wasted > 0 {
            self.sink
                .count_labeled(names::RUNTIME_SPECULATION, "wasted", wasted);
        }
    }

    fn shutdown(&mut self) {
        self.exec.begin_shutdown();
        // Drain any straggler responses so workers never block on send.
        while self.inflight > 0 {
            match self.exec.recv() {
                Some(response) => {
                    self.absorb(response);
                }
                None => break,
            }
        }
        self.exec.finish_shutdown();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_crowd::{ResponseModel, ScriptedMember, UnreliableMember};
    use oassis_obs::InMemorySink;
    use std::collections::HashMap;

    fn scripted(id: u32, support: f64) -> Box<dyn CrowdMember> {
        Box::new(ScriptedMember::new(MemberId(id), HashMap::new(), support))
    }

    fn test_vocab() -> Arc<Vocabulary> {
        Arc::new(
            oassis_store::ontology::figure1_ontology()
                .vocabulary()
                .clone(),
        )
    }

    fn concrete_payload() -> AskPayload {
        AskPayload::Concrete {
            assignment: Assignment::single_valued(Vec::new()),
            factset: FactSet::new(),
        }
    }

    #[test]
    fn runtime_builder_clamps_and_sticks() {
        let rt = SessionRuntime::new(Vec::new())
            .workers(0)
            .question_timeout(Duration::from_millis(5))
            .max_retries(7)
            .shards(0);
        assert_eq!(rt.options().workers, 1);
        assert_eq!(rt.options().question_timeout, Duration::from_millis(5));
        assert_eq!(rt.options().max_retries, 7);
        assert_eq!(rt.options().shards, 1);
        assert!(rt.is_empty());
        assert!(!rt.is_simulated());
        assert!(rt.simulated(SimConfig::new(0)).is_simulated());
    }

    #[test]
    fn sharded_executor_round_trips_every_member() {
        let members: Vec<Box<dyn CrowdMember>> =
            (0..16).map(|i| scripted(i, f64::from(i) / 16.0)).collect();
        let runtime = SessionRuntime::new(members).workers(2).shards(4);
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        let shards: std::collections::HashSet<usize> =
            (0..16).map(|i| pool.shard_of(i)).collect();
        assert!(shards.len() > 1, "16 members land on more than one shard");
        assert!(shards.iter().all(|&s| s < 4));
        for i in 0..16 {
            let value = pool.ask(i, concrete_payload());
            let expected = f64::from(i as u32) / 16.0;
            assert!(
                matches!(value, Some(AskValue::Support(s)) if (s - expected).abs() < 1e-12),
                "member {i} answered through its shard"
            );
        }
    }

    #[test]
    fn shard_placement_is_stable_across_pools() {
        let make = || {
            let members: Vec<Box<dyn CrowdMember>> =
                (0..32).map(|i| scripted(i, 0.5)).collect();
            Pool::start(
                SessionRuntime::new(members).shards(8),
                test_vocab(),
                oassis_obs::null_sink(),
            )
        };
        let (a, b) = (make(), make());
        for i in 0..32 {
            assert_eq!(a.shard_of(i), b.shard_of(i), "member {i} moved shards");
        }
    }

    #[test]
    fn committed_ask_round_trips_through_a_worker() {
        let runtime = SessionRuntime::new(vec![scripted(1, 0.75)]).workers(2);
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        let value = pool.ask(0, concrete_payload());
        assert!(matches!(value, Some(AskValue::Support(s)) if (s - 0.75).abs() < 1e-12));
        assert!(!pool.excluded(0));
    }

    #[test]
    fn committed_ask_round_trips_through_the_sim_executor() {
        let trace = SimTrace::handle();
        let runtime = SessionRuntime::new(vec![scripted(1, 0.75)])
            .simulated(SimConfig::new(7).record_into(Arc::clone(&trace)));
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        let value = pool.ask(0, concrete_payload());
        assert!(matches!(value, Some(AskValue::Support(s)) if (s - 0.75).abs() < 1e-12));
        drop(pool);
        let trace = trace.lock().unwrap();
        assert_eq!(trace.decisions, vec![0], "one request, FIFO decision");
        let transcript = trace.transcript();
        assert!(transcript.contains("dispatch q1"), "{transcript}");
        assert!(transcript.contains("answered(attempts=1)"), "{transcript}");
    }

    /// The deadline tie-break rule: delivery at exactly the deadline wins.
    #[test]
    fn verdict_delivers_exactly_at_the_deadline() {
        let timeout = Duration::from_millis(250);
        assert_eq!(
            channel_verdict(Some(timeout), timeout),
            ChannelVerdict::Deliver(timeout)
        );
        assert_eq!(
            channel_verdict(Some(timeout + Duration::from_nanos(1)), timeout),
            ChannelVerdict::Expire { dropped: false }
        );
        assert_eq!(
            channel_verdict(None, timeout),
            ChannelVerdict::Expire { dropped: true }
        );
        assert_eq!(
            channel_verdict(Some(Duration::ZERO), timeout),
            ChannelVerdict::Deliver(Duration::ZERO)
        );
    }

    /// Regression for the timeout-vs-late-answer race: a member whose
    /// answer lands exactly on the deadline must be committed, never
    /// excluded — checked on the simulated executor, where the race is
    /// replayable.
    #[test]
    fn answer_exactly_at_deadline_is_committed_not_excluded() {
        let timeout = Duration::from_millis(250);
        let member: Box<dyn CrowdMember> = Box::new(
            UnreliableMember::new(scripted(1, 0.5), ResponseModel::instant(), 0)
                .with_delay_script([Some(timeout)]),
        );
        let mem = InMemorySink::shared();
        let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
        let runtime = SessionRuntime::new(vec![member])
            .question_timeout(timeout)
            .simulated(SimConfig::new(0));
        let mut pool = Pool::start(runtime, test_vocab(), sink);
        let value = pool.ask(0, concrete_payload());
        assert!(matches!(value, Some(AskValue::Support(s)) if (s - 0.5).abs() < 1e-12));
        assert!(!pool.excluded(0), "deadline tie must not exclude");
        drop(pool);
        let snap = mem.snapshot();
        assert_eq!(snap.counter_across_labels(names::RUNTIME_TIMEOUT), 0);
        assert_eq!(snap.counter_across_labels(names::RUNTIME_MEMBER_EXCLUDED), 0);
        assert_eq!(
            snap.counter(&format!("{}[answered]", names::RUNTIME_RESOLVED)),
            1
        );
    }

    #[test]
    fn dropping_member_is_retried_then_excluded() {
        let member: Box<dyn CrowdMember> = Box::new(UnreliableMember::new(
            scripted(1, 0.5),
            ResponseModel::instant().with_drop_probability(1.0),
            3,
        ));
        let runtime = SessionRuntime::new(vec![member])
            .workers(1)
            .question_timeout(Duration::from_millis(2))
            .max_retries(2);
        let mem = InMemorySink::shared();
        let sink: Arc<dyn EventSink> = Arc::clone(&mem) as Arc<dyn EventSink>;
        let mut pool = Pool::start(runtime, test_vocab(), sink);
        let value = pool.ask(0, concrete_payload());
        assert!(value.is_none());
        assert!(pool.excluded(0));
        assert!(pool.all_excluded());
        let err = pool.take_last_error().expect("timeout recorded");
        assert!(matches!(
            err.kind(),
            RuntimeErrorKind::QuestionTimeout { attempts: 3, .. }
        ));
        let snap = mem.snapshot();
        assert_eq!(snap.counter(&format!("{}[drop]", names::RUNTIME_TIMEOUT)), 3);
        assert_eq!(snap.counter(names::RUNTIME_RETRY), 2);
        assert_eq!(
            snap.counter(&format!("{}[timeout]", names::RUNTIME_MEMBER_EXCLUDED)),
            1
        );
        assert_eq!(
            snap.counter(&format!("{}[committed]", names::RUNTIME_DISPATCHED)),
            1
        );
        assert_eq!(
            snap.counter(&format!("{}[timeout]", names::RUNTIME_RESOLVED)),
            1
        );
    }

    #[test]
    fn panicking_member_poisons_and_is_discarded() {
        struct Bomb;
        impl CrowdMember for Bomb {
            fn id(&self) -> MemberId {
                MemberId(9)
            }
            fn ask_concrete(&mut self, _a: &FactSet) -> f64 {
                panic!("boom")
            }
            fn ask_specialization(
                &mut self,
                _base: &FactSet,
                _candidates: &[FactSet],
            ) -> Option<(usize, f64)> {
                None
            }
            fn irrelevant_elements(&mut self, _a: &FactSet) -> Vec<ElementId> {
                Vec::new()
            }
        }
        let runtime = SessionRuntime::new(vec![Box::new(Bomb)]).workers(1);
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        let value = pool.ask(0, concrete_payload());
        assert!(value.is_none());
        assert!(pool.excluded(0));
        assert!(pool.member(0).is_none(), "poisoned member is discarded");
        let err = pool.take_last_error().expect("poisoning recorded");
        assert!(matches!(
            err.kind(),
            RuntimeErrorKind::WorkerPoisoned {
                member: MemberId(9)
            }
        ));
        let source = std::error::Error::source(&err).expect("panic payload chained");
        assert!(source.to_string().contains("boom"));
    }

    #[test]
    fn speculative_answers_land_in_the_shared_cache() {
        let runtime = SessionRuntime::new(vec![scripted(4, 0.6)]).workers(1);
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        assert!(pool.can_speculate(0));
        pool.speculate(
            0,
            vec![(Assignment::single_valued(Vec::new()), FactSet::new())],
        );
        assert!(!pool.can_speculate(0), "one in-flight question per member");
        pool.sync(0);
        assert_eq!(pool.shared().lookup(&FactSet::new(), MemberId(4)), Some(0.6));
        assert!(pool.can_speculate(0));
    }

    #[test]
    fn shutdown_joins_workers_with_requests_in_flight() {
        let member: Box<dyn CrowdMember> = Box::new(UnreliableMember::new(
            scripted(1, 0.5),
            ResponseModel::latency(Duration::from_millis(5)),
            1,
        ));
        let runtime = SessionRuntime::new(vec![member])
            .workers(2)
            .question_timeout(Duration::from_millis(50));
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        pool.speculate(
            0,
            vec![(Assignment::single_valued(Vec::new()), FactSet::new())],
        );
        drop(pool); // must not hang or leak the worker
    }

    /// A dropping member on the sim executor pays only virtual time: huge
    /// timeouts are free, which is what de-flakes the integration suite.
    #[test]
    fn sim_executor_timeouts_cost_no_wall_clock() {
        let member: Box<dyn CrowdMember> = Box::new(UnreliableMember::new(
            scripted(1, 0.5),
            ResponseModel::instant().with_drop_probability(1.0),
            3,
        ));
        let runtime = SessionRuntime::new(vec![member])
            .question_timeout(Duration::from_secs(3600))
            .max_retries(2)
            .simulated(SimConfig::new(0));
        let wall = std::time::Instant::now();
        let mut pool = Pool::start(runtime, test_vocab(), oassis_obs::null_sink());
        let value = pool.ask(0, concrete_payload());
        assert!(value.is_none());
        assert!(pool.excluded(0));
        assert!(
            wall.elapsed() < Duration::from_secs(60),
            "three one-hour timeouts must pass in virtual time"
        );
    }
}
