//! The deterministic simulation executor (FoundationDB-style).
//!
//! Instead of worker threads racing a wall clock, [`SimExecutor`] keeps
//! every dispatched [`AskRequest`](super::AskRequest) in a pending set and
//! serves exactly one per `recv()`, **chosen by a seeded scheduler** — so
//! the scheduler, not the OS, owns every interleaving decision. Waiting
//! (member latency, timeouts) happens on a [`VirtualClock`], which makes a
//! whole concurrent session — timeouts, retries, speculative-prefetch
//! cancellation, member exclusion — replay bit-identically from one `u64`
//! seed, at zero wall-clock cost.
//!
//! The executor can additionally:
//!
//! * record a [`SimTrace`] — the transcript (question order, retries,
//!   exclusions) plus the raw scheduling-decision sequence, which is what
//!   the `oassis-simtest` shrinker minimizes;
//! * replay a **scripted** decision sequence instead of drawing from the
//!   seed (decisions beyond the script's end fall back to FIFO), which is
//!   how a shrunk failure is pinned down to a minimal fault trace.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_obs::EventSink;
use oassis_vocab::Vocabulary;

use super::clock::{Clock, VirtualClock};
use super::{serve, AskOutcome, AskPayload, AskRequest, AskResponse, AskValue, Executor,
    RuntimeOptions};
use crate::border::SharedBorder;

/// Shared handle to a [`SimTrace`] being recorded by a running simulation.
pub type SimTraceHandle = Arc<Mutex<SimTrace>>;

/// What a simulated run did: a human-readable transcript plus the raw
/// scheduling decisions, recorded when a handle is attached via
/// [`SimConfig::record_into`].
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// One line per scheduler event (dispatch, serve, chaos injection).
    pub lines: Vec<String>,
    /// The index chosen from the pending set at each `recv()`. Feeding
    /// these back through [`SimConfig::scripted`] replays the same run.
    pub decisions: Vec<usize>,
}

impl SimTrace {
    /// A fresh, empty trace behind a shareable handle.
    pub fn handle() -> SimTraceHandle {
        Arc::new(Mutex::new(SimTrace::default()))
    }

    /// The transcript as one newline-joined string. Two runs with the same
    /// seed (and script/chaos settings) produce byte-identical transcripts.
    pub fn transcript(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }

    /// How many recorded decisions deviate from FIFO order (index 0).
    /// This is the size of a shrunk failure's "minimal fault trace".
    pub fn non_fifo_decisions(&self) -> usize {
        self.decisions.iter().filter(|&&d| d != 0).count()
    }
}

/// Fault injections the simulation can apply, used to prove the harness
/// catches real bugs. Not part of the public API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimChaos {
    /// When a non-FIFO scheduling decision serves a speculative prefetch
    /// batch, swap the first two answers' supports — corrupting the
    /// shared crowd cache exactly the way a lost-ordering bug would.
    SwapPrefetchAnswers,
}

/// Configuration of one simulated session, attached to a
/// [`SessionRuntime`](super::SessionRuntime) via
/// [`simulated`](super::SessionRuntime::simulated).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub(crate) seed: u64,
    pub(crate) script: Option<Vec<usize>>,
    pub(crate) trace: Option<SimTraceHandle>,
    pub(crate) chaos: Option<SimChaos>,
}

impl SimConfig {
    /// A simulation whose scheduler draws every interleaving decision from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            script: None,
            trace: None,
            chaos: None,
        }
    }

    /// Replace the seeded scheduler with an explicit decision script: the
    /// k-th `recv()` picks pending request `decisions[k]` (clamped to the
    /// pending set; past the script's end, FIFO). Used by the shrinker.
    pub fn scripted(mut self, decisions: Vec<usize>) -> Self {
        self.script = Some(decisions);
        self
    }

    /// Record the run's transcript and decision sequence into `trace`.
    pub fn record_into(mut self, trace: SimTraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enable a fault injection (test-harness use only).
    #[doc(hidden)]
    pub fn chaos(mut self, chaos: SimChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Single-threaded deterministic executor: see the module docs.
pub(crate) struct SimExecutor {
    pending: VecDeque<AskRequest>,
    border: SharedBorder,
    vocab: Arc<Vocabulary>,
    sink: Arc<dyn EventSink>,
    options: RuntimeOptions,
    clock: VirtualClock,
    rng: SmallRng,
    script: Option<VecDeque<usize>>,
    trace: Option<SimTraceHandle>,
    chaos: Option<SimChaos>,
}

impl SimExecutor {
    pub(crate) fn new(
        config: SimConfig,
        options: RuntimeOptions,
        border: SharedBorder,
        vocab: Arc<Vocabulary>,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        SimExecutor {
            pending: VecDeque::new(),
            border,
            vocab,
            sink,
            options,
            clock: VirtualClock::new(),
            rng: SmallRng::seed_from_u64(config.seed),
            script: config.script.map(VecDeque::from),
            trace: config.trace,
            chaos: config.chaos,
        }
    }

    fn note(&self, line: String) {
        if let Some(trace) = &self.trace {
            trace.lock().expect("sim trace poisoned").lines.push(line);
        }
    }

    fn record_decision(&self, choice: usize) {
        if let Some(trace) = &self.trace {
            trace
                .lock()
                .expect("sim trace poisoned")
                .decisions
                .push(choice);
        }
    }

    /// Pick the pending index to serve next: scripted if a script is
    /// attached (FIFO past its end), seeded otherwise.
    fn decide(&mut self, pending: usize) -> usize {
        match &mut self.script {
            Some(script) => script.pop_front().unwrap_or(0).min(pending - 1),
            None if pending == 1 => 0,
            None => self.rng.random_range(0..pending),
        }
    }
}

fn payload_kind(payload: &AskPayload) -> String {
    match payload {
        AskPayload::Concrete { .. } => "concrete".into(),
        AskPayload::Specialization { .. } => "specialization".into(),
        AskPayload::Pruning { .. } => "pruning".into(),
        AskPayload::Prefetch { candidates } => format!("prefetch[{}]", candidates.len()),
    }
}

fn outcome_kind(response: &AskResponse) -> String {
    match &response.outcome {
        AskOutcome::Answered(_) => format!("answered(attempts={})", response.attempts),
        AskOutcome::Cancelled => format!("cancelled({} stale)", response.cancelled),
        AskOutcome::TimedOut { attempts } => format!("timeout(attempts={attempts})"),
        AskOutcome::Poisoned { .. } => "poisoned".into(),
    }
}

impl Executor for SimExecutor {
    fn submit(&mut self, request: AskRequest) {
        self.note(format!(
            "dispatch {} member={} kind={}{}",
            request.question,
            request.member.id(),
            payload_kind(&request.payload),
            if request.speculative { " spec" } else { "" },
        ));
        self.pending.push_back(request);
    }

    fn recv(&mut self) -> Option<AskResponse> {
        if self.pending.is_empty() {
            return None;
        }
        let pending = self.pending.len();
        let choice = self.decide(pending);
        self.record_decision(choice);
        let request = self
            .pending
            .remove(choice)
            .expect("choice is clamped to the pending set");
        let question = request.question;
        let mut response = serve(
            request,
            &self.border,
            &self.vocab,
            &self.sink,
            &self.options,
            &self.clock,
        );
        if self.chaos == Some(SimChaos::SwapPrefetchAnswers) && choice != 0 {
            if let AskOutcome::Answered(AskValue::Prefetched(answers)) = &mut response.outcome {
                if answers.len() >= 2 && answers[0].1 != answers[1].1 {
                    let (a, b) = (answers[0].1, answers[1].1);
                    answers[0].1 = b;
                    answers[1].1 = a;
                    self.note(format!("chaos swap-prefetch {question}"));
                }
            }
        }
        self.note(format!(
            "t={}ns decide {}/{} serve {} -> {}",
            self.clock.now().as_nanos(),
            choice,
            pending,
            question,
            outcome_kind(&response),
        ));
        Some(response)
    }

    fn begin_shutdown(&mut self) {}

    fn finish_shutdown(&mut self) {}
}
