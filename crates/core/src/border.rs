//! Classification by inference (Observation 4.4).
//!
//! One crowd answer classifies many assignments: if `φ` is significant, so
//! is every generalization `φ' ≤ φ`; if `φ` is insignificant, so is every
//! specialization `φ' ≥ φ`. [`ClassificationState`] stores the *borders* of
//! that knowledge — the maximal known-significant and minimal
//! known-insignificant assignments — plus explicit per-assignment decisions
//! (which take precedence when noisy crowd answers conflict with inference)
//! and the user-guided-pruning value list of Section 6.2.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use oassis_vocab::Vocabulary;

use crate::assignment::Assignment;
use crate::value::AValue;

/// The classification of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Known (or inferred) significant.
    Significant,
    /// Known (or inferred) insignificant.
    Insignificant,
    /// Not yet decidable.
    Unclassified,
}

/// Border-based classification knowledge for one mining run.
#[derive(Debug, Clone, Default)]
pub struct ClassificationState {
    /// Maximal known-significant assignments.
    sig: Vec<Assignment>,
    /// Minimal known-insignificant assignments.
    insig: Vec<Assignment>,
    /// Explicit decisions (override inference on conflicts).
    explicit: HashMap<Assignment, bool>,
    /// Values declared irrelevant by user-guided pruning: any assignment
    /// containing a specialization of one of these is insignificant.
    pruned: Vec<AValue>,
}

impl ClassificationState {
    /// Fresh, all-unclassified state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an explicit significance decision for `phi`.
    pub fn mark_significant(&mut self, phi: &Assignment, vocab: &Vocabulary) {
        self.explicit.insert(phi.clone(), true);
        // Keep only maximal significant witnesses.
        if self.sig.iter().any(|w| phi.leq(w, vocab)) {
            return;
        }
        self.sig.retain(|w| !w.leq(phi, vocab));
        self.sig.push(phi.clone());
    }

    /// Record an explicit insignificance decision for `phi`.
    pub fn mark_insignificant(&mut self, phi: &Assignment, vocab: &Vocabulary) {
        self.explicit.insert(phi.clone(), false);
        if self.insig.iter().any(|w| w.leq(phi, vocab)) {
            return;
        }
        self.insig.retain(|w| !phi.leq(w, vocab));
        self.insig.push(phi.clone());
    }

    /// Record a pruned (irrelevant) value: every assignment involving the
    /// value or one of its specializations becomes insignificant.
    pub fn mark_pruned(&mut self, value: AValue) {
        if !self.pruned.contains(&value) {
            self.pruned.push(value);
        }
    }

    /// The pruned values recorded so far.
    pub fn pruned_values(&self) -> &[AValue] {
        &self.pruned
    }

    /// Classify `phi` from current knowledge.
    pub fn status(&self, phi: &Assignment, vocab: &Vocabulary) -> Status {
        if let Some(&sig) = self.explicit.get(phi) {
            return if sig {
                Status::Significant
            } else {
                Status::Insignificant
            };
        }
        if self.prune_hits(phi, vocab) {
            return Status::Insignificant;
        }
        if self.insig.iter().any(|w| w.leq(phi, vocab)) {
            return Status::Insignificant;
        }
        if self.sig.iter().any(|w| phi.leq(w, vocab)) {
            return Status::Significant;
        }
        Status::Unclassified
    }

    /// Whether `phi` contains a value that specializes a pruned value.
    fn prune_hits(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        if self.pruned.is_empty() {
            return false;
        }
        let value_hit = (0..phi.nvars()).any(|x| {
            phi.values(x)
                .iter()
                .any(|v| self.pruned.iter().any(|p| p.leq(v, vocab)))
        });
        value_hit
            || phi.more_facts().iter().any(|f| {
                self.pruned.iter().any(|p| match p {
                    AValue::Elem(e) => {
                        vocab.elem_leq(*e, f.subject) || vocab.elem_leq(*e, f.object)
                    }
                    AValue::Rel(r) => vocab.rel_leq(*r, f.relation),
                })
            })
    }

    /// Shorthand for `status(...) == Significant`.
    pub fn is_significant(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Significant
    }

    /// Shorthand for `status(...) == Insignificant`.
    pub fn is_insignificant(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Insignificant
    }

    /// Shorthand for `status(...) == Unclassified`.
    pub fn is_unclassified(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Unclassified
    }

    /// The maximal known-significant assignments (the positive border).
    pub fn significant_border(&self) -> &[Assignment] {
        &self.sig
    }

    /// The minimal known-insignificant assignments (the negative border).
    pub fn insignificant_border(&self) -> &[Assignment] {
        &self.insig
    }

    /// All explicitly decided assignments with their decision.
    pub fn explicit_decisions(&self) -> impl Iterator<Item = (&Assignment, bool)> {
        self.explicit.iter().map(|(a, &b)| (a, b))
    }

    /// Whether `phi` was explicitly decided (asked), not just inferred.
    pub fn explicitly_decided(&self, phi: &Assignment) -> bool {
        self.explicit.contains_key(phi)
    }
}

/// A synchronized, read-mostly view of the coordinator's overall
/// classification knowledge, shared with the session runtime's workers.
///
/// The coordinator [`publish`](Self::publish)es its state after each
/// scheduling turn; workers consult it when they pick up a *speculative*
/// question and cancel the ask if the target assignment has meanwhile been
/// classified — the commit loop never asks about classified nodes, so a
/// cancellation can never starve it. The epoch counter lets readers detect
/// staleness cheaply without taking the lock.
///
/// Cloning yields another handle to the same shared view.
#[derive(Debug, Clone, Default)]
pub struct SharedBorder {
    state: Arc<RwLock<ClassificationState>>,
    epoch: Arc<AtomicU64>,
}

impl SharedBorder {
    /// A fresh all-unclassified shared view (epoch 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the shared view with a copy of `state`, bumping the epoch.
    pub fn publish(&self, state: &ClassificationState) {
        *self.state.write().expect("shared border poisoned") = state.clone();
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// How many times [`publish`](Self::publish) has run.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether `phi` is already classified (significant *or* insignificant)
    /// in the last published view.
    pub fn is_classified(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.state
            .read()
            .expect("shared border poisoned")
            .status(phi, vocab)
            != Status::Unclassified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Vocabulary;

    fn vocab() -> Vocabulary {
        figure1_ontology().vocabulary().clone()
    }

    fn a(vocab: &Vocabulary, y: &str, x: &str) -> Assignment {
        Assignment::single_valued([
            AValue::Elem(vocab.element(y).unwrap()),
            AValue::Elem(vocab.element(x).unwrap()),
        ])
    }

    #[test]
    fn significance_propagates_to_generalizations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Sport", "Central Park"), &v),
            Status::Significant
        );
        assert_eq!(st.status(&a(&v, "Sport", "Park"), &v), Status::Significant);
        // A specialization stays unclassified.
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Significant,
            "explicit"
        );
        assert_eq!(
            st.status(&a(&v, "Baseball", "Central Park"), &v),
            Status::Unclassified
        );
    }

    #[test]
    fn insignificance_propagates_to_specializations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_insignificant(&a(&v, "Ball Game", "Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Basketball", "Central Park"), &v),
            Status::Insignificant
        );
        assert_eq!(st.status(&a(&v, "Sport", "Park"), &v), Status::Unclassified);
    }

    #[test]
    fn borders_keep_only_extremes() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_significant(&a(&v, "Sport", "Park"), &v);
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(st.significant_border().len(), 1, "general witness absorbed");
        st.mark_insignificant(&a(&v, "Baseball", "Central Park"), &v);
        st.mark_insignificant(&a(&v, "Ball Game", "Central Park"), &v);
        assert_eq!(
            st.insignificant_border().len(),
            1,
            "specific witness absorbed"
        );
    }

    #[test]
    fn explicit_decision_overrides_inference() {
        let v = vocab();
        let mut st = ClassificationState::new();
        // Noisy crowd: general insignificant but specific answered significant.
        st.mark_insignificant(&a(&v, "Sport", "Park"), &v);
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Significant,
            "explicit answer wins over inherited insignificance"
        );
        assert!(st.explicitly_decided(&a(&v, "Biking", "Central Park")));
        assert!(!st.explicitly_decided(&a(&v, "Baseball", "Park")));
    }

    #[test]
    fn pruning_kills_value_and_specializations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_pruned(AValue::Elem(v.element("Ball Game").unwrap()));
        assert_eq!(
            st.status(&a(&v, "Basketball", "Central Park"), &v),
            Status::Insignificant
        );
        assert_eq!(
            st.status(&a(&v, "Ball Game", "Park"), &v),
            Status::Insignificant
        );
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Unclassified
        );
        assert_eq!(st.pruned_values().len(), 1);
        st.mark_pruned(AValue::Elem(v.element("Ball Game").unwrap()));
        assert_eq!(st.pruned_values().len(), 1, "dedup");
    }

    #[test]
    fn pruning_applies_to_more_facts() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_pruned(AValue::Elem(v.element("Boathouse").unwrap()));
        let rent = oassis_vocab::Fact::new(
            v.element("Rent Bikes").unwrap(),
            v.relation("doAt").unwrap(),
            v.element("Boathouse").unwrap(),
        );
        let base = a(&v, "Biking", "Central Park");
        let with_more = base.with_more_fact(rent);
        assert_eq!(st.status(&with_more, &v), Status::Insignificant);
        assert_eq!(st.status(&base, &v), Status::Unclassified);
    }
}
