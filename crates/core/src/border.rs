//! Classification by inference (Observation 4.4).
//!
//! One crowd answer classifies many assignments: if `φ` is significant, so
//! is every generalization `φ' ≤ φ`; if `φ` is insignificant, so is every
//! specialization `φ' ≥ φ`. [`ClassificationState`] stores the *borders* of
//! that knowledge — the maximal known-significant and minimal
//! known-insignificant assignments — plus explicit per-assignment decisions
//! (which take precedence when noisy crowd answers conflict with inference)
//! and the user-guided-pruning value list of Section 6.2.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use oassis_vocab::Vocabulary;

use crate::assignment::Assignment;
use crate::value::AValue;

/// Per-witness index metadata: a root-ancestor fingerprint plus the
/// variable-only weight, both monotone along `≤` (the mask on any DAG, the
/// weight only on forest taxonomies — see [`WitnessMeta::mask_of`]).
#[derive(Debug, Clone, Copy)]
struct WitnessMeta {
    mask: u64,
    vweight: usize,
}

impl WitnessMeta {
    fn of(phi: &Assignment, vocab: &Vocabulary) -> Self {
        WitnessMeta {
            mask: Self::mask_of(phi, vocab),
            vweight: phi.weight() - phi.more_facts().len(),
        }
    }

    /// Fold every value's taxonomy [`root_mask`](oassis_vocab::Taxonomy::root_mask)
    /// into one `u64`, rotated per variable position (and per fact
    /// component) so different slots rarely collide.
    ///
    /// Soundness: `φ ≤ φ'` demands, per variable, that each value of `φ` is
    /// dominated by a value of `φ'` *in the same slot*, and that each MORE
    /// fact of `φ` is implied by some fact of `φ'`. Since `v ≤ v'` implies
    /// `root_mask(v) ⊆ root_mask(v')` and rotation/OR preserve the subset
    /// direction slot-wise, `φ ≤ φ'` implies `mask(φ) ⊆ mask(φ')`. Hash
    /// collisions only make masks more alike, i.e. lose pruning, never
    /// soundness.
    fn mask_of(phi: &Assignment, vocab: &Vocabulary) -> u64 {
        let elems = vocab.elements_order();
        let rels = vocab.relations_order();
        let mut mask = 0u64;
        for x in 0..phi.nvars() {
            let rot = ((x as u32) * 13) % 64;
            for v in phi.values(x) {
                let m = match v {
                    AValue::Elem(e) => elems.root_mask(*e),
                    AValue::Rel(r) => rels.root_mask(*r).rotate_left(32),
                };
                mask |= m.rotate_left(rot);
            }
        }
        for f in phi.more_facts() {
            mask |= elems.root_mask(f.subject).rotate_left(17)
                | rels.root_mask(f.relation).rotate_left(31)
                | elems.root_mask(f.object).rotate_left(47);
        }
        mask
    }
}

/// Epoch-tagged per-assignment status memo. The epoch is the owning state's
/// mutation counter; a mismatch invalidates the whole map.
#[derive(Debug, Default)]
struct StatusCache {
    epoch: u64,
    map: HashMap<Assignment, Status>,
}

/// Cap on memoized statuses; beyond this, misses are recomputed but not
/// stored (the DAG frontier a run revisits is far smaller than this).
const STATUS_CACHE_CAP: usize = 1 << 15;

/// The classification of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Known (or inferred) significant.
    Significant,
    /// Known (or inferred) insignificant.
    Insignificant,
    /// Not yet decidable.
    Unclassified,
}

/// Border-based classification knowledge for one mining run.
///
/// Two modes share one observable behavior: the default *indexed* state
/// keeps per-witness [`WitnessMeta`] for a prefilter plus an epoch-tagged
/// status memo, while [`unindexed`](Self::unindexed) keeps the plain linear
/// scans (the reference path benchmarks compare against). Debug builds
/// cross-check every indexed answer against the reference scan.
#[derive(Debug)]
pub struct ClassificationState {
    /// Maximal known-significant assignments.
    sig: Vec<Assignment>,
    /// Minimal known-insignificant assignments.
    insig: Vec<Assignment>,
    /// Index metadata parallel to `sig` / `insig` (empty when unindexed).
    sig_meta: Vec<WitnessMeta>,
    insig_meta: Vec<WitnessMeta>,
    /// Explicit decisions (override inference on conflicts).
    explicit: HashMap<Assignment, bool>,
    /// Values declared irrelevant by user-guided pruning: any assignment
    /// containing a specialization of one of these is insignificant.
    pruned: Vec<AValue>,
    /// Whether the prefilter + memo are active.
    indexed: bool,
    /// Mutation counter; tags the status memo.
    version: u64,
    /// Memoized `status()` answers for the current version.
    cache: Mutex<StatusCache>,
    /// Witnesses skipped by the prefilter since the last
    /// [`take_index_pruned`](Self::take_index_pruned).
    filtered: AtomicU64,
}

impl Default for ClassificationState {
    fn default() -> Self {
        ClassificationState {
            sig: Vec::new(),
            insig: Vec::new(),
            sig_meta: Vec::new(),
            insig_meta: Vec::new(),
            explicit: HashMap::new(),
            pruned: Vec::new(),
            indexed: true,
            version: 0,
            cache: Mutex::new(StatusCache::default()),
            filtered: AtomicU64::new(0),
        }
    }
}

impl Clone for ClassificationState {
    fn clone(&self) -> Self {
        ClassificationState {
            sig: self.sig.clone(),
            insig: self.insig.clone(),
            sig_meta: self.sig_meta.clone(),
            insig_meta: self.insig_meta.clone(),
            explicit: self.explicit.clone(),
            pruned: self.pruned.clone(),
            indexed: self.indexed,
            version: self.version,
            // The memo is not carried over; it refills on demand.
            cache: Mutex::new(StatusCache::default()),
            filtered: AtomicU64::new(self.filtered.load(Ordering::Relaxed)),
        }
    }
}

impl ClassificationState {
    /// Fresh, all-unclassified state with the index enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh state with prefilter and memo disabled: every `status()` call
    /// runs the reference linear scans. Used as the benchmark baseline.
    pub fn unindexed() -> Self {
        ClassificationState {
            indexed: false,
            ..Self::default()
        }
    }

    /// Whether the prefilter + status memo are active.
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Record an explicit significance decision for `phi`.
    pub fn mark_significant(&mut self, phi: &Assignment, vocab: &Vocabulary) {
        self.version += 1;
        self.explicit.insert(phi.clone(), true);
        // Keep only maximal significant witnesses.
        if self.sig.iter().any(|w| phi.leq(w, vocab)) {
            return;
        }
        if self.indexed {
            let sig = std::mem::take(&mut self.sig);
            let meta = std::mem::take(&mut self.sig_meta);
            for (w, m) in sig.into_iter().zip(meta) {
                if !w.leq(phi, vocab) {
                    self.sig.push(w);
                    self.sig_meta.push(m);
                }
            }
            self.sig_meta.push(WitnessMeta::of(phi, vocab));
        } else {
            self.sig.retain(|w| !w.leq(phi, vocab));
        }
        self.sig.push(phi.clone());
    }

    /// Record an explicit insignificance decision for `phi`.
    pub fn mark_insignificant(&mut self, phi: &Assignment, vocab: &Vocabulary) {
        self.version += 1;
        self.explicit.insert(phi.clone(), false);
        if self.insig.iter().any(|w| w.leq(phi, vocab)) {
            return;
        }
        if self.indexed {
            let insig = std::mem::take(&mut self.insig);
            let meta = std::mem::take(&mut self.insig_meta);
            for (w, m) in insig.into_iter().zip(meta) {
                if !phi.leq(&w, vocab) {
                    self.insig.push(w);
                    self.insig_meta.push(m);
                }
            }
            self.insig_meta.push(WitnessMeta::of(phi, vocab));
        } else {
            self.insig.retain(|w| !phi.leq(w, vocab));
        }
        self.insig.push(phi.clone());
    }

    /// Record a pruned (irrelevant) value: every assignment involving the
    /// value or one of its specializations becomes insignificant.
    pub fn mark_pruned(&mut self, value: AValue) {
        self.version += 1;
        if !self.pruned.contains(&value) {
            self.pruned.push(value);
        }
    }

    /// The pruned values recorded so far.
    pub fn pruned_values(&self) -> &[AValue] {
        &self.pruned
    }

    /// Classify `phi` from current knowledge.
    pub fn status(&self, phi: &Assignment, vocab: &Vocabulary) -> Status {
        if !self.indexed {
            return self.status_reference(phi, vocab);
        }
        {
            let mut cache = self.cache.lock().expect("status cache poisoned");
            if cache.epoch != self.version {
                cache.map.clear();
                cache.epoch = self.version;
            } else if let Some(&s) = cache.map.get(phi) {
                return s;
            }
        }
        let s = self.status_indexed(phi, vocab);
        debug_assert_eq!(
            s,
            self.status_reference(phi, vocab),
            "indexed status diverged from reference scan for {phi}"
        );
        let mut cache = self.cache.lock().expect("status cache poisoned");
        if cache.epoch == self.version && cache.map.len() < STATUS_CACHE_CAP {
            cache.map.insert(phi.clone(), s);
        }
        s
    }

    /// The reference linear-scan classification (Observation 4.4, no index).
    /// Indexed `status()` must agree with this on every query; debug builds
    /// assert it, and the proptest suite exercises it on random borders.
    pub fn status_reference(&self, phi: &Assignment, vocab: &Vocabulary) -> Status {
        if let Some(&sig) = self.explicit.get(phi) {
            return if sig {
                Status::Significant
            } else {
                Status::Insignificant
            };
        }
        if self.prune_hits(phi, vocab) {
            return Status::Insignificant;
        }
        if self.insig.iter().any(|w| w.leq(phi, vocab)) {
            return Status::Insignificant;
        }
        if self.sig.iter().any(|w| phi.leq(w, vocab)) {
            return Status::Significant;
        }
        Status::Unclassified
    }

    /// Prefiltered classification: consult each border witness only when its
    /// metadata admits the dominance test's direction.
    fn status_indexed(&self, phi: &Assignment, vocab: &Vocabulary) -> Status {
        if let Some(&sig) = self.explicit.get(phi) {
            return if sig {
                Status::Significant
            } else {
                Status::Insignificant
            };
        }
        if self.prune_hits(phi, vocab) {
            return Status::Insignificant;
        }
        let m = WitnessMeta::of(phi, vocab);
        // Variable-only weight is monotone along ≤ only when antichain
        // canonicalization cannot merge two values into one common
        // descendant, i.e. on forest-shaped taxonomies.
        let forest = vocab.elements_order().is_forest() && vocab.relations_order().is_forest();
        let mut filtered = 0u64;
        let mut result = Status::Unclassified;
        // Insignificance test: some witness w ≤ phi.
        for (w, wm) in self.insig.iter().zip(&self.insig_meta) {
            if wm.mask & !m.mask != 0 || (forest && wm.vweight > m.vweight) {
                filtered += 1;
                continue;
            }
            if w.leq(phi, vocab) {
                result = Status::Insignificant;
                break;
            }
        }
        // Significance test: phi ≤ some witness w.
        if result == Status::Unclassified {
            for (w, wm) in self.sig.iter().zip(&self.sig_meta) {
                if m.mask & !wm.mask != 0 || (forest && m.vweight > wm.vweight) {
                    filtered += 1;
                    continue;
                }
                if phi.leq(w, vocab) {
                    result = Status::Significant;
                    break;
                }
            }
        }
        if filtered > 0 {
            self.filtered.fetch_add(filtered, Ordering::Relaxed);
        }
        result
    }

    /// Witnesses the prefilter skipped since the last call; resets to 0.
    /// Feeds the `border.index.pruned` observability counter.
    pub fn take_index_pruned(&self) -> u64 {
        self.filtered.swap(0, Ordering::Relaxed)
    }

    /// Whether `phi` contains a value that specializes a pruned value.
    fn prune_hits(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        if self.pruned.is_empty() {
            return false;
        }
        let value_hit = (0..phi.nvars()).any(|x| {
            phi.values(x)
                .iter()
                .any(|v| self.pruned.iter().any(|p| p.leq(v, vocab)))
        });
        value_hit
            || phi.more_facts().iter().any(|f| {
                self.pruned.iter().any(|p| match p {
                    AValue::Elem(e) => {
                        vocab.elem_leq(*e, f.subject) || vocab.elem_leq(*e, f.object)
                    }
                    AValue::Rel(r) => vocab.rel_leq(*r, f.relation),
                })
            })
    }

    /// Shorthand for `status(...) == Significant`.
    pub fn is_significant(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Significant
    }

    /// Shorthand for `status(...) == Insignificant`.
    pub fn is_insignificant(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Insignificant
    }

    /// Shorthand for `status(...) == Unclassified`.
    pub fn is_unclassified(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.status(phi, vocab) == Status::Unclassified
    }

    /// The maximal known-significant assignments (the positive border).
    pub fn significant_border(&self) -> &[Assignment] {
        &self.sig
    }

    /// The minimal known-insignificant assignments (the negative border).
    pub fn insignificant_border(&self) -> &[Assignment] {
        &self.insig
    }

    /// All explicitly decided assignments with their decision.
    pub fn explicit_decisions(&self) -> impl Iterator<Item = (&Assignment, bool)> {
        self.explicit.iter().map(|(a, &b)| (a, b))
    }

    /// Whether `phi` was explicitly decided (asked), not just inferred.
    pub fn explicitly_decided(&self, phi: &Assignment) -> bool {
        self.explicit.contains_key(phi)
    }
}

/// A synchronized, read-mostly view of the coordinator's overall
/// classification knowledge, shared with the session runtime's workers.
///
/// The coordinator [`publish`](Self::publish)es its state after each
/// scheduling turn; workers consult it when they pick up a *speculative*
/// question and cancel the ask if the target assignment has meanwhile been
/// classified — the commit loop never asks about classified nodes, so a
/// cancellation can never starve it. The epoch counter lets readers detect
/// staleness cheaply without taking the lock.
///
/// Cloning yields another handle to the same shared view.
#[derive(Debug, Clone, Default)]
pub struct SharedBorder {
    state: Arc<RwLock<Arc<ClassificationState>>>,
    epoch: Arc<AtomicU64>,
}

impl SharedBorder {
    /// A fresh all-unclassified shared view (epoch 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the shared view with a snapshot of `state`, bumping the
    /// epoch. The snapshot is built *before* the write lock is taken and
    /// swapped in as an `Arc` pointer, so the critical section is a pointer
    /// store rather than a deep clone — workers reading concurrently are
    /// never blocked behind border copying.
    pub fn publish(&self, state: &ClassificationState) {
        let snapshot = Arc::new(state.clone());
        *self.state.write().expect("shared border poisoned") = snapshot;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// How many times [`publish`](Self::publish) has run.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The last published snapshot (cheap: clones an `Arc`, not the state).
    pub fn snapshot(&self) -> Arc<ClassificationState> {
        Arc::clone(&self.state.read().expect("shared border poisoned"))
    }

    /// Whether `phi` is already classified (significant *or* insignificant)
    /// in the last published view. The read lock is held only long enough
    /// to clone the snapshot pointer; the status check runs lock-free.
    pub fn is_classified(&self, phi: &Assignment, vocab: &Vocabulary) -> bool {
        self.snapshot().status(phi, vocab) != Status::Unclassified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;
    use oassis_vocab::Vocabulary;

    fn vocab() -> Vocabulary {
        figure1_ontology().vocabulary().clone()
    }

    fn a(vocab: &Vocabulary, y: &str, x: &str) -> Assignment {
        Assignment::single_valued([
            AValue::Elem(vocab.element(y).unwrap()),
            AValue::Elem(vocab.element(x).unwrap()),
        ])
    }

    #[test]
    fn significance_propagates_to_generalizations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Sport", "Central Park"), &v),
            Status::Significant
        );
        assert_eq!(st.status(&a(&v, "Sport", "Park"), &v), Status::Significant);
        // A specialization stays unclassified.
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Significant,
            "explicit"
        );
        assert_eq!(
            st.status(&a(&v, "Baseball", "Central Park"), &v),
            Status::Unclassified
        );
    }

    #[test]
    fn insignificance_propagates_to_specializations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_insignificant(&a(&v, "Ball Game", "Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Basketball", "Central Park"), &v),
            Status::Insignificant
        );
        assert_eq!(st.status(&a(&v, "Sport", "Park"), &v), Status::Unclassified);
    }

    #[test]
    fn borders_keep_only_extremes() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_significant(&a(&v, "Sport", "Park"), &v);
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(st.significant_border().len(), 1, "general witness absorbed");
        st.mark_insignificant(&a(&v, "Baseball", "Central Park"), &v);
        st.mark_insignificant(&a(&v, "Ball Game", "Central Park"), &v);
        assert_eq!(
            st.insignificant_border().len(),
            1,
            "specific witness absorbed"
        );
    }

    #[test]
    fn explicit_decision_overrides_inference() {
        let v = vocab();
        let mut st = ClassificationState::new();
        // Noisy crowd: general insignificant but specific answered significant.
        st.mark_insignificant(&a(&v, "Sport", "Park"), &v);
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Significant,
            "explicit answer wins over inherited insignificance"
        );
        assert!(st.explicitly_decided(&a(&v, "Biking", "Central Park")));
        assert!(!st.explicitly_decided(&a(&v, "Baseball", "Park")));
    }

    #[test]
    fn pruning_kills_value_and_specializations() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_pruned(AValue::Elem(v.element("Ball Game").unwrap()));
        assert_eq!(
            st.status(&a(&v, "Basketball", "Central Park"), &v),
            Status::Insignificant
        );
        assert_eq!(
            st.status(&a(&v, "Ball Game", "Park"), &v),
            Status::Insignificant
        );
        assert_eq!(
            st.status(&a(&v, "Biking", "Central Park"), &v),
            Status::Unclassified
        );
        assert_eq!(st.pruned_values().len(), 1);
        st.mark_pruned(AValue::Elem(v.element("Ball Game").unwrap()));
        assert_eq!(st.pruned_values().len(), 1, "dedup");
    }

    #[test]
    fn indexed_and_unindexed_states_agree() {
        let v = vocab();
        let mut idx = ClassificationState::new();
        let mut plain = ClassificationState::unindexed();
        assert!(idx.is_indexed() && !plain.is_indexed());
        for st in [&mut idx, &mut plain] {
            st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
            st.mark_insignificant(&a(&v, "Ball Game", "Park"), &v);
            st.mark_pruned(AValue::Elem(v.element("Boathouse").unwrap()));
        }
        for (y, x) in [
            ("Sport", "Central Park"),
            ("Sport", "Park"),
            ("Biking", "Central Park"),
            ("Basketball", "Central Park"),
            ("Baseball", "Park"),
            ("Activity", "Place"),
        ] {
            let q = a(&v, y, x);
            assert_eq!(idx.status(&q, &v), plain.status(&q, &v), "{y}/{x}");
            assert_eq!(idx.status(&q, &v), idx.status_reference(&q, &v));
            // Second call hits the memo and must not change the answer.
            assert_eq!(idx.status(&q, &v), plain.status(&q, &v));
        }
    }

    #[test]
    fn index_pruned_counter_drains() {
        let v = vocab();
        let st = ClassificationState::new();
        assert_eq!(st.take_index_pruned(), 0);
        let mut st = st;
        st.mark_significant(&a(&v, "Biking", "Central Park"), &v);
        // Query something whose mask cannot be covered by the witness.
        let _ = st.status(&a(&v, "Baseball", "Park"), &v);
        let _ = st.take_index_pruned();
        assert_eq!(st.take_index_pruned(), 0, "drained");
    }

    #[test]
    fn pruning_applies_to_more_facts() {
        let v = vocab();
        let mut st = ClassificationState::new();
        st.mark_pruned(AValue::Elem(v.element("Boathouse").unwrap()));
        let rent = oassis_vocab::Fact::new(
            v.element("Rent Bikes").unwrap(),
            v.relation("doAt").unwrap(),
            v.element("Boathouse").unwrap(),
        );
        let base = a(&v, "Biking", "Central Park");
        let with_more = base.with_more_fact(rent);
        assert_eq!(st.status(&with_more, &v), Status::Insignificant);
        assert_eq!(st.status(&base, &v), Status::Unclassified);
    }
}
