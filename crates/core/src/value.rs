//! Assignment values: vocabulary elements or relations.
//!
//! Definition 4.1 types an assignment as `φ : X → P(E) ∪ P(R)` — a variable
//! is bound to a set of *elements* (subject/object positions) or a set of
//! *relations* (relation positions). [`AValue`] is that union.

use std::fmt;

use oassis_vocab::{ElementId, RelationId, Vocabulary};

/// One value in an assignment's value set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AValue {
    /// An element value.
    Elem(ElementId),
    /// A relation value.
    Rel(RelationId),
}

impl AValue {
    /// The element, if this is one.
    pub fn as_elem(&self) -> Option<ElementId> {
        match self {
            AValue::Elem(e) => Some(*e),
            AValue::Rel(_) => None,
        }
    }

    /// The relation, if this is one.
    pub fn as_rel(&self) -> Option<RelationId> {
        match self {
            AValue::Rel(r) => Some(*r),
            AValue::Elem(_) => None,
        }
    }

    /// Semantic order between two values: defined within one sort only
    /// (an element is never comparable with a relation).
    pub fn leq(&self, other: &AValue, vocab: &Vocabulary) -> bool {
        match (self, other) {
            (AValue::Elem(a), AValue::Elem(b)) => vocab.elem_leq(*a, *b),
            (AValue::Rel(a), AValue::Rel(b)) => vocab.rel_leq(*a, *b),
            _ => false,
        }
    }

    /// Display name against a vocabulary.
    pub fn name<'a>(&self, vocab: &'a Vocabulary) -> &'a str {
        match self {
            AValue::Elem(e) => vocab.element_name(*e),
            AValue::Rel(r) => vocab.relation_name(*r),
        }
    }
}

impl From<ElementId> for AValue {
    fn from(e: ElementId) -> Self {
        AValue::Elem(e)
    }
}

impl From<RelationId> for AValue {
    fn from(r: RelationId) -> Self {
        AValue::Rel(r)
    }
}

impl fmt::Display for AValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AValue::Elem(e) => write!(f, "{e}"),
            AValue::Rel(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn leq_respects_sorts() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let sport: AValue = v.element("Sport").unwrap().into();
        let biking: AValue = v.element("Biking").unwrap().into();
        let near_by: AValue = v.relation("nearBy").unwrap().into();
        let inside: AValue = v.relation("inside").unwrap().into();
        assert!(sport.leq(&biking, v));
        assert!(!biking.leq(&sport, v));
        assert!(near_by.leq(&inside, v));
        assert!(!sport.leq(&near_by, v), "cross-sort is incomparable");
        assert!(!near_by.leq(&sport, v));
    }

    #[test]
    fn accessors() {
        let e = AValue::Elem(ElementId(1));
        let r = AValue::Rel(RelationId(2));
        assert_eq!(e.as_elem(), Some(ElementId(1)));
        assert_eq!(e.as_rel(), None);
        assert_eq!(r.as_rel(), Some(RelationId(2)));
    }

    #[test]
    fn names() {
        let o = figure1_ontology();
        let v = o.vocabulary();
        let biking: AValue = v.element("Biking").unwrap().into();
        assert_eq!(biking.name(v), "Biking");
        let do_at: AValue = v.relation("doAt").unwrap().into();
        assert_eq!(do_at.name(v), "doAt");
    }
}
