//! The OASSIS engine: multi-user evaluation (Section 4.2) and the
//! system facade (Section 6.1).
//!
//! [`MultiUserMiner`] implements the five modifications of Section 4.2 on
//! top of the vertical traversal: per-member top-down sessions, answers
//! recorded per assignment in the [`CrowdCache`], overall classification by
//! a pluggable [`Aggregator`] black-box, member-positive descent
//! (`s ≥ θ` **and** not overall-insignificant), and MSP confirmation on the
//! closing answer. [`Oassis`] ties ontology + parser + SPARQL + mining
//! together and supports the Section 6.3 cache-replay methodology for
//! re-executing a query at a higher support threshold without new crowd
//! work.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_crowd::{
    Aggregator, CrowdCache, CrowdMember, Decision, FixedSampleAggregator, MemberId, ScriptedMember,
    SharedCrowdCache,
};
use oassis_obs::{names, SinkExt, Span};
use oassis_ql::{parse_query, QlError, Query, SelectForm};
use oassis_store::Ontology;
use oassis_vocab::{ElementId, Fact, FactSet};

use crate::assignment::Assignment;
use crate::border::{ClassificationState, Status};
use crate::runtime::{
    AskPayload, AskValue, Clock, Pool, RuntimeError, RuntimeErrorKind, SessionRuntime,
};
use crate::space::{AssignSpace, SpaceCache, SpaceError};
use crate::stats::{ExecutionStats, QuestionKind, Recorder};
use crate::value::AValue;

pub use crate::config::{EngineConfig, EngineConfigBuilder};

/// Errors surfaced by [`Oassis::execute`] and the session runtime.
#[derive(Debug)]
pub enum OassisError {
    /// Query parsing/validation failed.
    Query(QlError),
    /// Assignment-space construction failed.
    Space(SpaceError),
    /// The concurrent session runtime failed (timeouts, poisoned workers,
    /// exhausted crowd).
    Runtime(RuntimeError),
}

impl std::fmt::Display for OassisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OassisError::Query(e) => write!(f, "{e}"),
            OassisError::Space(e) => write!(f, "{e}"),
            OassisError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OassisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OassisError::Query(e) => Some(e),
            OassisError::Space(e) => Some(e),
            OassisError::Runtime(e) => Some(e),
        }
    }
}

impl From<QlError> for OassisError {
    fn from(e: QlError) -> Self {
        OassisError::Query(e)
    }
}

impl From<SpaceError> for OassisError {
    fn from(e: SpaceError) -> Self {
        OassisError::Space(e)
    }
}

impl From<RuntimeError> for OassisError {
    fn from(e: RuntimeError) -> Self {
        OassisError::Runtime(e)
    }
}

/// One answer of a query result.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The MSP assignment.
    pub assignment: Assignment,
    /// Its instantiated fact-set `φ(A_SAT)`.
    pub factset: FactSet,
    /// Whether the assignment is valid w.r.t. the query.
    pub valid: bool,
    /// The aggregated support estimate, if answers were collected for it.
    pub support: Option<f64>,
    /// Human-readable rendering (per the query's `SELECT` form).
    pub rendered: String,
}

/// The result of executing a query.
#[derive(Debug)]
pub struct QueryResult {
    /// The MSP answers (most specific significant patterns).
    pub answers: Vec<QueryAnswer>,
    /// Execution statistics.
    pub stats: ExecutionStats,
    /// All collected crowd answers (reusable for threshold replay).
    pub cache: CrowdCache,
    /// The final classification state.
    pub state: ClassificationState,
}

/// Receives each MSP answer the moment it is confirmed during a run
/// (see [`MultiUserMiner::run_with_observer`]). Any `FnMut(&QueryAnswer)`
/// closure implements it.
pub trait AnswerObserver {
    /// Called once per confirmed MSP, in confirmation order.
    fn on_answer(&mut self, answer: &QueryAnswer);
}

impl<F: FnMut(&QueryAnswer)> AnswerObserver for F {
    fn on_answer(&mut self, answer: &QueryAnswer) {
        self(answer)
    }
}

/// Give up on the `engine.dag.nodes_total` gauge beyond this many nodes:
/// the exhaustive count exists to contextualize the lazy generator's
/// savings, and past this size "huge" is all an observer needs to know.
pub const NODES_TOTAL_CAP: usize = 20_000;

/// Per-member traversal session (Section 4.2's per-user outer loop).
struct Session {
    /// Current descend position (an overall- and member-positive node).
    cursor: Option<Assignment>,
    /// This member's own classification knowledge. Their "No" answers stop
    /// only their *descent* (§4.2 modification 4); the outer loop may still
    /// ask them about any unclassified assignment.
    personal: ClassificationState,
    /// Values the member declared irrelevant (user-guided pruning): these
    /// genuinely imply support 0, so covered questions are auto-answered.
    pruned: ClassificationState,
    /// Set when the member has nothing left to contribute.
    exhausted: bool,
}

impl Session {
    fn new(use_indexes: bool) -> Self {
        let state = if use_indexes {
            ClassificationState::new
        } else {
            ClassificationState::unindexed
        };
        Session {
            cursor: None,
            personal: state(),
            pruned: state(),
            exhausted: false,
        }
    }
}

/// How far ahead `predict_question` simulates question-free transitions
/// (cursor moves into significant successors, MSP confirmations) before
/// giving up on finding the member's next concrete question.
const PREDICT_HORIZON: usize = 64;

/// How many candidate questions a single speculative dispatch carries. The
/// batch is answered in one simulated round-trip (a multi-question form), so
/// a wider slate raises the prefetch hit rate without extra latency; answers
/// beyond the first are kept in the shared cache for later turns.
const PREFETCH_WIDTH: usize = 8;

/// The no-op observer behind [`MultiUserMiner::run`] / `run_slice`.
struct IgnoreAnswers;

impl AnswerObserver for IgnoreAnswers {
    fn on_answer(&mut self, _answer: &QueryAnswer) {}
}

/// How the commit loop reaches the crowd: directly over a borrowed member
/// slice on the caller's thread, or through the session runtime's worker
/// pool. Every ask returns `None` only on the pooled path, when the
/// runtime excluded the member instead of delivering an answer.
enum CrowdLink<'m> {
    Direct(&'m mut [Box<dyn CrowdMember>]),
    Pooled(Pool),
}

impl CrowdLink<'_> {
    fn len(&self) -> usize {
        match self {
            CrowdLink::Direct(members) => members.len(),
            CrowdLink::Pooled(pool) => pool.len(),
        }
    }

    fn id(&self, idx: usize) -> MemberId {
        match self {
            CrowdLink::Direct(members) => members[idx].id(),
            CrowdLink::Pooled(pool) => pool.member_id(idx),
        }
    }

    /// A shared view of the member, when it is home (always, on the direct
    /// path; between round-trips on the pooled path) and not excluded.
    fn member(&self, idx: usize) -> Option<&dyn CrowdMember> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].as_ref()),
            CrowdLink::Pooled(pool) => pool.member(idx),
        }
    }

    fn willing(&self, idx: usize) -> bool {
        self.member(idx).is_some_and(|m| m.willing())
    }

    /// Block until the member's in-flight speculative answer (if any) has
    /// been absorbed. No-op on the direct path.
    fn sync(&mut self, idx: usize) {
        if let CrowdLink::Pooled(pool) = self {
            pool.sync(idx);
        }
    }

    fn excluded(&self, idx: usize) -> bool {
        match self {
            CrowdLink::Direct(_) => false,
            CrowdLink::Pooled(pool) => pool.excluded(idx),
        }
    }

    /// Ask the concrete question `phi`/`fs`, waiting out the simulated
    /// answer latency (in-line when direct, on a worker when pooled).
    fn concrete(
        &mut self,
        idx: usize,
        phi: &Assignment,
        fs: &FactSet,
        recorder: &Recorder,
        clock: &dyn Clock,
    ) -> Option<f64> {
        match self {
            CrowdLink::Direct(members) => {
                let member = &mut members[idx];
                // The synchronous path has no timeout: a slow answer is
                // waited out, a dropped one degrades to an immediate one.
                if let Some(d) = member.answer_delay() {
                    clock.sleep(d);
                }
                let s = if recorder.sink_enabled() {
                    let _roundtrip = Span::enter(&**recorder.sink(), names::SPAN_ROUNDTRIP);
                    let start = Instant::now();
                    let s = member.ask_concrete(fs);
                    recorder
                        .sink()
                        .observe(names::CROWD_ANSWER_NANOS, start.elapsed().as_nanos() as f64);
                    s
                } else {
                    member.ask_concrete(fs)
                };
                Some(s)
            }
            CrowdLink::Pooled(pool) => {
                // A speculative prefetch may already hold this answer.
                if let Some(s) = pool.shared().lookup(fs, pool.member_id(idx)) {
                    pool.note_speculation_hit();
                    return Some(s);
                }
                match pool.ask(
                    idx,
                    AskPayload::Concrete {
                        assignment: phi.clone(),
                        factset: fs.clone(),
                    },
                ) {
                    Some(AskValue::Support(s)) => Some(s),
                    _ => None,
                }
            }
        }
    }

    /// Ask the specialization question (base + candidate fact-sets).
    fn specialization(
        &mut self,
        idx: usize,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<Option<(usize, f64)>> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].ask_specialization(base, candidates)),
            CrowdLink::Pooled(pool) => match pool.ask(
                idx,
                AskPayload::Specialization {
                    base: base.clone(),
                    candidates: candidates.to_vec(),
                },
            ) {
                Some(AskValue::Choice(choice)) => Some(choice),
                _ => None,
            },
        }
    }

    /// Ask for the member's irrelevant elements (user-guided pruning).
    fn irrelevant(&mut self, idx: usize, fs: &FactSet) -> Option<Vec<ElementId>> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].irrelevant_elements(fs)),
            CrowdLink::Pooled(pool) => {
                match pool.ask(idx, AskPayload::Pruning { factset: fs.clone() }) {
                    Some(AskValue::Irrelevant(elems)) => Some(elems),
                    _ => None,
                }
            }
        }
    }
}

/// The multi-user mining engine.
pub struct MultiUserMiner<'a> {
    space: &'a AssignSpace,
    /// Interned memo over `space`'s derivations; pass-through when
    /// [`EngineConfig::use_indexes`] is off.
    cache: SpaceCache,
    threshold: f64,
    aggregator: Box<dyn Aggregator + 'a>,
    config: &'a EngineConfig,
}

impl<'a> MultiUserMiner<'a> {
    /// Create a miner with the paper's fixed-sample aggregation rule.
    pub fn new(space: &'a AssignSpace, threshold: f64, config: &'a EngineConfig) -> Self {
        let cache = if config.use_indexes {
            SpaceCache::with_sink(Arc::clone(&config.sink))
        } else {
            SpaceCache::disabled()
        };
        MultiUserMiner {
            space,
            cache,
            threshold,
            aggregator: Box::new(FixedSampleAggregator {
                sample_size: config.aggregator_sample,
            }),
            config,
        }
    }

    /// Replace the aggregation black-box.
    pub fn with_aggregator(mut self, aggregator: Box<dyn Aggregator + 'a>) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Run the crowd concurrently through the session runtime until every
    /// assignment is classified or the crowd is exhausted. The coordinator
    /// (this thread) executes the exact sequential commit loop; crowd
    /// round-trips ride the runtime's worker pool, with speculative
    /// prefetch hiding answer latency (see [`crate::runtime`]).
    ///
    /// **Determinism**: for members whose answers are a pure function of
    /// the asked fact-set (no answer noise, no question quota), a
    /// concurrent run with seed S yields the identical answer set — and
    /// identical [`ExecutionStats`] — as [`run_slice`](Self::run_slice)
    /// with seed S.
    ///
    /// Fails with [`OassisError::Runtime`] only when *every* member has
    /// been excluded (per-question timeouts through all retries, or a
    /// panicking answer callback); partial exclusions are tolerated and
    /// the run continues with the remaining members.
    pub fn run(&self, runtime: SessionRuntime) -> Result<(QueryResult, CrowdCache), OassisError> {
        self.run_with_observer(runtime, &mut IgnoreAnswers)
    }

    /// Like [`run`](Self::run), but notifies `observer` the moment each MSP
    /// is confirmed — the incremental-answer delivery the paper highlights
    /// ("answers can be returned faster, as soon as they are identified").
    /// With [`EngineConfig::top_k`] set, the run stops once that many valid
    /// MSPs have been confirmed.
    pub fn run_with_observer(
        &self,
        runtime: SessionRuntime,
        observer: &mut dyn AnswerObserver,
    ) -> Result<(QueryResult, CrowdCache), OassisError> {
        let vocab = Arc::new(self.space.ontology().vocabulary().clone());
        let pool = Pool::start(runtime, vocab, Arc::clone(&self.config.sink));
        let mut link = CrowdLink::Pooled(pool);
        self.run_loop(&mut link, observer)
    }

    /// Compatibility shim: run synchronously over a bare member slice on
    /// the caller's thread (the pre-runtime signature). Infallible — no
    /// timeouts or exclusions exist on the synchronous path; a member's
    /// [`answer_delay`](CrowdMember::answer_delay) is simply waited out
    /// in-line before each concrete answer (dropped answers degrade to
    /// immediate ones).
    pub fn run_slice(&self, members: &mut [Box<dyn CrowdMember>]) -> (QueryResult, CrowdCache) {
        self.run_slice_with_observer(members, &mut IgnoreAnswers)
    }

    /// Slice-based variant of [`run_with_observer`](Self::run_with_observer).
    pub fn run_slice_with_observer(
        &self,
        members: &mut [Box<dyn CrowdMember>],
        observer: &mut dyn AnswerObserver,
    ) -> (QueryResult, CrowdCache) {
        let mut link = CrowdLink::Direct(members);
        self.run_loop(&mut link, observer)
            .expect("the synchronous crowd path cannot fail")
    }

    /// The shared scheduling loop behind both crowd paths.
    // `sessions` is indexed in lockstep with the link's member seats; an
    // iterator would fight the split borrows against `link`.
    #[allow(clippy::needless_range_loop)]
    fn run_loop(
        &self,
        link: &mut CrowdLink<'_>,
        observer: &mut dyn AnswerObserver,
    ) -> Result<(QueryResult, CrowdCache), OassisError> {
        let sink = &self.config.sink;
        let _run_span = Span::enter(&**sink, names::SPAN_RUN);
        if sink.enabled() {
            // The full DAG size turns the lazy generator's node counter into
            // the paper's "<1% of nodes generated" ratio. Counting requires
            // an exhaustive traversal, so only do it for an attached sink
            // and give up on astronomically large spaces.
            if let Some(total) = self.space.count_nodes_up_to(NODES_TOTAL_CAP) {
                sink.gauge(names::DAG_NODES_TOTAL, total as f64);
            }
        }
        let mut cache = CrowdCache::new().with_sink(Arc::clone(sink));
        let mut overall = if self.config.use_indexes {
            ClassificationState::new()
        } else {
            ClassificationState::unindexed()
        };
        let mut recorder = Recorder::new()
            .with_sink(Arc::clone(sink))
            .with_algo("multiuser");
        if self.config.track_curve {
            recorder = recorder.with_curve();
        }
        if let Some(u) = &self.config.curve_universe {
            recorder = recorder.with_universe(u.clone());
        }
        if let Some(t) = &self.config.targets {
            recorder = recorder.with_targets(t.clone());
        }
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut sessions: Vec<Session> = (0..link.len())
            .map(|_| Session::new(self.config.use_indexes))
            .collect();
        let mut msps: Vec<Assignment> = Vec::new();
        let mut confirmed: HashSet<Assignment> = HashSet::new();
        let mut generated: HashSet<Assignment> = HashSet::new();

        // Speculative prefetch requires the member's next question to be a
        // pure function of the commit state: any rng-driven question-type
        // choice breaks that, so speculation turns off with the ratios.
        let speculate = matches!(link, CrowdLink::Pooled(_))
            && self.config.specialization_ratio == 0.0
            && self.config.pruning_ratio == 0.0;

        // Warm-up: every member's first question is predictable from the
        // initial border, so prefetch it before the first committed turn —
        // otherwise each member's first round-trip is a guaranteed
        // coordinator stall on the full simulated latency.
        if speculate {
            if let CrowdLink::Pooled(pool) = link {
                pool.publish_border(&overall);
                for idx in 0..pool.len() {
                    if !pool.can_speculate(idx) {
                        continue;
                    }
                    let candidates = pool
                        .member(idx)
                        .filter(|m| m.willing())
                        .map(|member| {
                            self.predict_questions(
                                &sessions[idx],
                                &overall,
                                &cache,
                                pool.shared(),
                                member,
                                pool.member_id(idx),
                            )
                        })
                        .unwrap_or_default();
                    pool.speculate(idx, candidates);
                }
            }
        }

        let mut delivered = 0usize;
        let mut valid_confirmed = 0usize;
        'run: loop {
            if recorder.stats.total_questions >= self.config.max_questions {
                break;
            }
            let mut progressed = false;
            for idx in 0..link.len() {
                if recorder.stats.total_questions >= self.config.max_questions {
                    break;
                }
                // Bring the member home: absorb its in-flight speculative
                // answer (if any) before its committed turn.
                link.sync(idx);
                if link.excluded(idx) {
                    if !sessions[idx].exhausted {
                        sessions[idx].exhausted = true;
                        progressed = true;
                    }
                    continue;
                }
                if sessions[idx].exhausted || !link.willing(idx) {
                    continue;
                }
                if self.step(
                    link,
                    idx,
                    &mut sessions[idx],
                    &mut overall,
                    &mut cache,
                    &mut recorder,
                    &mut rng,
                    &mut msps,
                    &mut confirmed,
                    &mut generated,
                ) {
                    progressed = true;
                }
                // Deliver newly confirmed MSPs incrementally.
                while delivered < msps.len() {
                    let answers = self
                        .render_answers(std::slice::from_ref(&msps[delivered]), &cache);
                    for a in &answers {
                        if a.valid {
                            valid_confirmed += 1;
                        }
                        observer.on_answer(a);
                    }
                    delivered += 1;
                }
                if let Some(k) = self.config.top_k {
                    if valid_confirmed >= k {
                        break 'run;
                    }
                }
                if speculate {
                    if let CrowdLink::Pooled(pool) = link {
                        pool.publish_border(&overall);
                        if pool.can_speculate(idx) && !sessions[idx].exhausted {
                            let candidates = pool
                                .member(idx)
                                .filter(|m| m.willing())
                                .map(|member| {
                                    self.predict_questions(
                                        &sessions[idx],
                                        &overall,
                                        &cache,
                                        pool.shared(),
                                        member,
                                        pool.member_id(idx),
                                    )
                                })
                                .unwrap_or_default();
                            pool.speculate(idx, candidates);
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        if let CrowdLink::Pooled(pool) = link {
            pool.finish();
            let excluded = pool.excluded_count();
            if excluded > 0 && pool.all_excluded() {
                let mut err = RuntimeError::new(RuntimeErrorKind::CrowdExhausted { excluded });
                if let Some(cause) = pool.take_last_error() {
                    err = err.with_source(Box::new(cause));
                }
                return Err(OassisError::Runtime(err));
            }
        }

        // Final MSP set: the positive border of the overall knowledge.
        let border_msps: Vec<Assignment> = overall.significant_border().to_vec();
        let answers = self.render_answers(&border_msps, &cache);
        let result = QueryResult {
            answers,
            stats: recorder.stats,
            cache: cache.clone(),
            state: overall,
        };
        Ok((result, cache))
    }

    /// Predict the member's next *concrete* questions by replaying the
    /// selection logic of [`step`](Self::step) read-only. Cursor moves into
    /// significant successors and MSP confirmations are question-free, so
    /// the simulation walks through them (bounded by `PREDICT_HORIZON`).
    ///
    /// Returns up to `PREFETCH_WIDTH` candidates: the question the commit
    /// loop would ask *right now*, plus the fallbacks it would move to if
    /// other members' answers classify the first picks before this member's
    /// next turn. Prefetching the whole slate keeps the hit rate high even
    /// while the border moves quickly.
    #[allow(clippy::too_many_arguments)]
    fn predict_questions(
        &self,
        session: &Session,
        overall: &ClassificationState,
        cache: &CrowdCache,
        shared: &SharedCrowdCache,
        member: &dyn CrowdMember,
        member_id: MemberId,
    ) -> Vec<(Assignment, FactSet)> {
        let vocab = self.space.ontology().vocabulary();
        let fresh = |fs: &FactSet| !shared.has_answer_from(fs, member_id);
        let mut cursor = session.cursor.clone();
        for _ in 0..PREDICT_HORIZON {
            match cursor.take() {
                None => {
                    // Outer loop: the next questions are the first minimal
                    // overall-unclassified assignments the member can answer.
                    return self
                        .find_askable_many(overall, cache, member, PREFETCH_WIDTH)
                        .into_iter()
                        .map(|phi| {
                            let fs = FactSet::clone(&self.cache.instantiate(self.space, &phi));
                            (phi, fs)
                        })
                        .filter(|(_, fs)| fresh(fs))
                        .collect();
                }
                Some(phi) => {
                    let succs = self.cache.successors(self.space, &phi);
                    if let Some(s) = succs
                        .iter()
                        .find(|s| overall.status(s, vocab) == Status::Significant)
                    {
                        cursor = Some(s.clone());
                        continue;
                    }
                    let targets: Vec<(Assignment, FactSet)> = succs
                        .iter()
                        .filter(|s| overall.status(s, vocab) == Status::Unclassified)
                        .filter(|s| session.personal.status(s, vocab) != Status::Insignificant)
                        .filter_map(|s| {
                            let fs = self.cache.instantiate(self.space, s);
                            (!cache.has_answer_from(&fs, member_id) && member.can_answer(&fs))
                                .then(|| (s.clone(), FactSet::clone(&fs)))
                        })
                        .take(PREFETCH_WIDTH)
                        .collect();
                    if targets.is_empty() {
                        // Inner loop over: MSP confirmation is question-free
                        // and resets the cursor to the outer loop.
                        cursor = None;
                        continue;
                    }
                    return targets.into_iter().filter(|(_, fs)| fresh(fs)).collect();
                }
            }
        }
        Vec::new()
    }

    /// One scheduling step for the member in seat `idx`. Returns whether
    /// anything happened.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        link: &mut CrowdLink<'_>,
        idx: usize,
        session: &mut Session,
        overall: &mut ClassificationState,
        cache: &mut CrowdCache,
        recorder: &mut Recorder,
        rng: &mut SmallRng,
        msps: &mut Vec<Assignment>,
        confirmed: &mut HashSet<Assignment>,
        generated: &mut HashSet<Assignment>,
    ) -> bool {
        let vocab = self.space.ontology().vocabulary();
        let member_id = link.id(idx);

        if session.cursor.is_none() {
            // Outer loop: find a minimal overall-unclassified assignment
            // this member can still help with.
            let found = link
                .member(idx)
                .and_then(|member| self.find_askable(overall, cache, member));
            let Some(phi) = found else {
                session.exhausted = true;
                return false;
            };
            let Some(positive) =
                self.ask_member(link, idx, session, &phi, overall, cache, recorder, rng)
            else {
                // The runtime excluded the member mid-question.
                session.exhausted = true;
                return true;
            };
            if positive {
                session.cursor = Some(phi);
            }
            return true;
        }

        let phi = session.cursor.clone().expect("checked above");
        let succs = self.cache.successors(self.space, &phi);
        let fresh = succs
            .iter()
            .filter(|s| generated.insert((*s).clone()))
            .count();
        recorder.on_nodes_generated(fresh);

        // Move freely into an overall-significant successor.
        if let Some(s) = succs
            .iter()
            .find(|s| overall.status(s, vocab) == Status::Significant)
        {
            session.cursor = Some(s.clone());
            return true;
        }

        // Candidate successors: overall-unclassified, not ruled out for this
        // member personally.
        let candidates: Vec<Assignment> = succs
            .iter()
            .filter(|s| overall.status(s, vocab) == Status::Unclassified)
            .filter(|s| session.personal.status(s, vocab) != Status::Insignificant)
            .cloned()
            .collect();
        let askable: Vec<Assignment> = candidates
            .iter()
            .filter(|s| {
                let fs = self.cache.instantiate(self.space, s);
                !cache.has_answer_from(&fs, member_id)
                    && link.member(idx).is_some_and(|m| m.can_answer(&fs))
            })
            .cloned()
            .collect();

        if askable.is_empty() {
            // Inner loop over: MSP confirmation (modification 5 of §4.2).
            let is_msp = overall.status(&phi, vocab) == Status::Significant
                && succs
                    .iter()
                    .all(|s| overall.status(s, vocab) != Status::Significant);
            if is_msp && confirmed.insert(phi.clone()) {
                msps.push(phi.clone());
                recorder.on_msp(self.cache.is_valid(self.space, &phi));
            }
            session.cursor = None;
            return true;
        }

        // Specialization question, with the configured probability.
        if self.config.specialization_ratio > 0.0
            && rng.random::<f64>() < self.config.specialization_ratio
        {
            let base_fs = self.cache.instantiate(self.space, &phi);
            let cand_fs: Vec<FactSet> = askable
                .iter()
                .map(|c| FactSet::clone(&self.cache.instantiate(self.space, c)))
                .collect();
            let Some(choice) = link.specialization(idx, &base_fs, &cand_fs) else {
                session.exhausted = true;
                return true;
            };
            match choice {
                Some((chosen, s)) => {
                    recorder.on_question(QuestionKind::Specialization, &base_fs);
                    let positive =
                        self.record_answer(member_id, &askable[chosen], s, session, overall, cache);
                    recorder.on_state_change(overall, vocab);
                    if positive {
                        session.cursor = Some(askable[chosen].clone());
                    }
                }
                None => {
                    recorder.on_question(QuestionKind::NoneOfThese, &base_fs);
                    for c in &askable {
                        self.record_answer(member_id, c, 0.0, session, overall, cache);
                    }
                    recorder.on_state_change(overall, vocab);
                }
            }
            return true;
        }

        // Concrete question about the first askable successor.
        let target = askable[0].clone();
        let Some(positive) =
            self.ask_member(link, idx, session, &target, overall, cache, recorder, rng)
        else {
            session.exhausted = true;
            return true;
        };
        if positive {
            session.cursor = Some(target);
        }
        true
    }

    /// Ask the member in seat `idx` a concrete question about `phi` (with
    /// optional pruning interaction, personal-pruning auto-answers and
    /// cache reuse). Returns the §4.2 member-positive verdict, or `None`
    /// when the runtime excluded the member instead of delivering.
    #[allow(clippy::too_many_arguments)]
    fn ask_member(
        &self,
        link: &mut CrowdLink<'_>,
        idx: usize,
        session: &mut Session,
        phi: &Assignment,
        overall: &mut ClassificationState,
        cache: &mut CrowdCache,
        recorder: &mut Recorder,
        rng: &mut SmallRng,
    ) -> Option<bool> {
        let vocab = self.space.ontology().vocabulary();
        let member_id = link.id(idx);
        let fs = self.cache.instantiate(self.space, phi);

        // User-guided pruning: the member's single click is the answer when
        // the question involves a value irrelevant to them (Section 6.2).
        if self.config.pruning_ratio > 0.0 && rng.random::<f64>() < self.config.pruning_ratio {
            let irrelevant = link.irrelevant(idx, &fs)?;
            if !irrelevant.is_empty() {
                recorder.on_question(QuestionKind::Pruning, &fs);
                for e in irrelevant {
                    session.pruned.mark_pruned(AValue::Elem(e));
                }
            }
        }

        let s = if session.pruned.status(phi, vocab) == Status::Insignificant {
            // Covered by the member's own pruning: inferred support 0 at no
            // question cost (Section 6.2).
            0.0
        } else if let Some(s) = cache.cached_answer(&fs, member_id) {
            s
        } else {
            recorder.on_question(QuestionKind::Concrete, &fs);
            link.concrete(idx, phi, &fs, recorder, &*self.config.clock)?
        };
        let positive = self.record_answer(member_id, phi, s, session, overall, cache);
        recorder.on_state_change(overall, vocab);
        Some(positive)
    }

    /// Record `s` as `member`'s answer for `phi`, update the member's
    /// personal state, run the aggregator and update the overall state.
    /// Returns the member-positive verdict.
    fn record_answer(
        &self,
        member: MemberId,
        phi: &Assignment,
        s: f64,
        session: &mut Session,
        overall: &mut ClassificationState,
        cache: &mut CrowdCache,
    ) -> bool {
        let vocab = self.space.ontology().vocabulary();
        let fs = self.cache.instantiate(self.space, phi);
        cache.record(&fs, member, s);
        if s >= self.threshold {
            session.personal.mark_significant(phi, vocab);
        } else {
            session.personal.mark_insignificant(phi, vocab);
        }
        let supports = cache.supports(&fs);
        let decision = self.aggregator.decide(&supports, self.threshold);
        if decision != Decision::Undecided && self.config.sink.enabled() {
            // How many answers the aggregator needed before committing —
            // the crowd cost of one border update.
            self.config
                .sink
                .observe(names::CROWD_QUORUM_SIZE, supports.len() as f64);
        }
        match decision {
            Decision::Significant => {
                self.config
                    .sink
                    .count_labeled(names::BORDER_UPDATED, "significant", 1);
                overall.mark_significant(phi, vocab);
            }
            Decision::Insignificant => {
                self.config
                    .sink
                    .count_labeled(names::BORDER_UPDATED, "insignificant", 1);
                overall.mark_insignificant(phi, vocab);
            }
            Decision::Undecided => {}
        }
        let positive = s >= self.threshold && overall.status(phi, vocab) != Status::Insignificant;
        if self.config.sink.enabled() {
            let pruned = overall.take_index_pruned() + session.personal.take_index_pruned();
            if pruned > 0 {
                self.config.sink.count(names::BORDER_INDEX_PRUNED, pruned);
            }
        }
        positive
    }

    /// Find a minimal overall-unclassified assignment that `member` has not
    /// yet answered (directly or through pruning).
    fn find_askable(
        &self,
        overall: &ClassificationState,
        cache: &CrowdCache,
        member: &dyn CrowdMember,
    ) -> Option<Assignment> {
        let vocab = self.space.ontology().vocabulary();
        let askable = |a: &Assignment| {
            let fs = self.cache.instantiate(self.space, a);
            !cache.has_answer_from(&fs, member.id()) && member.can_answer(&fs)
        };
        let mut stack: Vec<Assignment> = Vec::new();
        let mut seen: HashSet<Assignment> = HashSet::new();
        for root in self.space.roots() {
            match overall.status(&root, vocab) {
                Status::Unclassified if askable(&root) => return Some(root),
                Status::Insignificant => {}
                _ => {
                    if seen.insert(root.clone()) {
                        stack.push(root);
                    }
                }
            }
        }
        while let Some(n) = stack.pop() {
            for s in self.cache.successors(self.space, &n).iter() {
                match overall.status(s, vocab) {
                    Status::Unclassified if askable(s) => return Some(s.clone()),
                    Status::Insignificant => {}
                    _ => {
                        if seen.insert(s.clone()) {
                            stack.push(s.clone());
                        }
                    }
                }
            }
        }
        None
    }

    /// Like [`find_askable`](Self::find_askable) but collects up to `width`
    /// candidates in the same traversal order, descending *through* askable
    /// nodes so the slate also covers the questions that become minimal once
    /// the first picks are classified. Prediction-only: the commit loop keeps
    /// using the single-result variant.
    fn find_askable_many(
        &self,
        overall: &ClassificationState,
        cache: &CrowdCache,
        member: &dyn CrowdMember,
        width: usize,
    ) -> Vec<Assignment> {
        let vocab = self.space.ontology().vocabulary();
        let askable = |a: &Assignment| {
            let fs = self.cache.instantiate(self.space, a);
            !cache.has_answer_from(&fs, member.id()) && member.can_answer(&fs)
        };
        let mut found: Vec<Assignment> = Vec::new();
        let mut stack: Vec<Assignment> = Vec::new();
        let mut seen: HashSet<Assignment> = HashSet::new();
        for root in self.space.roots() {
            if overall.status(&root, vocab) == Status::Unclassified && askable(&root) {
                found.push(root.clone());
                if found.len() >= width {
                    return found;
                }
            }
            if overall.status(&root, vocab) != Status::Insignificant && seen.insert(root.clone()) {
                stack.push(root);
            }
        }
        while let Some(n) = stack.pop() {
            for s in self.cache.successors(self.space, &n).iter() {
                if overall.status(s, vocab) == Status::Insignificant {
                    continue;
                }
                if overall.status(s, vocab) == Status::Unclassified
                    && askable(s)
                    && !found.contains(s)
                {
                    found.push(s.clone());
                    if found.len() >= width {
                        return found;
                    }
                }
                if seen.insert(s.clone()) {
                    stack.push(s.clone());
                }
            }
        }
        found
    }

    fn render_answers(
        &self,
        msps: &[Assignment],
        cache: &CrowdCache,
    ) -> Vec<QueryAnswer> {
        let vocab = self.space.ontology().vocabulary();
        msps.iter()
            .map(|a| {
                let factset = self.cache.instantiate(self.space, a);
                let answers = cache.supports(&factset);
                let support = if answers.is_empty() {
                    None
                } else {
                    Some(answers.iter().sum::<f64>() / answers.len() as f64)
                };
                QueryAnswer {
                    assignment: a.clone(),
                    factset: FactSet::clone(&factset),
                    valid: self.cache.is_valid(self.space, a),
                    support,
                    rendered: vocab.factset_to_string(&factset),
                }
            })
            .collect()
    }
}

/// The OASSIS system facade: parse → SPARQL → mine → answers.
///
/// ```
/// use oassis_core::{EngineConfig, Oassis};
/// use oassis_crowd::transaction::table3_dbs;
/// use oassis_crowd::{CrowdMember, DbMember, MemberId};
/// use oassis_store::ontology::figure1_ontology;
/// use std::sync::Arc;
///
/// let ontology = figure1_ontology();
/// let vocab = Arc::new(ontology.vocabulary().clone());
/// let (d1, _) = table3_dbs(&vocab);
/// let mut members: Vec<Box<dyn CrowdMember>> =
///     vec![Box::new(DbMember::new(MemberId(1), d1, vocab))];
///
/// let engine = Oassis::new(ontology);
/// let config = EngineConfig { aggregator_sample: 1, ..EngineConfig::default() };
/// let result = engine
///     .execute(
///         "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///          SATISFYING $y doAt <Bronx Zoo> WITH SUPPORT = 0.5",
///         &mut members,
///         &config,
///     )
///     .unwrap();
/// assert!(result.answers.iter().any(|a| a.rendered.contains("Feed a monkey")));
/// ```
pub struct Oassis {
    ontology: Arc<Ontology>,
}

impl Oassis {
    /// Create an engine over `ontology`.
    pub fn new(ontology: Ontology) -> Self {
        Oassis {
            ontology: Arc::new(ontology),
        }
    }

    /// Create from a shared ontology.
    pub fn from_arc(ontology: Arc<Ontology>) -> Self {
        Oassis { ontology }
    }

    /// The engine's ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Parse `query_src` against the ontology.
    pub fn parse(&self, query_src: &str) -> Result<Query, OassisError> {
        Ok(parse_query(query_src, &self.ontology)?)
    }

    /// Build the assignment space for a parsed query.
    pub fn space(&self, query: &Query, config: &EngineConfig) -> Result<AssignSpace, OassisError> {
        let _span = Span::enter(&*config.sink, names::SPAN_SPACE_BUILD);
        Ok(AssignSpace::build_with_sink(
            Arc::clone(&self.ontology),
            query,
            config.mode,
            config.more_domain.clone(),
            &config.sink,
        )?)
    }

    /// Execute `query_src` against `members` with the paper's multi-user
    /// algorithm, at the query's own `WITH SUPPORT` threshold.
    pub fn execute(
        &self,
        query_src: &str,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let query = {
            let _span = Span::enter(&*config.sink, names::SPAN_PLAN);
            self.parse(query_src)?
        };
        self.execute_parsed(&query, query.satisfying.support, members, config)
    }

    /// Execute a parsed query at an explicit threshold (the §6.3 replay
    /// methodology varies the threshold over one cached answer set).
    pub fn execute_parsed(
        &self,
        query: &Query,
        threshold: f64,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let space = self.space(query, config)?;
        let miner = MultiUserMiner::new(&space, threshold, config);
        let (result, _) = miner.run_slice(members);
        Ok(self.finalize(result, query, &space))
    }

    /// Like [`execute`](Self::execute), but the crowd runs concurrently
    /// through the session runtime's worker pool.
    pub fn execute_with_runtime(
        &self,
        query_src: &str,
        runtime: SessionRuntime,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let query = {
            let _span = Span::enter(&*config.sink, names::SPAN_PLAN);
            self.parse(query_src)?
        };
        self.execute_parsed_with_runtime(&query, query.satisfying.support, runtime, config)
    }

    /// Concurrent variant of [`execute_parsed`](Self::execute_parsed).
    pub fn execute_parsed_with_runtime(
        &self,
        query: &Query,
        threshold: f64,
        runtime: SessionRuntime,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let space = self.space(query, config)?;
        let miner = MultiUserMiner::new(&space, threshold, config);
        let (result, _) = miner.run(runtime)?;
        Ok(self.finalize(result, query, &space))
    }

    /// Post-process a raw mining result for the query's SELECT form.
    fn finalize(&self, mut result: QueryResult, query: &Query, space: &AssignSpace) -> QueryResult {
        if query.all {
            // `SELECT ... ALL`: besides the MSPs, return every explicitly
            // classified significant assignment (the implied generalizations
            // can be inferred by the caller via the returned state, as the
            // paper notes in footnote 3).
            let vocab = self.ontology.vocabulary();
            let mut seen: std::collections::HashSet<Assignment> = result
                .answers
                .iter()
                .map(|a| a.assignment.clone())
                .collect();
            let extra: Vec<Assignment> = result
                .state
                .explicit_decisions()
                .filter(|(_, sig)| *sig)
                .map(|(a, _)| a.clone())
                .filter(|a| seen.insert(a.clone()))
                .collect();
            for a in extra {
                let factset = space.instantiate(&a);
                let answers = result.cache.supports(&factset);
                let support = if answers.is_empty() {
                    None
                } else {
                    Some(answers.iter().sum::<f64>() / answers.len() as f64)
                };
                result.answers.push(QueryAnswer {
                    valid: space.is_valid(&a),
                    support,
                    rendered: vocab.factset_to_string(&factset),
                    factset,
                    assignment: a,
                });
            }
        }
        if query.select == SelectForm::Variables {
            let names = space.var_names().to_vec();
            for a in &mut result.answers {
                a.rendered = a.assignment.display(&names, self.ontology.vocabulary());
            }
        }
        result
    }

    /// Survey the crowd for MORE-fact candidates (the "more" button of
    /// Section 6.2): each member is prompted, for up to `contexts` base
    /// assignments, with "what else do you do when ...?" and may volunteer
    /// one extra fact per prompt. The deduplicated suggestions become the
    /// `more_domain` for a subsequent execution.
    pub fn discover_more_domain(
        &self,
        query: &Query,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
        contexts: usize,
    ) -> Result<Vec<Fact>, OassisError> {
        let space = self.space(query, config)?;
        let bases = space.base_assignments(contexts);
        let mut out: Vec<Fact> = Vec::new();
        for member in members.iter_mut() {
            for base in &bases {
                if !member.willing() {
                    break;
                }
                let fs = space.instantiate(base);
                if fs.is_empty() {
                    continue;
                }
                for f in member.suggest_more(&fs) {
                    if !out.contains(&f) {
                        out.push(f);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Re-execute a query at `threshold` using only cached answers from a
    /// previous run (Section 6.3): members are replayed from the cache and
    /// the statistics count only the answers the algorithm actually uses.
    ///
    /// Caveat: if the original run classified an assignment purely by
    /// inference (a deeper pattern was significant at the lower threshold),
    /// the cache may hold fewer answers for it than the aggregator's sample
    /// size, and the replay leaves it undecided; the replayed MSP set is
    /// then a subset of a fresh execution's. The figure harness therefore
    /// measures per-threshold question counts with fresh executions, which
    /// matches the paper's "answers used by the algorithm" accounting.
    pub fn replay(
        &self,
        query: &Query,
        threshold: f64,
        cache: &CrowdCache,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let mut members = replay_members(cache);
        self.execute_parsed(query, threshold, &mut members, config)
    }
}

/// Build replay members from a previous run's cache: each answers exactly
/// what they answered before (and support 0 for anything never asked, which
/// a completed run only reaches inside already-insignificant regions).
pub fn replay_members(cache: &CrowdCache) -> Vec<Box<dyn CrowdMember>> {
    use std::collections::HashMap;
    let mut per_member: HashMap<MemberId, HashMap<FactSet, f64>> = HashMap::new();
    for (fs, answers) in cache.iter() {
        for &(m, s) in answers {
            per_member.entry(m).or_default().insert(fs.clone(), s);
        }
    }
    let mut ids: Vec<MemberId> = per_member.keys().copied().collect();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            let answers = per_member.remove(&id).expect("key exists");
            Box::new(ScriptedMember::new_strict(id, answers)) as Box<dyn CrowdMember>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    const QUERY: &str = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.4
    "#;

    /// A crowd of u1/u2 clones large enough for the 5-answer aggregator.
    fn crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
        for i in 0..n_pairs {
            members.push(Box::new(DbMember::new(
                MemberId(2 * i),
                d1.clone(),
                Arc::clone(&vocab),
            )));
            members.push(Box::new(DbMember::new(
                MemberId(2 * i + 1),
                d2.clone(),
                Arc::clone(&vocab),
            )));
        }
        members
    }

    #[test]
    fn multi_user_finds_phi16_style_msps() {
        // With equal numbers of u1/u2 clones, average supports match
        // u_avg of Example 4.6: Biking@CP = avg(2/6, 1/2) = 5/12 ≥ 0.4.
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3); // 6 members ≥ sample size 5
        let cfg = EngineConfig::default();
        let result = engine.execute(QUERY, &mut members, &cfg).unwrap();
        assert!(!result.answers.is_empty());
        let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("Biking doAt Central Park")),
            "answers: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("Feed a monkey doAt Bronx Zoo")),
            "answers: {rendered:?}"
        );
        // Baseball@CP has avg 1/6, 1/2 → 1/3 < 0.4: must not be an MSP.
        assert!(!rendered.iter().any(|r| r.contains("Baseball")));
        // All reported supports meet the threshold (up to float tolerance).
        for a in &result.answers {
            if let Some(s) = a.support {
                assert!(s + 1e-9 >= 0.4, "answer {} has support {s}", a.rendered);
            }
        }
    }

    #[test]
    fn unwilling_members_stop_the_run_gracefully() {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![Box::new(
            DbMember::new(MemberId(0), d1, vocab).with_quota(3),
        )];
        let engine = Oassis::new(figure1_ontology());
        let result = engine
            .execute(QUERY, &mut members, &EngineConfig::default())
            .unwrap();
        assert!(result.stats.total_questions <= 3 + 1);
    }

    #[test]
    fn single_member_sample_one_matches_vertical_semantics() {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> =
            vec![Box::new(DbMember::new(MemberId(0), d1, vocab))];
        let engine = Oassis::new(figure1_ontology());
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let query = engine.parse(QUERY).unwrap();
        let result = engine
            .execute_parsed(&query, 0.3, &mut members, &cfg)
            .unwrap();
        // u1 at 0.3: monkey-feeding and the Biking/Ball-Game combo (2/6each).
        let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();
        assert!(rendered.iter().any(|r| r.contains("Feed a monkey")));
        assert!(rendered.iter().any(|r| r.contains("Biking")));
    }

    #[test]
    fn replay_at_higher_threshold_uses_no_new_crowd_answers() {
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3);
        let cfg = EngineConfig::default();
        let query = engine.parse(QUERY).unwrap();
        let base = engine
            .execute_parsed(&query, 0.2, &mut members, &cfg)
            .unwrap();

        let replayed = engine.replay(&query, 0.4, &base.cache, &cfg).unwrap();
        // Replay asks at most as many questions as the original run.
        assert!(
            replayed.stats.total_questions <= base.stats.total_questions,
            "replay {} > base {}",
            replayed.stats.total_questions,
            base.stats.total_questions
        );
        // Its answers are a subset of a fresh execution at 0.4 (inference
        // in the base run may have classified some assignments with fewer
        // than sample-size direct answers — see `replay`'s caveat).
        let mut fresh_members = crowd(3);
        let fresh = engine
            .execute_parsed(&query, 0.4, &mut fresh_members, &cfg)
            .unwrap();
        let fresh_set: std::collections::HashSet<String> =
            fresh.answers.iter().map(|x| x.rendered.clone()).collect();
        for a in &replayed.answers {
            assert!(
                fresh_set.contains(&a.rendered),
                "replay invented answer {}",
                a.rendered
            );
        }
        assert!(!replayed.answers.is_empty());
    }

    #[test]
    fn higher_threshold_never_finds_more_msps() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let cfg = EngineConfig::default();
        let mut counts = Vec::new();
        let mut members = crowd(3);
        let base = engine
            .execute_parsed(&query, 0.2, &mut members, &cfg)
            .unwrap();
        for th in [0.2, 0.3, 0.4, 0.5] {
            let r = engine.replay(&query, th, &base.cache, &cfg).unwrap();
            counts.push(r.answers.len());
        }
        // MSP counts are not strictly monotone in the threshold in general
        // (footnote 8: raising it can promote several predecessors to MSPs),
        // but the strictest threshold cannot out-produce the loosest.
        assert!(counts.last().unwrap() <= counts.first().unwrap());
    }

    #[test]
    fn select_variables_renders_assignments() {
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3);
        let cfg = EngineConfig::default();
        let src = QUERY.replace("SELECT FACT-SETS", "SELECT VARIABLES");
        let result = engine.execute(&src, &mut members, &cfg).unwrap();
        assert!(
            result
                .answers
                .iter()
                .any(|a| a.rendered.contains("y:") && a.rendered.contains("x:")),
            "{:?}",
            result
                .answers
                .iter()
                .map(|a| &a.rendered)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_members_reconstruct_cache() {
        let mut cache = CrowdCache::new();
        let fs = FactSet::new();
        cache.record(&fs, MemberId(1), 0.5);
        cache.record(&fs, MemberId(2), 0.75);
        let mut members = replay_members(&cache);
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].ask_concrete(&fs), 0.5);
        assert_eq!(members[1].ask_concrete(&fs), 0.75);
    }
}

#[cfg(test)]
mod all_keyword_tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn select_all_includes_non_maximal_significant_patterns() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let engine = Oassis::new(figure1_ontology());
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let src = |all: &str| {
            format!(
                "SELECT FACT-SETS{all} WHERE \
                   $x instanceOf Park. $y subClassOf* Activity \
                 SATISFYING $y doAt $x WITH SUPPORT = 0.3"
            )
        };
        let run = |q: &str| {
            let mut members: Vec<Box<dyn CrowdMember>> = vec![Box::new(DbMember::new(
                MemberId(0),
                d1.clone(),
                Arc::clone(&vocab),
            ))];
            engine.execute(q, &mut members, &cfg).unwrap()
        };
        let msps_only = run(&src(""));
        let all = run(&src(" ALL"));
        assert!(all.answers.len() > msps_only.answers.len());
        // ALL includes the generalization `Sport doAt Central Park` even
        // though `Biking doAt Central Park` is the MSP below it.
        assert!(all
            .answers
            .iter()
            .any(|a| a.rendered == "Sport doAt Central Park"));
        assert!(!msps_only
            .answers
            .iter()
            .any(|a| a.rendered == "Sport doAt Central Park"));
        // The MSP set is a subset of the ALL set.
        for m in &msps_only.answers {
            assert!(all.answers.iter().any(|a| a.rendered == m.rendered));
        }
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    const QUERY: &str = "SELECT FACT-SETS WHERE \
          $x instanceOf $w. $w subClassOf* Attraction. $x inside NYC. \
          $y subClassOf* Activity \
        SATISFYING $y doAt $x WITH SUPPORT = 0.3";

    fn member() -> Box<dyn CrowdMember> {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        Box::new(DbMember::new(MemberId(0), d1, vocab))
    }

    #[test]
    fn top_k_stops_early_and_saves_questions() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let full_cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let mut m1 = vec![member()];
        let full = engine
            .execute_parsed(&query, 0.3, &mut m1, &full_cfg)
            .unwrap();
        assert!(full.answers.iter().filter(|a| a.valid).count() >= 2);

        let topk_cfg = EngineConfig {
            aggregator_sample: 1,
            top_k: Some(1),
            ..EngineConfig::default()
        };
        let mut m2 = vec![member()];
        let topk = engine
            .execute_parsed(&query, 0.3, &mut m2, &topk_cfg)
            .unwrap();
        assert!(
            topk.stats.total_questions < full.stats.total_questions,
            "top-1 ({}) should ask fewer questions than completion ({})",
            topk.stats.total_questions,
            full.stats.total_questions
        );
        assert!(topk.answers.iter().any(|a| a.valid));
    }

    #[test]
    fn observer_sees_answers_incrementally_in_confirmation_order() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let space = engine.space(&query, &cfg).unwrap();
        let miner = MultiUserMiner::new(&space, 0.3, &cfg);
        let mut seen: Vec<String> = Vec::new();
        let mut members = vec![member()];
        let mut observer = |a: &QueryAnswer| {
            seen.push(a.rendered.clone());
        };
        let (result, _) = miner.run_slice_with_observer(&mut members, &mut observer);
        assert_eq!(seen.len(), result.stats.msp_events.len());
        // Everything the observer saw is in the final answer set.
        for s in &seen {
            assert!(result.answers.iter().any(|a| &a.rendered == s), "{s}");
        }
    }
}

#[cfg(test)]
mod discovery_tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn crowd_survey_discovers_the_boathouse_tip() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![
            Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
            Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
        ];
        let engine = Oassis::new(ontology);
        let cfg = EngineConfig::default();
        let query = engine
            .parse(
                "SELECT FACT-SETS WHERE \
                   $x instanceOf $w. $w subClassOf* Attraction. \
                   $y subClassOf* Activity \
                 SATISFYING $y doAt $x. MORE WITH SUPPORT = 0.3",
            )
            .unwrap();
        let domain = engine
            .discover_more_domain(&query, &mut members, &cfg, 500)
            .unwrap();
        let rendered: Vec<String> = domain
            .iter()
            .map(|f| engine.ontology().vocabulary().fact_to_string(f))
            .collect();
        assert!(
            rendered.iter().any(|s| s == "Rent Bikes doAt Boathouse"),
            "suggestions: {rendered:?}"
        );
    }

    #[test]
    fn more_facts_never_duplicate_pattern_facts_in_answers() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![
            Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
            Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
        ];
        let engine = Oassis::new(ontology);
        let query = engine
            .parse(
                "SELECT FACT-SETS WHERE \
                   $x instanceOf $w. $w subClassOf* Attraction. \
                   $y subClassOf* Activity. \
                   $z instanceOf Restaurant \
                 SATISFYING $y doAt $x. [] eatAt $z. MORE WITH SUPPORT = 0.4",
            )
            .unwrap();
        let cfg = EngineConfig {
            aggregator_sample: 2,
            more_domain: engine
                .discover_more_domain(&query, &mut members, &EngineConfig::default(), 500)
                .unwrap(),
            ..EngineConfig::default()
        };
        let result = engine
            .execute_parsed(&query, 0.4, &mut members, &cfg)
            .unwrap();
        // No answer's MORE fact may be comparable with one of its own
        // pattern facts (that would be a semantic duplicate).
        let v = engine.ontology().vocabulary();
        for a in &result.answers {
            for f in a.assignment.more_facts() {
                let inst_without_more: Vec<_> = a.factset.iter().filter(|g| *g != f).collect();
                for g in inst_without_more {
                    assert!(
                        !v.fact_leq(f, g) && !v.fact_leq(g, f),
                        "answer {} carries duplicate advice {}",
                        a.rendered,
                        v.fact_to_string(f)
                    );
                }
            }
        }
    }
}
