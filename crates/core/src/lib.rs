#![warn(missing_docs)]

//! # oassis-core
//!
//! The OASSIS query-evaluation engine (Sections 4 and 5 of the paper):
//!
//! * [`Assignment`]s with multiplicities — mappings from query variables to
//!   *antichains* of vocabulary terms, plus `MORE` facts — and their semantic
//!   partial order (Definition 4.1),
//! * the [`AssignSpace`] — the lazily generated assignment DAG: validity
//!   (`φ(A_WHERE) ≤ O`), membership in the expanded set
//!   `𝒜 = {φ | ∃φ' ∈ 𝒜valid, φ ≤ φ'}`, immediate successors/predecessors,
//!   and lazy combination of multiplicities (Proposition 5.1),
//! * classification by inference ([`border`]): one crowd answer classifies
//!   every generalization (if significant) or every specialization (if not)
//!   — Observation 4.4,
//! * the mining algorithms: the paper's top-down [`VerticalMiner`]
//!   (Algorithm 1), the Apriori-style [`HorizontalMiner`], the random
//!   [`NaiveMiner`], and the §6.3 *baseline* cost model,
//! * the [`MultiUserMiner`] (Section 4.2): per-member traversal with a
//!   global answer cache and a pluggable aggregation black-box,
//! * the concurrent crowd-session [`runtime`]: a worker pool that runs
//!   per-member round-trips in parallel with speculative prefetch, timeouts,
//!   bounded retry and exclusion of unresponsive members — deterministically
//!   equivalent to the sequential path (see `docs/engine.md`),
//! * natural-language [`question`] rendering (Section 6.2's templates),
//! * [`ExecutionStats`] with the per-question discovery curve behind
//!   Figures 4d–4f and 5.

pub mod algo;
pub mod assignment;
pub mod border;
pub mod config;
pub mod diversity;
pub mod engine;
pub mod question;
pub mod rules;
pub mod runtime;
pub mod space;
pub mod stats;
pub mod value;

pub use algo::{
    baseline_question_count, HorizontalMiner, MinerConfig, MinerOutcome, NaiveMiner, VerticalMiner,
};
pub use assignment::Assignment;
pub use border::{ClassificationState, SharedBorder};
pub use config::{EngineConfig, EngineConfigBuilder};
pub use diversity::{diversify_answers, select_diverse};
pub use engine::{
    Answer, AnswerObserver, ClosedOutcome, CrowdView, MiningSession, MultiUserMiner, Oassis,
    OassisError, OassisService, PendingQuestion, QueryAnswer, QueryResult, QuestionPayload,
    RecoveredSession, SessionEvent, SessionId, SessionReport, SessionSpec, SessionSpecBuilder,
    SessionStatus, NODES_TOTAL_CAP,
};
pub use runtime::{
    Clock, QuestionId, RuntimeError, RuntimeErrorKind, RuntimeOptions, SessionRuntime, SimChaos,
    SimConfig, SimTrace, SimTraceHandle, SystemClock, VirtualClock,
};
pub use rules::{mine_rules, AssociationRule};
pub use space::{AssignSpace, NodeId, SpaceCache};
pub use stats::{DiscoveryPoint, ExecutionStats, QuestionKind, Recorder, RecorderSink};
pub use value::AValue;

/// One-stop imports for the three entry points and their configuration.
///
/// The engine has three front doors, each for a different shape of work
/// (see the "which API when" table in `docs/engine.md`):
///
/// * [`Oassis`] — one query, one crowd, blocking: parse → mine → answers.
/// * [`MultiUserMiner`] — one pre-built query over explicit members, with
///   observer and runtime variants.
/// * [`OassisService`] — many concurrent sessions over one shared crowd,
///   with admission, priorities, budgets and durable recovery.
///
/// ```
/// use oassis_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::config::{EngineConfig, EngineConfigBuilder};
    pub use crate::engine::{
        ClosedOutcome, MultiUserMiner, Oassis, OassisError, OassisService, QueryAnswer,
        QueryResult, RecoveredSession, SessionId, SessionReport, SessionSpec, SessionSpecBuilder,
        SessionStatus,
    };
    pub use crate::runtime::{SessionRuntime, SimConfig};
}
