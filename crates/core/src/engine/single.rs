//! The [`Oassis`] system facade (Section 6.1): ontology, parser, SPARQL
//! and mining tied together, plus the Section 6.3 cache-replay
//! methodology for re-executing a query at a higher support threshold
//! without new crowd work.

use std::sync::Arc;

use oassis_crowd::{CrowdCache, CrowdMember, MemberId, ScriptedMember};
use oassis_obs::{names, Span};
use oassis_ql::{parse_query, Query, SelectForm};
use oassis_store::Ontology;
use oassis_vocab::{Fact, FactSet};

use crate::assignment::Assignment;
use crate::config::EngineConfig;
use crate::runtime::SessionRuntime;
use crate::space::AssignSpace;

use super::multi::MultiUserMiner;
use super::{OassisError, QueryAnswer, QueryResult};

/// The OASSIS system facade: parse → SPARQL → mine → answers.
///
/// ```
/// use oassis_core::{EngineConfig, Oassis};
/// use oassis_crowd::transaction::table3_dbs;
/// use oassis_crowd::{CrowdMember, DbMember, MemberId};
/// use oassis_store::ontology::figure1_ontology;
/// use std::sync::Arc;
///
/// let ontology = figure1_ontology();
/// let vocab = Arc::new(ontology.vocabulary().clone());
/// let (d1, _) = table3_dbs(&vocab);
/// let mut members: Vec<Box<dyn CrowdMember>> =
///     vec![Box::new(DbMember::new(MemberId(1), d1, vocab))];
///
/// let engine = Oassis::new(ontology);
/// let config = EngineConfig { aggregator_sample: 1, ..EngineConfig::default() };
/// let result = engine
///     .execute(
///         "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///          SATISFYING $y doAt <Bronx Zoo> WITH SUPPORT = 0.5",
///         &mut members,
///         &config,
///     )
///     .unwrap();
/// assert!(result.answers.iter().any(|a| a.rendered.contains("Feed a monkey")));
/// ```
pub struct Oassis {
    ontology: Arc<Ontology>,
}

impl Oassis {
    /// Create an engine over `ontology`.
    pub fn new(ontology: Ontology) -> Self {
        Oassis {
            ontology: Arc::new(ontology),
        }
    }

    /// Create from a shared ontology.
    pub fn from_arc(ontology: Arc<Ontology>) -> Self {
        Oassis { ontology }
    }

    /// The engine's ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The engine's ontology, shared.
    pub fn ontology_arc(&self) -> Arc<Ontology> {
        Arc::clone(&self.ontology)
    }

    /// Parse `query_src` against the ontology.
    pub fn parse(&self, query_src: &str) -> Result<Query, OassisError> {
        Ok(parse_query(query_src, &self.ontology)?)
    }

    /// Build the assignment space for a parsed query.
    pub fn space(&self, query: &Query, config: &EngineConfig) -> Result<AssignSpace, OassisError> {
        let _span = Span::enter(&*config.sink, names::SPAN_SPACE_BUILD);
        Ok(AssignSpace::build_with_planner(
            Arc::clone(&self.ontology),
            query,
            config.mode,
            config.more_domain.clone(),
            &config.sink,
            config.use_query_planner,
        )?)
    }

    /// Execute `query_src` against `members` with the paper's multi-user
    /// algorithm, at the query's own `WITH SUPPORT` threshold.
    pub fn execute(
        &self,
        query_src: &str,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let query = {
            let _span = Span::enter(&*config.sink, names::SPAN_PLAN);
            self.parse(query_src)?
        };
        self.execute_parsed(&query, query.satisfying.support, members, config)
    }

    /// Execute a parsed query at an explicit threshold (the §6.3 replay
    /// methodology varies the threshold over one cached answer set).
    pub fn execute_parsed(
        &self,
        query: &Query,
        threshold: f64,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let space = self.space(query, config)?;
        let miner = MultiUserMiner::new(&space, threshold, config);
        let (result, _) = miner.run_direct(members);
        Ok(self.finalize(result, query, &space))
    }

    /// Like [`execute`](Self::execute), but the crowd runs concurrently
    /// through the session runtime's worker pool.
    pub fn execute_with_runtime(
        &self,
        query_src: &str,
        runtime: SessionRuntime,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let query = {
            let _span = Span::enter(&*config.sink, names::SPAN_PLAN);
            self.parse(query_src)?
        };
        self.execute_parsed_with_runtime(&query, query.satisfying.support, runtime, config)
    }

    /// Concurrent variant of [`execute_parsed`](Self::execute_parsed).
    pub fn execute_parsed_with_runtime(
        &self,
        query: &Query,
        threshold: f64,
        runtime: SessionRuntime,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let space = self.space(query, config)?;
        let miner = MultiUserMiner::new(&space, threshold, config);
        let (result, _) = miner.run(runtime)?;
        Ok(self.finalize(result, query, &space))
    }

    /// Post-process a raw mining result for the query's SELECT form (also
    /// used by the service layer when a session completes).
    pub(crate) fn finalize(
        &self,
        mut result: QueryResult,
        query: &Query,
        space: &AssignSpace,
    ) -> QueryResult {
        if query.all {
            // `SELECT ... ALL`: besides the MSPs, return every explicitly
            // classified significant assignment (the implied generalizations
            // can be inferred by the caller via the returned state, as the
            // paper notes in footnote 3).
            let vocab = self.ontology.vocabulary();
            let mut seen: std::collections::HashSet<Assignment> = result
                .answers
                .iter()
                .map(|a| a.assignment.clone())
                .collect();
            let extra: Vec<Assignment> = result
                .state
                .explicit_decisions()
                .filter(|(_, sig)| *sig)
                .map(|(a, _)| a.clone())
                .filter(|a| seen.insert(a.clone()))
                .collect();
            for a in extra {
                let factset = space.instantiate(&a);
                let answers = result.cache.supports(&factset);
                let support = if answers.is_empty() {
                    None
                } else {
                    Some(answers.iter().sum::<f64>() / answers.len() as f64)
                };
                result.answers.push(QueryAnswer {
                    valid: space.is_valid(&a),
                    support,
                    rendered: vocab.factset_to_string(&factset),
                    factset,
                    assignment: a,
                });
            }
        }
        if query.select == SelectForm::Variables {
            let names = space.var_names().to_vec();
            for a in &mut result.answers {
                a.rendered = a.assignment.display(&names, self.ontology.vocabulary());
            }
        }
        result
    }

    /// Survey the crowd for MORE-fact candidates (the "more" button of
    /// Section 6.2): each member is prompted, for up to `contexts` base
    /// assignments, with "what else do you do when ...?" and may volunteer
    /// one extra fact per prompt. The deduplicated suggestions become the
    /// `more_domain` for a subsequent execution.
    pub fn discover_more_domain(
        &self,
        query: &Query,
        members: &mut [Box<dyn CrowdMember>],
        config: &EngineConfig,
        contexts: usize,
    ) -> Result<Vec<Fact>, OassisError> {
        let space = self.space(query, config)?;
        let bases = space.base_assignments(contexts);
        let mut out: Vec<Fact> = Vec::new();
        for member in members.iter_mut() {
            for base in &bases {
                if !member.willing() {
                    break;
                }
                let fs = space.instantiate(base);
                if fs.is_empty() {
                    continue;
                }
                for f in member.suggest_more(&fs) {
                    if !out.contains(&f) {
                        out.push(f);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Re-execute a query at `threshold` using only cached answers from a
    /// previous run (Section 6.3): members are replayed from the cache and
    /// the statistics count only the answers the algorithm actually uses.
    ///
    /// Caveat: if the original run classified an assignment purely by
    /// inference (a deeper pattern was significant at the lower threshold),
    /// the cache may hold fewer answers for it than the aggregator's sample
    /// size, and the replay leaves it undecided; the replayed MSP set is
    /// then a subset of a fresh execution's. The figure harness therefore
    /// measures per-threshold question counts with fresh executions, which
    /// matches the paper's "answers used by the algorithm" accounting.
    pub fn replay(
        &self,
        query: &Query,
        threshold: f64,
        cache: &CrowdCache,
        config: &EngineConfig,
    ) -> Result<QueryResult, OassisError> {
        let mut members = replay_members(cache);
        self.execute_parsed(query, threshold, &mut members, config)
    }
}

/// Build replay members from a previous run's cache: each answers exactly
/// what they answered before (and support 0 for anything never asked, which
/// a completed run only reaches inside already-insignificant regions).
pub fn replay_members(cache: &CrowdCache) -> Vec<Box<dyn CrowdMember>> {
    use std::collections::HashMap;
    let mut per_member: HashMap<MemberId, HashMap<FactSet, f64>> = HashMap::new();
    for (fs, answers) in cache.iter() {
        for &(m, s) in answers {
            per_member.entry(m).or_default().insert(fs.clone(), s);
        }
    }
    let mut ids: Vec<MemberId> = per_member.keys().copied().collect();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            let answers = per_member.remove(&id).expect("key exists");
            Box::new(ScriptedMember::new_strict(id, answers)) as Box<dyn CrowdMember>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    const QUERY: &str = r#"
        SELECT FACT-SETS
        WHERE
          $w subClassOf* Attraction.
          $x instanceOf $w.
          $x inside NYC.
          $x hasLabel "child-friendly".
          $y subClassOf* Activity
        SATISFYING
          $y+ doAt $x
        WITH SUPPORT = 0.4
    "#;

    /// A crowd of u1/u2 clones large enough for the 5-answer aggregator.
    fn crowd(n_pairs: u32) -> Vec<Box<dyn CrowdMember>> {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = Vec::new();
        for i in 0..n_pairs {
            members.push(Box::new(DbMember::new(
                MemberId(2 * i),
                d1.clone(),
                Arc::clone(&vocab),
            )));
            members.push(Box::new(DbMember::new(
                MemberId(2 * i + 1),
                d2.clone(),
                Arc::clone(&vocab),
            )));
        }
        members
    }

    #[test]
    fn multi_user_finds_phi16_style_msps() {
        // With equal numbers of u1/u2 clones, average supports match
        // u_avg of Example 4.6: Biking@CP = avg(2/6, 1/2) = 5/12 ≥ 0.4.
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3); // 6 members ≥ sample size 5
        let cfg = EngineConfig::default();
        let result = engine.execute(QUERY, &mut members, &cfg).unwrap();
        assert!(!result.answers.is_empty());
        let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("Biking doAt Central Park")),
            "answers: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("Feed a monkey doAt Bronx Zoo")),
            "answers: {rendered:?}"
        );
        // Baseball@CP has avg 1/6, 1/2 → 1/3 < 0.4: must not be an MSP.
        assert!(!rendered.iter().any(|r| r.contains("Baseball")));
        // All reported supports meet the threshold (up to float tolerance).
        for a in &result.answers {
            if let Some(s) = a.support {
                assert!(s + 1e-9 >= 0.4, "answer {} has support {s}", a.rendered);
            }
        }
    }

    #[test]
    fn unwilling_members_stop_the_run_gracefully() {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![Box::new(
            DbMember::new(MemberId(0), d1, vocab).with_quota(3),
        )];
        let engine = Oassis::new(figure1_ontology());
        let result = engine
            .execute(QUERY, &mut members, &EngineConfig::default())
            .unwrap();
        assert!(result.stats.total_questions <= 3 + 1);
    }

    #[test]
    fn single_member_sample_one_matches_vertical_semantics() {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> =
            vec![Box::new(DbMember::new(MemberId(0), d1, vocab))];
        let engine = Oassis::new(figure1_ontology());
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let query = engine.parse(QUERY).unwrap();
        let result = engine
            .execute_parsed(&query, 0.3, &mut members, &cfg)
            .unwrap();
        // u1 at 0.3: monkey-feeding and the Biking/Ball-Game combo (2/6each).
        let rendered: Vec<&str> = result.answers.iter().map(|a| a.rendered.as_str()).collect();
        assert!(rendered.iter().any(|r| r.contains("Feed a monkey")));
        assert!(rendered.iter().any(|r| r.contains("Biking")));
    }

    #[test]
    fn replay_at_higher_threshold_uses_no_new_crowd_answers() {
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3);
        let cfg = EngineConfig::default();
        let query = engine.parse(QUERY).unwrap();
        let base = engine
            .execute_parsed(&query, 0.2, &mut members, &cfg)
            .unwrap();

        let replayed = engine.replay(&query, 0.4, &base.cache, &cfg).unwrap();
        // Replay asks at most as many questions as the original run.
        assert!(
            replayed.stats.total_questions <= base.stats.total_questions,
            "replay {} > base {}",
            replayed.stats.total_questions,
            base.stats.total_questions
        );
        // Its answers are a subset of a fresh execution at 0.4 (inference
        // in the base run may have classified some assignments with fewer
        // than sample-size direct answers — see `replay`'s caveat).
        let mut fresh_members = crowd(3);
        let fresh = engine
            .execute_parsed(&query, 0.4, &mut fresh_members, &cfg)
            .unwrap();
        let fresh_set: std::collections::HashSet<String> =
            fresh.answers.iter().map(|x| x.rendered.clone()).collect();
        for a in &replayed.answers {
            assert!(
                fresh_set.contains(&a.rendered),
                "replay invented answer {}",
                a.rendered
            );
        }
        assert!(!replayed.answers.is_empty());
    }

    #[test]
    fn higher_threshold_never_finds_more_msps() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let cfg = EngineConfig::default();
        let mut counts = Vec::new();
        let mut members = crowd(3);
        let base = engine
            .execute_parsed(&query, 0.2, &mut members, &cfg)
            .unwrap();
        for th in [0.2, 0.3, 0.4, 0.5] {
            let r = engine.replay(&query, th, &base.cache, &cfg).unwrap();
            counts.push(r.answers.len());
        }
        // MSP counts are not strictly monotone in the threshold in general
        // (footnote 8: raising it can promote several predecessors to MSPs),
        // but the strictest threshold cannot out-produce the loosest.
        assert!(counts.last().unwrap() <= counts.first().unwrap());
    }

    #[test]
    fn select_variables_renders_assignments() {
        let engine = Oassis::new(figure1_ontology());
        let mut members = crowd(3);
        let cfg = EngineConfig::default();
        let src = QUERY.replace("SELECT FACT-SETS", "SELECT VARIABLES");
        let result = engine.execute(&src, &mut members, &cfg).unwrap();
        assert!(
            result
                .answers
                .iter()
                .any(|a| a.rendered.contains("y:") && a.rendered.contains("x:")),
            "{:?}",
            result
                .answers
                .iter()
                .map(|a| &a.rendered)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_members_reconstruct_cache() {
        let mut cache = CrowdCache::new();
        let fs = FactSet::new();
        cache.record(&fs, MemberId(1), 0.5);
        cache.record(&fs, MemberId(2), 0.75);
        let mut members = replay_members(&cache);
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].ask_concrete(&fs), 0.5);
        assert_eq!(members[1].ask_concrete(&fs), 0.75);
    }
}

#[cfg(test)]
mod all_keyword_tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn select_all_includes_non_maximal_significant_patterns() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        let engine = Oassis::new(figure1_ontology());
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let src = |all: &str| {
            format!(
                "SELECT FACT-SETS{all} WHERE \
                   $x instanceOf Park. $y subClassOf* Activity \
                 SATISFYING $y doAt $x WITH SUPPORT = 0.3"
            )
        };
        let run = |q: &str| {
            let mut members: Vec<Box<dyn CrowdMember>> = vec![Box::new(DbMember::new(
                MemberId(0),
                d1.clone(),
                Arc::clone(&vocab),
            ))];
            engine.execute(q, &mut members, &cfg).unwrap()
        };
        let msps_only = run(&src(""));
        let all = run(&src(" ALL"));
        assert!(all.answers.len() > msps_only.answers.len());
        // ALL includes the generalization `Sport doAt Central Park` even
        // though `Biking doAt Central Park` is the MSP below it.
        assert!(all
            .answers
            .iter()
            .any(|a| a.rendered == "Sport doAt Central Park"));
        assert!(!msps_only
            .answers
            .iter()
            .any(|a| a.rendered == "Sport doAt Central Park"));
        // The MSP set is a subset of the ALL set.
        for m in &msps_only.answers {
            assert!(all.answers.iter().any(|a| a.rendered == m.rendered));
        }
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use crate::engine::{MultiUserMiner, QueryAnswer};
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    const QUERY: &str = "SELECT FACT-SETS WHERE \
          $x instanceOf $w. $w subClassOf* Attraction. $x inside NYC. \
          $y subClassOf* Activity \
        SATISFYING $y doAt $x WITH SUPPORT = 0.3";

    fn member() -> Box<dyn CrowdMember> {
        let o = figure1_ontology();
        let vocab = Arc::new(o.vocabulary().clone());
        let (d1, _) = table3_dbs(&vocab);
        Box::new(DbMember::new(MemberId(0), d1, vocab))
    }

    #[test]
    fn top_k_stops_early_and_saves_questions() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let full_cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let mut m1 = vec![member()];
        let full = engine
            .execute_parsed(&query, 0.3, &mut m1, &full_cfg)
            .unwrap();
        assert!(full.answers.iter().filter(|a| a.valid).count() >= 2);

        let topk_cfg = EngineConfig {
            aggregator_sample: 1,
            top_k: Some(1),
            ..EngineConfig::default()
        };
        let mut m2 = vec![member()];
        let topk = engine
            .execute_parsed(&query, 0.3, &mut m2, &topk_cfg)
            .unwrap();
        assert!(
            topk.stats.total_questions < full.stats.total_questions,
            "top-1 ({}) should ask fewer questions than completion ({})",
            topk.stats.total_questions,
            full.stats.total_questions
        );
        assert!(topk.answers.iter().any(|a| a.valid));
    }

    #[test]
    fn observer_sees_answers_incrementally_in_confirmation_order() {
        let engine = Oassis::new(figure1_ontology());
        let query = engine.parse(QUERY).unwrap();
        let cfg = EngineConfig {
            aggregator_sample: 1,
            ..EngineConfig::default()
        };
        let space = engine.space(&query, &cfg).unwrap();
        let miner = MultiUserMiner::new(&space, 0.3, &cfg);
        let mut seen: Vec<String> = Vec::new();
        let mut members = vec![member()];
        let mut observer = |a: &QueryAnswer| {
            seen.push(a.rendered.clone());
        };
        let (result, _) = miner.run_direct_with_observer(&mut members, &mut observer);
        assert_eq!(seen.len(), result.stats.msp_events.len());
        // Everything the observer saw is in the final answer set.
        for s in &seen {
            assert!(result.answers.iter().any(|a| &a.rendered == s), "{s}");
        }
    }
}

#[cfg(test)]
mod discovery_tests {
    use super::*;
    use oassis_crowd::transaction::table3_dbs;
    use oassis_crowd::DbMember;
    use oassis_store::ontology::figure1_ontology;

    #[test]
    fn crowd_survey_discovers_the_boathouse_tip() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![
            Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
            Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
        ];
        let engine = Oassis::new(ontology);
        let cfg = EngineConfig::default();
        let query = engine
            .parse(
                "SELECT FACT-SETS WHERE \
                   $x instanceOf $w. $w subClassOf* Attraction. \
                   $y subClassOf* Activity \
                 SATISFYING $y doAt $x. MORE WITH SUPPORT = 0.3",
            )
            .unwrap();
        let domain = engine
            .discover_more_domain(&query, &mut members, &cfg, 500)
            .unwrap();
        let rendered: Vec<String> = domain
            .iter()
            .map(|f| engine.ontology().vocabulary().fact_to_string(f))
            .collect();
        assert!(
            rendered.iter().any(|s| s == "Rent Bikes doAt Boathouse"),
            "suggestions: {rendered:?}"
        );
    }

    #[test]
    fn more_facts_never_duplicate_pattern_facts_in_answers() {
        let ontology = figure1_ontology();
        let vocab = Arc::new(ontology.vocabulary().clone());
        let (d1, d2) = table3_dbs(&vocab);
        let mut members: Vec<Box<dyn CrowdMember>> = vec![
            Box::new(DbMember::new(MemberId(1), d1, Arc::clone(&vocab))),
            Box::new(DbMember::new(MemberId(2), d2, Arc::clone(&vocab))),
        ];
        let engine = Oassis::new(ontology);
        let query = engine
            .parse(
                "SELECT FACT-SETS WHERE \
                   $x instanceOf $w. $w subClassOf* Attraction. \
                   $y subClassOf* Activity. \
                   $z instanceOf Restaurant \
                 SATISFYING $y doAt $x. [] eatAt $z. MORE WITH SUPPORT = 0.4",
            )
            .unwrap();
        let cfg = EngineConfig {
            aggregator_sample: 2,
            more_domain: engine
                .discover_more_domain(&query, &mut members, &EngineConfig::default(), 500)
                .unwrap(),
            ..EngineConfig::default()
        };
        let result = engine
            .execute_parsed(&query, 0.4, &mut members, &cfg)
            .unwrap();
        // No answer's MORE fact may be comparable with one of its own
        // pattern facts (that would be a semantic duplicate).
        let v = engine.ontology().vocabulary();
        for a in &result.answers {
            for f in a.assignment.more_facts() {
                let inst_without_more: Vec<_> = a.factset.iter().filter(|g| *g != f).collect();
                for g in inst_without_more {
                    assert!(
                        !v.fact_leq(f, g) && !v.fact_leq(g, f),
                        "answer {} carries duplicate advice {}",
                        a.rendered,
                        v.fact_to_string(f)
                    );
                }
            }
        }
    }
}
