//! [`MultiUserMiner`] — the single-query driver for the pull-based
//! [`MiningSession`].
//!
//! The miner owns nothing algorithmic: it builds one session, then loops
//! `poll → deliver → absorb`, routing each staged [`PendingQuestion`] to
//! the crowd over a [`CrowdLink`] — either directly over a borrowed member
//! slice on the caller's thread, or through the session runtime's worker
//! pool (with speculative prefetch hiding the simulated answer latency).

use std::sync::Arc;
use std::time::Instant;

use oassis_crowd::{
    Aggregator, CrowdCache, CrowdMember, Decision, FixedSampleAggregator, MemberId,
};
use oassis_obs::{names, EventSink, SinkExt, Span};
use oassis_vocab::{ElementId, FactSet};

use crate::assignment::Assignment;
use crate::config::EngineConfig;
use crate::runtime::{
    AskPayload, AskValue, Clock, Pool, RuntimeError, RuntimeErrorKind, SessionRuntime,
};
use crate::space::{AssignSpace, SpaceCache};

use super::session::{
    Answer, CrowdView, MiningSession, PendingQuestion, QuestionPayload, SessionEvent,
};
use super::{AnswerObserver, Handle, IgnoreAnswers, OassisError, QueryResult};

/// How the driver reaches the crowd: directly over a borrowed member slice
/// on the caller's thread, or through the session runtime's worker pool.
/// Every ask returns `None` only on the pooled path, when the runtime
/// excluded the member instead of delivering an answer.
enum CrowdLink<'m> {
    Direct(&'m mut [Box<dyn CrowdMember>]),
    Pooled(Pool),
}

impl CrowdLink<'_> {
    fn len(&self) -> usize {
        match self {
            CrowdLink::Direct(members) => members.len(),
            CrowdLink::Pooled(pool) => pool.len(),
        }
    }

    fn id(&self, idx: usize) -> MemberId {
        match self {
            CrowdLink::Direct(members) => members[idx].id(),
            CrowdLink::Pooled(pool) => pool.member_id(idx),
        }
    }

    /// A shared view of the member, when it is home (always, on the direct
    /// path; between round-trips on the pooled path) and not excluded.
    fn member(&self, idx: usize) -> Option<&dyn CrowdMember> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].as_ref()),
            CrowdLink::Pooled(pool) => pool.member(idx),
        }
    }

    /// Block until the member's in-flight speculative answer (if any) has
    /// been absorbed. No-op on the direct path.
    fn sync(&mut self, idx: usize) {
        if let CrowdLink::Pooled(pool) = self {
            pool.sync(idx);
        }
    }

    fn excluded(&self, idx: usize) -> bool {
        match self {
            CrowdLink::Direct(_) => false,
            CrowdLink::Pooled(pool) => pool.excluded(idx),
        }
    }

    /// Ask the concrete question `phi`/`fs`, waiting out the simulated
    /// answer latency (in-line when direct, on a worker when pooled).
    fn concrete(
        &mut self,
        idx: usize,
        phi: &Assignment,
        fs: &FactSet,
        sink: &Arc<dyn EventSink>,
        clock: &dyn Clock,
    ) -> Option<f64> {
        match self {
            CrowdLink::Direct(members) => {
                let member = &mut members[idx];
                // The synchronous path has no timeout: a slow answer is
                // waited out, a dropped one degrades to an immediate one.
                if let Some(d) = member.answer_delay() {
                    clock.sleep(d);
                }
                let s = if sink.enabled() {
                    let _roundtrip = Span::enter(&**sink, names::SPAN_ROUNDTRIP);
                    let start = Instant::now();
                    let s = member.ask_concrete(fs);
                    sink.observe(names::CROWD_ANSWER_NANOS, start.elapsed().as_nanos() as f64);
                    s
                } else {
                    member.ask_concrete(fs)
                };
                Some(s)
            }
            CrowdLink::Pooled(pool) => {
                // A speculative prefetch may already hold this answer.
                if let Some(s) = pool.shared().lookup(fs, pool.member_id(idx)) {
                    pool.note_speculation_hit();
                    return Some(s);
                }
                match pool.ask(
                    idx,
                    AskPayload::Concrete {
                        assignment: phi.clone(),
                        factset: fs.clone(),
                    },
                ) {
                    Some(AskValue::Support(s)) => Some(s),
                    _ => None,
                }
            }
        }
    }

    /// Ask the specialization question (base + candidate fact-sets).
    fn specialization(
        &mut self,
        idx: usize,
        base: &FactSet,
        candidates: &[FactSet],
    ) -> Option<Option<(usize, f64)>> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].ask_specialization(base, candidates)),
            CrowdLink::Pooled(pool) => match pool.ask(
                idx,
                AskPayload::Specialization {
                    base: base.clone(),
                    candidates: candidates.to_vec(),
                },
            ) {
                Some(AskValue::Choice(choice)) => Some(choice),
                _ => None,
            },
        }
    }

    /// Ask for the member's irrelevant elements (user-guided pruning).
    fn irrelevant(&mut self, idx: usize, fs: &FactSet) -> Option<Vec<ElementId>> {
        match self {
            CrowdLink::Direct(members) => Some(members[idx].irrelevant_elements(fs)),
            CrowdLink::Pooled(pool) => {
                match pool.ask(idx, AskPayload::Pruning { factset: fs.clone() }) {
                    Some(AskValue::Irrelevant(elems)) => Some(elems),
                    _ => None,
                }
            }
        }
    }
}

impl CrowdView for CrowdLink<'_> {
    fn gone(&mut self, seat: usize) -> bool {
        // Bring the member home: absorb its in-flight speculative answer
        // (if any) before its committed turn.
        self.sync(seat);
        self.excluded(seat)
    }

    fn willing(&mut self, seat: usize) -> bool {
        self.member(seat).is_some_and(|m| m.willing())
    }

    fn can_answer(&mut self, seat: usize, fs: &FactSet) -> bool {
        self.member(seat).is_some_and(|m| m.can_answer(fs))
    }
}

/// Forwards an aggregator borrowed from the miner into a session (the
/// session wants an owned box, the miner keeps its own for reuse across
/// runs).
struct AggRef<'x>(&'x dyn Aggregator);

impl Aggregator for AggRef<'_> {
    fn decide(&self, answers: &[f64], threshold: f64) -> Decision {
        self.0.decide(answers, threshold)
    }

    fn estimate(&self, answers: &[f64]) -> Option<f64> {
        self.0.estimate(answers)
    }
}

/// The multi-user mining engine: the five modifications of Section 4.2 on
/// top of the vertical traversal — per-member top-down sessions, answers
/// recorded per assignment in the [`CrowdCache`], overall classification by
/// a pluggable [`Aggregator`] black-box, member-positive descent
/// (`s ≥ θ` **and** not overall-insignificant), and MSP confirmation on the
/// closing answer.
///
/// All of that now lives in [`MiningSession`]; the miner is the driver that
/// connects one session to one crowd.
pub struct MultiUserMiner<'a> {
    space: &'a AssignSpace,
    /// Interned memo over `space`'s derivations; pass-through when
    /// [`EngineConfig::use_indexes`] is off.
    cache: Arc<SpaceCache>,
    threshold: f64,
    aggregator: Box<dyn Aggregator + 'a>,
    config: &'a EngineConfig,
}

impl<'a> MultiUserMiner<'a> {
    /// Create a miner with the paper's fixed-sample aggregation rule.
    pub fn new(space: &'a AssignSpace, threshold: f64, config: &'a EngineConfig) -> Self {
        let cache = if config.use_indexes {
            Arc::new(SpaceCache::with_capacity(
                config.space_cache_capacity,
                Arc::clone(&config.sink),
            ))
        } else {
            Arc::new(SpaceCache::disabled())
        };
        MultiUserMiner {
            space,
            cache,
            threshold,
            aggregator: Box::new(FixedSampleAggregator {
                sample_size: config.aggregator_sample,
            }),
            config,
        }
    }

    /// Replace the aggregation black-box.
    pub fn with_aggregator(mut self, aggregator: Box<dyn Aggregator + 'a>) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Run the crowd concurrently through the session runtime until every
    /// assignment is classified or the crowd is exhausted. The coordinator
    /// (this thread) executes the exact sequential commit loop; crowd
    /// round-trips ride the runtime's worker pool, with speculative
    /// prefetch hiding answer latency (see [`crate::runtime`]).
    ///
    /// **Determinism**: for members whose answers are a pure function of
    /// the asked fact-set (no answer noise, no question quota), a
    /// concurrent run with seed S yields the identical answer set — and
    /// identical [`ExecutionStats`](crate::stats::ExecutionStats) — as
    /// [`run_direct`](Self::run_direct) with seed S.
    ///
    /// Fails with [`OassisError::Runtime`] only when *every* member has
    /// been excluded (per-question timeouts through all retries, or a
    /// panicking answer callback); partial exclusions are tolerated and
    /// the run continues with the remaining members.
    pub fn run(&self, runtime: SessionRuntime) -> Result<(QueryResult, CrowdCache), OassisError> {
        self.run_with_observer(runtime, &mut IgnoreAnswers)
    }

    /// Like [`run`](Self::run), but notifies `observer` the moment each MSP
    /// is confirmed — the incremental-answer delivery the paper highlights
    /// ("answers can be returned faster, as soon as they are identified").
    /// With [`EngineConfig::top_k`] set, the run stops once that many valid
    /// MSPs have been confirmed.
    pub fn run_with_observer(
        &self,
        runtime: SessionRuntime,
        observer: &mut dyn AnswerObserver,
    ) -> Result<(QueryResult, CrowdCache), OassisError> {
        let vocab = Arc::new(self.space.ontology().vocabulary().clone());
        let pool = Pool::start(runtime, vocab, Arc::clone(&self.config.sink));
        let mut link = CrowdLink::Pooled(pool);
        self.run_loop(&mut link, observer)
    }

    /// Run synchronously over a bare member slice on the caller's thread.
    /// Infallible — no timeouts or exclusions exist on the synchronous
    /// path; a member's [`answer_delay`](CrowdMember::answer_delay) is
    /// simply waited out in-line before each concrete answer (dropped
    /// answers degrade to immediate ones).
    pub fn run_direct(&self, members: &mut [Box<dyn CrowdMember>]) -> (QueryResult, CrowdCache) {
        self.run_direct_with_observer(members, &mut IgnoreAnswers)
    }

    /// Slice-based variant of [`run_with_observer`](Self::run_with_observer).
    pub fn run_direct_with_observer(
        &self,
        members: &mut [Box<dyn CrowdMember>],
        observer: &mut dyn AnswerObserver,
    ) -> (QueryResult, CrowdCache) {
        let mut link = CrowdLink::Direct(members);
        self.run_loop(&mut link, observer)
            .expect("the synchronous crowd path cannot fail")
    }

    /// The shared driver loop behind both crowd paths: poll the session,
    /// deliver each staged question over the link, feed the answer back.
    fn run_loop(
        &self,
        link: &mut CrowdLink<'_>,
        observer: &mut dyn AnswerObserver,
    ) -> Result<(QueryResult, CrowdCache), OassisError> {
        let seat_ids: Vec<MemberId> = (0..link.len()).map(|i| link.id(i)).collect();
        let mut session = MiningSession::from_parts(
            Handle::Borrowed(self.space),
            Arc::clone(&self.cache),
            self.threshold,
            Box::new(AggRef(&*self.aggregator)),
            Handle::Borrowed(self.config),
            seat_ids,
            "multiuser".to_string(),
        );

        // Speculative prefetch requires the member's next question to be a
        // pure function of the commit state: any rng-driven question-type
        // choice breaks that, so speculation turns off with the ratios.
        let speculate = matches!(link, CrowdLink::Pooled(_))
            && self.config.specialization_ratio == 0.0
            && self.config.pruning_ratio == 0.0;

        // Warm-up: every member's first question is predictable from the
        // initial border, so prefetch it before the first committed turn —
        // otherwise each member's first round-trip is a guaranteed
        // coordinator stall on the full simulated latency.
        if speculate {
            if let CrowdLink::Pooled(pool) = link {
                pool.publish_border(session.overall());
                for idx in 0..pool.len() {
                    if !pool.can_speculate(idx) {
                        continue;
                    }
                    let candidates = pool
                        .member(idx)
                        .filter(|m| m.willing())
                        .map(|member| session.predict_questions(idx, pool.shared(), member))
                        .unwrap_or_default();
                    pool.speculate(idx, candidates);
                }
            }
        }

        loop {
            match session.poll(link) {
                SessionEvent::Ask(q) => {
                    let answer = Self::deliver(link, &q, self.config);
                    session.absorb(q.id, answer);
                }
                SessionEvent::TurnEnded { seat } => {
                    // Deliver newly confirmed MSPs incrementally.
                    for a in session.take_new_answers() {
                        observer.on_answer(&a);
                    }
                    if speculate {
                        if let CrowdLink::Pooled(pool) = link {
                            pool.publish_border(session.overall());
                            if pool.can_speculate(seat) && !session.seat_exhausted(seat) {
                                let candidates = pool
                                    .member(seat)
                                    .filter(|m| m.willing())
                                    .map(|member| {
                                        session.predict_questions(seat, pool.shared(), member)
                                    })
                                    .unwrap_or_default();
                                pool.speculate(seat, candidates);
                            }
                        }
                    }
                }
                SessionEvent::Finished => break,
            }
        }
        // MSPs confirmed on the final turn (e.g. a top-k cutoff) are still
        // pending delivery.
        for a in session.take_new_answers() {
            observer.on_answer(&a);
        }

        if let CrowdLink::Pooled(pool) = link {
            pool.finish();
            let excluded = pool.excluded_count();
            if excluded > 0 && pool.all_excluded() {
                let mut err = RuntimeError::new(RuntimeErrorKind::CrowdExhausted { excluded });
                if let Some(cause) = pool.take_last_error() {
                    err = err.with_source(Box::new(cause));
                }
                return Err(OassisError::Runtime(err));
            }
        }

        Ok(session.finish())
    }

    /// Put one staged question to the crowd. `Answer::Unavailable` means
    /// the runtime excluded the member instead of delivering.
    fn deliver(link: &mut CrowdLink<'_>, q: &PendingQuestion, config: &EngineConfig) -> Answer {
        match &q.payload {
            QuestionPayload::Concrete {
                assignment,
                factset,
            } => match link.concrete(q.seat, assignment, factset, &config.sink, &*config.clock) {
                Some(s) => Answer::Support(s),
                None => Answer::Unavailable,
            },
            QuestionPayload::Specialization { base, candidates } => {
                match link.specialization(q.seat, base, candidates) {
                    Some(choice) => Answer::Choice(choice),
                    None => Answer::Unavailable,
                }
            }
            QuestionPayload::Pruning { factset } => match link.irrelevant(q.seat, factset) {
                Some(elems) => Answer::Irrelevant(elems),
                None => Answer::Unavailable,
            },
        }
    }
}
