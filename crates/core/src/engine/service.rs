//! [`OassisService`] — the multi-query service layer: many concurrent
//! [`MiningSession`]s multiplexed over **one** shared crowd.
//!
//! The service admits queries ([`submit`](OassisService::submit)) against a
//! single [`SessionRuntime`] worker pool and schedules them in
//! priority-then-round-robin cycles ([`run`](OassisService::run)). Each
//! cycle gives every live session at most one *crowd* dispatch; answers are
//! routed back as they arrive, so sessions overlap their crowd latency
//! instead of queueing behind one another.
//!
//! Cross-query reuse flows through the [`AnswerStore`]:
//!
//! * at **admission**, a new session's `CrowdCache` is seeded with every
//!   stored answer from its roster members ([`MiningSession::seed_answers`]),
//!   so already-answered questions are never staged;
//! * at **dispatch**, a staged concrete question is first looked up in the
//!   store and, on a hit, answered without touching the crowd
//!   (`answerstore.hit[serve]`);
//! * at **completion**, the session's collected answers are absorbed back
//!   into the store for every later query.
//!
//! With an empty store and a single session, the service reproduces
//! [`MultiUserMiner::run`](super::MultiUserMiner::run) exactly — same MSP
//! set, same question count (the differential tests in `tests/service.rs`
//! enforce this).
//!
//! ## Durability
//!
//! A service started with [`start_with_persistence`]
//! (OassisService::start_with_persistence) appends one [`WalRecord`] per
//! state change — a committed crowd answer, an admission, a budget spend,
//! a close — to a [`Persistence`] log, and periodically compacts it into
//! a snapshot. [`recover`](OassisService::recover) /
//! [`recover_with`](OassisService::recover_with) replay the log on
//! startup: the cross-query [`AnswerStore`] is rebuilt in full, and every
//! session that was admitted but had not closed comes back as a
//! re-admittable [`RecoveredSession`] — [`resume`](OassisService::resume)
//! re-admits it, re-seeding it from the recovered answers so only the
//! questions whose answers were lost in flight are asked again. The crash
//! oracle in `oassis-simtest` sweeps exactly this contract: kill at any
//! log index, recover, and the final valid-MSP sets (and, for disjoint
//! rosters, the per-query crowd-question totals) match the uninterrupted
//! run.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use oassis_crowd::{AnswerStore, FixedSampleAggregator, MemberId};
use oassis_obs::{names, EventSink, SinkExt};
use oassis_ql::Query;
use oassis_store_durable::{
    shared, AdmitSpec, CloseStatus, FileBacked, SharedPersistence, WalRecord,
};
use oassis_vocab::FactSet;

use crate::config::EngineConfig;
use crate::runtime::{AskPayload, AskValue, Pool, QuestionId, SessionRuntime};
use crate::space::{AssignSpace, SpaceCache};

use super::session::{
    Answer, CrowdView, MiningSession, PendingQuestion, QuestionPayload, SessionEvent,
};
use super::single::Oassis;
use super::{Handle, OassisError, QueryResult};

/// Service-assigned identifier of an admitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Mined to completion (or the crowd had nothing more to give).
    Completed,
    /// Cancelled via [`OassisService::cancel`]; the result holds whatever
    /// was classified up to that point.
    Cancelled,
    /// The per-session crowd-question budget ran out; partial result.
    BudgetExhausted,
}

/// An admission request for [`OassisService::submit`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// OASSIS-QL query source.
    pub query: String,
    /// Support threshold override; defaults to the query's own
    /// `WITH SUPPORT` value.
    pub threshold: Option<f64>,
    /// Engine configuration for this session (seed, aggregator sample,
    /// question ratios, ...).
    pub config: EngineConfig,
    /// Pool seat indices this session may ask. `None` = the whole crowd.
    pub roster: Option<Vec<usize>>,
    /// Scheduling priority: higher goes first within a cycle; equal
    /// priorities rotate round-robin across cycles.
    pub priority: u8,
    /// Cap on *crowd* dispatches for this session (store-served and
    /// cache-served questions are free). `None` = unlimited.
    pub budget: Option<usize>,
}

impl SessionSpec {
    /// A spec with default config, full roster, priority 0 and no budget.
    #[deprecated(note = "use the fluent `SessionSpec::builder(query)` instead")]
    pub fn new(query: impl Into<String>) -> Self {
        Self::base(query)
    }

    fn base(query: impl Into<String>) -> Self {
        SessionSpec {
            query: query.into(),
            threshold: None,
            config: EngineConfig::default(),
            roster: None,
            priority: 0,
            budget: None,
        }
    }

    /// Fluent construction, mirroring [`EngineConfig::builder`]:
    ///
    /// ```
    /// use oassis_core::{EngineConfig, SessionSpec};
    ///
    /// let spec = SessionSpec::builder("SELECT FACT-SETS WHERE ...")
    ///     .threshold(0.4)
    ///     .roster(vec![0, 1, 2])
    ///     .priority(5)
    ///     .budget(200)
    ///     .config(EngineConfig::builder().seed(7).build())
    ///     .build();
    /// assert_eq!(spec.priority, 5);
    /// ```
    pub fn builder(query: impl Into<String>) -> SessionSpecBuilder {
        SessionSpecBuilder {
            spec: Self::base(query),
        }
    }
}

/// Fluent builder for [`SessionSpec`] — see [`SessionSpec::builder`].
#[derive(Debug, Clone)]
pub struct SessionSpecBuilder {
    spec: SessionSpec,
}

impl SessionSpecBuilder {
    /// Override the query's own `WITH SUPPORT` threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.spec.threshold = Some(threshold);
        self
    }

    /// Engine configuration for the session.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Restrict the session to these pool seats.
    pub fn roster(mut self, seats: Vec<usize>) -> Self {
        self.spec.roster = Some(seats);
        self
    }

    /// Scheduling priority (higher goes first within a cycle).
    pub fn priority(mut self, priority: u8) -> Self {
        self.spec.priority = priority;
        self
    }

    /// Cap on crowd dispatches for the session.
    pub fn budget(mut self, budget: usize) -> Self {
        self.spec.budget = Some(budget);
        self
    }

    /// Finish building.
    pub fn build(self) -> SessionSpec {
        self.spec
    }
}

/// The outcome of one admitted session, returned by
/// [`OassisService::run`] in admission order.
#[derive(Debug)]
pub struct SessionReport {
    /// The session's id (as returned by [`OassisService::submit`]).
    pub id: SessionId,
    /// How the session ended.
    pub status: SessionStatus,
    /// The finalized query result (SELECT-form post-processing applied).
    pub result: QueryResult,
    /// Questions actually dispatched to the crowd for this session.
    pub crowd_questions: usize,
    /// Concrete questions served from the cross-query [`AnswerStore`]
    /// at dispatch time.
    pub store_hits: usize,
}

/// A question handed to the pool whose answer has not come back yet.
struct InFlight {
    /// The session-local question id to `absorb` with.
    session_q: QuestionId,
    /// The pool-side question id to match in `take_completed`.
    pool_q: QuestionId,
    /// The pool seat the question went to.
    pool_idx: usize,
    /// For concrete questions: what to log into the [`AnswerStore`] when
    /// the answer arrives.
    concrete: Option<(FactSet, MemberId)>,
}

/// One admitted session plus its scheduling state.
struct SessionSlot {
    id: SessionId,
    session: MiningSession<'static>,
    query: Query,
    space: Arc<AssignSpace>,
    /// Pool seat index per session seat (session seat `i` asks pool seat
    /// `roster[i]`).
    roster: Vec<usize>,
    priority: u8,
    budget: Option<usize>,
    crowd_questions: usize,
    store_hits: usize,
    in_flight: Option<InFlight>,
    cancel_requested: bool,
    finished: Option<SessionStatus>,
    result: Option<QueryResult>,
    /// The `Admit` record as appended to the WAL (durable services only);
    /// re-embedded into snapshots while the session is live so a recovery
    /// from the compacted log can still resume it.
    admit_record: Option<WalRecord>,
}

/// An interrupted session reconstructed from the durability log by
/// [`OassisService::recover`]: admitted before the crash, never closed.
/// Pass it to [`OassisService::resume`] to re-admit it — the new session
/// is seeded from the recovered [`AnswerStore`], so it re-asks only the
/// questions whose answers were lost in flight.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The session's id in the interrupted run (the resumption gets a
    /// fresh id; the log links them).
    pub original: SessionId,
    /// The re-admittable spec, rebuilt from the `Admit` record. The
    /// budget is the *original* grant; [`OassisService::resume`] deducts
    /// [`spent`](Self::spent). Runtime-only config (sink, clock, curve
    /// tracking) is reset to defaults — adjust before resuming if needed.
    pub spec: SessionSpec,
    /// Crowd questions the interrupted run already dispatched (from the
    /// last `Budget` watermark; includes any question that was in flight
    /// when the process died, so budget accounting stays conservative).
    pub spent: usize,
}

/// A session's view of the shared pool, restricted to its roster.
///
/// `gone` *blocks* (via [`Pool::sync`]) until the seat's member is home:
/// a seat busy with another session's question is waited out, never
/// mistaken for an exhausted member — that would end the waiting session's
/// round with false "no progress" and truncate its results.
struct PoolView<'p> {
    pool: &'p mut Pool,
    roster: &'p [usize],
}

impl CrowdView for PoolView<'_> {
    fn gone(&mut self, seat: usize) -> bool {
        let idx = self.roster[seat];
        self.pool.sync(idx);
        self.pool.excluded(idx)
    }

    fn willing(&mut self, seat: usize) -> bool {
        self.pool
            .member(self.roster[seat])
            .is_some_and(|m| m.willing())
    }

    fn can_answer(&mut self, seat: usize, fs: &FactSet) -> bool {
        self.pool
            .member(self.roster[seat])
            .is_some_and(|m| m.can_answer(fs))
    }
}

/// The multi-query OASSIS service: one crowd, many concurrent mining
/// sessions, cross-query answer reuse.
///
/// ```no_run
/// use oassis_core::{OassisService, SessionSpec, SessionRuntime};
/// use oassis_core::Oassis;
/// use oassis_store::ontology::figure1_ontology;
/// # let members = Vec::new();
///
/// let mut service = OassisService::start(
///     Oassis::new(figure1_ontology()),
///     SessionRuntime::new(members),
/// );
/// let q = "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///          SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.4";
/// service.submit(SessionSpec::builder(q).build()).unwrap();
/// service.submit(SessionSpec::builder(q).priority(5).build()).unwrap();
/// for report in service.run() {
///     println!("session {:?}: {} answers", report.id, report.result.answers.len());
/// }
/// ```
pub struct OassisService {
    engine: Oassis,
    pool: Pool,
    store: AnswerStore,
    sink: Arc<dyn EventSink>,
    slots: Vec<SessionSlot>,
    next_id: u64,
    cycle: u64,
    /// Durability log shared with the answer store (`None` = volatile).
    persistence: Option<SharedPersistence>,
}

/// Snapshot interval (appended records) used by
/// [`OassisService::recover`]'s default file-backed persistence.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

impl OassisService {
    /// Start a service over `runtime`'s crowd with a fresh answer store
    /// and the engine's default (null) sink.
    pub fn start(engine: Oassis, runtime: SessionRuntime) -> Self {
        Self::start_with_sink(engine, runtime, oassis_obs::null_sink())
    }

    /// Start a service reporting `service.*` events to `sink`.
    pub fn start_with_sink(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        let vocab = Arc::new(engine.ontology().vocabulary().clone());
        let pool = Pool::start(runtime, vocab, Arc::clone(&sink));
        OassisService {
            engine,
            pool,
            store: AnswerStore::new().with_sink(Arc::clone(&sink)),
            sink,
            slots: Vec::new(),
            next_id: 0,
            cycle: 0,
            persistence: None,
        }
    }

    /// Start a *durable* service: every committed crowd answer, session
    /// admission, budget spend and session close is appended to
    /// `persistence`, and the log is compacted into snapshots at the
    /// persistence's configured interval. Use
    /// [`recover_with`](Self::recover_with) on the same persistence after
    /// a restart.
    pub fn start_with_persistence(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
        persistence: SharedPersistence,
    ) -> Self {
        let mut service = Self::start_with_sink(engine, runtime, sink);
        service.store = AnswerStore::new()
            .with_sink(Arc::clone(&service.sink))
            .with_persistence(Arc::clone(&persistence));
        service.persistence = Some(persistence);
        service
    }

    /// Recover a durable service from the file-backed log under `dir`
    /// (see [`FileBacked`]): load the latest snapshot, replay the WAL
    /// tail, rebuild the answer store, and return the service plus every
    /// interrupted session as a re-admittable [`RecoveredSession`] (in
    /// admission order) — [`resume`](Self::resume) each to continue it.
    /// Opening a fresh directory yields an empty durable service, so this
    /// is also the normal way to *start* a file-backed service.
    pub fn recover(
        engine: Oassis,
        runtime: SessionRuntime,
        dir: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<RecoveredSession>), OassisError> {
        let file = FileBacked::open(dir)?.with_snapshot_every(DEFAULT_SNAPSHOT_EVERY);
        Self::recover_with(engine, runtime, oassis_obs::null_sink(), shared(file))
    }

    /// [`recover`](Self::recover) over any [`Persistence`] (and sink):
    /// replays `persistence` into a fresh service. The persistence stays
    /// attached — the recovered service keeps appending to the same log.
    pub fn recover_with(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
        persistence: SharedPersistence,
    ) -> Result<(Self, Vec<RecoveredSession>), OassisError> {
        let records = persistence
            .lock()
            .expect("persistence poisoned")
            .replay()?;
        let mut service = Self::start_with_sink(engine, runtime, sink);

        // Rebuild the answer store from the log *before* attaching the
        // persistence, so replay does not re-append what is already there.
        let store = AnswerStore::new().with_sink(Arc::clone(&service.sink));
        store.replay_records(&records);
        service.store = store.with_persistence(Arc::clone(&persistence));
        service.persistence = Some(persistence);

        // Fold session lifecycles: admitted, budget watermark, closed,
        // superseded by a later resumption.
        #[derive(Default)]
        struct Lifecycle {
            spec: Option<AdmitSpec>,
            spent: u64,
            closed: bool,
            superseded: bool,
        }
        let mut sessions: BTreeMap<u64, Lifecycle> = BTreeMap::new();
        for record in &records {
            match record {
                WalRecord::Admit {
                    session,
                    resumes,
                    spec,
                } => {
                    if let Some(old) = resumes {
                        sessions.entry(*old).or_default().superseded = true;
                    }
                    sessions.entry(*session).or_default().spec = Some(spec.clone());
                }
                WalRecord::Budget { session, spent } => {
                    sessions.entry(*session).or_default().spent = *spent;
                }
                WalRecord::Close { session, .. } => {
                    sessions.entry(*session).or_default().closed = true;
                }
                WalRecord::Answer { .. } => {}
            }
        }
        service.next_id = sessions.keys().next_back().map_or(0, |id| id + 1);
        let recovered = sessions
            .into_iter()
            .filter(|(_, l)| !l.closed && !l.superseded)
            .filter_map(|(id, l)| {
                l.spec.map(|admit| RecoveredSession {
                    original: SessionId(id),
                    spec: spec_from_admit(admit),
                    spent: l.spent as usize,
                })
            })
            .collect();
        Ok((service, recovered))
    }

    /// Re-admit an interrupted session recovered by
    /// [`recover`](Self::recover). The resumption gets a fresh id, is
    /// seeded from the recovered answer store (so paid-for answers are
    /// not re-asked), has any already-spent budget deducted, and is
    /// logged as superseding the original — a second crash recovers the
    /// resumption, not both.
    pub fn resume(&mut self, recovered: RecoveredSession) -> Result<SessionId, OassisError> {
        let RecoveredSession {
            original,
            mut spec,
            spent,
        } = recovered;
        spec.budget = spec.budget.map(|b| b.saturating_sub(spent));
        self.admit(spec, Some(original))
    }

    /// Number of crowd seats in the shared pool.
    pub fn crowd_len(&self) -> usize {
        self.pool.len()
    }

    /// The cross-query answer store (e.g. for persistence via
    /// [`AnswerStore::export_text`]).
    pub fn store(&self) -> &AnswerStore {
        &self.store
    }

    /// Number of admitted, not-yet-reported sessions.
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.finished.is_none()).count()
    }

    /// Admit a session: parse the query, build its space, seed its cache
    /// from the answer store. The session does no crowd work until
    /// [`run`](Self::run).
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId, OassisError> {
        self.admit(spec, None)
    }

    /// The shared admission path behind [`submit`](Self::submit) and
    /// [`resume`](Self::resume); `resumes` carries the superseded
    /// session's id into the durable `Admit` record.
    fn admit(
        &mut self,
        spec: SessionSpec,
        resumes: Option<SessionId>,
    ) -> Result<SessionId, OassisError> {
        // Capture the durable shape of the spec before its pieces are
        // moved out below (only when a log is attached).
        let admit_spec = self.persistence.as_ref().map(|_| AdmitSpec {
            query: spec.query.clone(),
            threshold: spec.threshold,
            roster: spec.roster.clone(),
            priority: spec.priority,
            budget: spec.budget.map(|b| b as u64),
            seed: spec.config.seed,
            aggregator_sample: spec.config.aggregator_sample,
            specialization_ratio: spec.config.specialization_ratio,
            pruning_ratio: spec.config.pruning_ratio,
            max_questions: spec.config.max_questions,
            top_k: spec.config.top_k,
            use_indexes: spec.config.use_indexes,
        });
        let query = self.engine.parse(&spec.query)?;
        let threshold = spec.threshold.unwrap_or(query.satisfying.support);
        let config = Arc::new(spec.config);
        let space = Arc::new(self.engine.space(&query, &config)?);
        let scache = if config.use_indexes {
            Arc::new(SpaceCache::with_capacity(
                config.space_cache_capacity,
                Arc::clone(&config.sink),
            ))
        } else {
            Arc::new(SpaceCache::disabled())
        };
        let roster = match spec.roster {
            Some(roster) => {
                for &idx in &roster {
                    if idx >= self.pool.len() {
                        return Err(OassisError::Query(oassis_ql::QlError::Invalid(format!(
                            "roster seat {idx} out of range (crowd has {} members)",
                            self.pool.len()
                        ))));
                    }
                }
                roster
            }
            None => (0..self.pool.len()).collect(),
        };
        let member_ids: Vec<MemberId> = roster.iter().map(|&i| self.pool.member_id(i)).collect();
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let aggregator = Box::new(FixedSampleAggregator {
            sample_size: config.aggregator_sample,
        });
        let mut session = MiningSession::from_parts(
            Handle::Shared(Arc::clone(&space)),
            scache,
            threshold,
            aggregator,
            Handle::Shared(Arc::clone(&config)),
            member_ids.clone(),
            format!("multiuser.s{}", id.0),
        );
        let seeded = session.seed_answers(&self.store.seed_for(&member_ids));
        if seeded > 0 {
            self.sink
                .count_labeled(names::ANSWERSTORE_HIT, "seed", seeded as u64);
        }
        let admit_record = admit_spec.map(|admit| WalRecord::Admit {
            session: id.0,
            resumes: resumes.map(|s| s.0),
            spec: admit,
        });
        if let Some(record) = &admit_record {
            self.append_wal(record);
        }
        self.slots.push(SessionSlot {
            id,
            session,
            query,
            space,
            roster,
            priority: spec.priority,
            budget: spec.budget,
            crowd_questions: 0,
            store_hits: 0,
            in_flight: None,
            cancel_requested: false,
            finished: None,
            result: None,
            admit_record,
        });
        self.sink.gauge(
            names::SERVICE_SESSIONS_ACTIVE,
            self.active_sessions() as f64,
        );
        self.maybe_snapshot();
        Ok(id)
    }

    /// Request cancellation of `id`. Takes effect at the session's next
    /// scheduling slot (after any in-flight answer is routed back); its
    /// report carries [`SessionStatus::Cancelled`] and the partial result.
    /// Returns whether the session exists and was still live.
    pub fn cancel(&mut self, id: SessionId) -> bool {
        match self
            .slots
            .iter_mut()
            .find(|s| s.id == id && s.finished.is_none())
        {
            Some(slot) => {
                slot.cancel_requested = true;
                true
            }
            None => false,
        }
    }

    /// Drive every admitted session to an end state and return their
    /// reports in admission order. Each scheduling cycle visits live
    /// sessions in priority order (ties rotate round-robin) and gives each
    /// at most one crowd dispatch; store-served answers and question-free
    /// turns are processed inline.
    pub fn run(&mut self) -> Vec<SessionReport> {
        while self.active_sessions() > 0 {
            self.route_completed();
            let order = self.cycle_order();
            let mut any_inflight = false;
            for i in order {
                self.route_completed();
                if self.slots[i].finished.is_some() {
                    continue;
                }
                if self.slots[i].cancel_requested && self.slots[i].in_flight.is_none() {
                    self.finalize_slot(i, SessionStatus::Cancelled);
                    continue;
                }
                if self.slots[i].in_flight.is_some() {
                    // Waiting on the crowd; revisit once the answer lands.
                    any_inflight = true;
                    continue;
                }
                if self.pump_slot(i) {
                    any_inflight = true;
                }
            }
            // Every live session is either finished or waiting on the
            // crowd: block for one answer so the next cycle can progress.
            if any_inflight && self.pool.pump_one() {
                self.route_completed();
            }
            self.cycle += 1;
            self.maybe_snapshot();
        }
        self.slots
            .drain(..)
            .map(|slot| SessionReport {
                id: slot.id,
                status: slot.finished.expect("loop exits only when all finished"),
                result: slot.result.expect("finalized with its status"),
                crowd_questions: slot.crowd_questions,
                store_hits: slot.store_hits,
            })
            .collect()
    }

    /// Live slot indices for this cycle: priority descending, equal
    /// priorities rotated by cycle number for round-robin fairness.
    fn cycle_order(&self) -> Vec<usize> {
        let mut live: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].finished.is_none())
            .collect();
        live.sort_by_key(|&i| std::cmp::Reverse(self.slots[i].priority));
        let rot = self.cycle as usize;
        let mut ordered = Vec::with_capacity(live.len());
        let mut j = 0;
        while j < live.len() {
            let p = self.slots[live[j]].priority;
            let mut k = j;
            while k < live.len() && self.slots[live[k]].priority == p {
                k += 1;
            }
            let group = &live[j..k];
            for t in 0..group.len() {
                ordered.push(group[(t + rot) % group.len()]);
            }
            j = k;
        }
        ordered
    }

    /// Advance slot `i` until it finishes, dispatches one crowd question,
    /// or exhausts its budget. Returns whether it now has a question in
    /// flight.
    fn pump_slot(&mut self, i: usize) -> bool {
        loop {
            let event = {
                let Self { pool, slots, .. } = self;
                let SessionSlot {
                    session, roster, ..
                } = &mut slots[i];
                let mut view = PoolView { pool, roster };
                session.poll(&mut view)
            };
            match event {
                SessionEvent::Finished => {
                    self.finalize_slot(i, SessionStatus::Completed);
                    return false;
                }
                SessionEvent::TurnEnded { .. } => {
                    // Incremental MSP delivery is a per-session driver
                    // concern; the service reports complete results.
                    let _ = self.slots[i].session.take_new_answers();
                }
                SessionEvent::Ask(q) => {
                    // `gone()`'s sync may have absorbed other sessions'
                    // answers while this one was polling.
                    self.route_completed();
                    match self.handle_ask(i, q) {
                        AskFlow::Served => {}
                        AskFlow::Dispatched => return true,
                        AskFlow::Stalled => return true,
                        AskFlow::Finished => return false,
                    }
                }
            }
        }
    }

    /// Resolve one staged question: serve from the store, absorb an
    /// exclusion, or dispatch to the crowd.
    fn handle_ask(&mut self, i: usize, q: PendingQuestion) -> AskFlow {
        let pool_idx = self.slots[i].roster[q.seat];
        // Dispatch-time reuse: a concrete question another query already
        // answered is served from the store without any crowd traffic.
        if let QuestionPayload::Concrete { factset, .. } = &q.payload {
            if let Some(s) = self.store.lookup(factset, q.member) {
                self.slots[i].store_hits += 1;
                self.slots[i].session.absorb(q.id, Answer::Support(s));
                return AskFlow::Served;
            }
        }
        if self.pool.excluded(pool_idx) {
            self.slots[i].session.absorb(q.id, Answer::Unavailable);
            return AskFlow::Served;
        }
        if let Some(b) = self.slots[i].budget {
            if self.slots[i].crowd_questions >= b {
                self.finalize_slot(i, SessionStatus::BudgetExhausted);
                return AskFlow::Finished;
            }
        }
        let payload = match &q.payload {
            QuestionPayload::Concrete {
                assignment,
                factset,
            } => AskPayload::Concrete {
                assignment: assignment.clone(),
                factset: factset.clone(),
            },
            QuestionPayload::Specialization { base, candidates } => AskPayload::Specialization {
                base: base.clone(),
                candidates: candidates.clone(),
            },
            QuestionPayload::Pruning { factset } => AskPayload::Pruning {
                factset: factset.clone(),
            },
        };
        match self.pool.dispatch_committed(pool_idx, payload) {
            None => {
                // The seat is busy with another session's question; the
                // staged question is re-offered next cycle.
                AskFlow::Stalled
            }
            Some(pool_q) => {
                let concrete = match &q.payload {
                    QuestionPayload::Concrete { factset, .. } => {
                        Some((factset.clone(), q.member))
                    }
                    _ => None,
                };
                let slot = &mut self.slots[i];
                slot.in_flight = Some(InFlight {
                    session_q: q.id,
                    pool_q,
                    pool_idx,
                    concrete,
                });
                slot.crowd_questions += 1;
                let session = slot.id.0;
                // Budgeted sessions log a spend watermark per dispatch, so
                // recovery deducts everything paid for (or lost in flight).
                let spend_mark = slot.budget.map(|_| slot.crowd_questions as u64);
                self.sink.count_labeled(
                    names::SERVICE_QUESTION_DISPATCHED,
                    &format!("s{session}"),
                    1,
                );
                if let Some(spent) = spend_mark {
                    self.append_wal(&WalRecord::Budget { session, spent });
                }
                AskFlow::Dispatched
            }
        }
    }

    /// Route every buffered pool answer to the session that asked it.
    fn route_completed(&mut self) {
        for (pool_q, pool_idx, value) in self.pool.take_completed() {
            let Some(i) = self.slots.iter().position(|s| {
                s.in_flight
                    .as_ref()
                    .is_some_and(|f| f.pool_q == pool_q && f.pool_idx == pool_idx)
            }) else {
                // A response for a question whose session already ended
                // (e.g. cancelled mid-flight after exclusion); drop it.
                continue;
            };
            let inflight = self.slots[i].in_flight.take().expect("matched just above");
            let answer = match value {
                None => Answer::Unavailable,
                Some(AskValue::Support(s)) => Answer::Support(s),
                Some(AskValue::Choice(c)) => Answer::Choice(c),
                Some(AskValue::Irrelevant(elems)) => Answer::Irrelevant(elems),
                // The service never speculates, so a prefetch answer can
                // only be a stray; treat it as a lost question.
                Some(AskValue::Prefetched(_)) => Answer::Unavailable,
            };
            if let (Some((fs, member)), Answer::Support(s)) = (&inflight.concrete, &answer) {
                // Log committed concrete answers immediately so sessions
                // later in the same cycle can already reuse them. The
                // durable record is attributed to the paying session.
                self.store
                    .record_tagged(fs, *member, *s, Some(self.slots[i].id.0));
            }
            self.sink.count_labeled(
                names::SERVICE_QUESTION_RESOLVED,
                &format!("s{}", self.slots[i].id.0),
                1,
            );
            self.slots[i].session.absorb(inflight.session_q, answer);
        }
    }

    /// End slot `i` with `status`: close its session, absorb its answers
    /// into the store, finalize the result for the query's SELECT form.
    fn finalize_slot(&mut self, i: usize, status: SessionStatus) {
        let (result, cache) = self.slots[i].session.finish();
        self.store.absorb_cache(&cache);
        let result = self
            .engine
            .finalize(result, &self.slots[i].query, &self.slots[i].space);
        self.slots[i].result = Some(result);
        self.slots[i].finished = Some(status);
        if self.persistence.is_some() {
            self.append_wal(&WalRecord::Close {
                session: self.slots[i].id.0,
                status: match status {
                    SessionStatus::Completed => CloseStatus::Completed,
                    SessionStatus::Cancelled => CloseStatus::Cancelled,
                    SessionStatus::BudgetExhausted => CloseStatus::BudgetExhausted,
                },
                crowd_questions: self.slots[i].crowd_questions as u64,
            });
        }
        self.sink.gauge(
            names::SERVICE_SESSIONS_ACTIVE,
            self.active_sessions() as f64,
        );
    }

    /// Append one record to the durability log (no-op when volatile).
    fn append_wal(&self, record: &WalRecord) {
        if let Some(p) = &self.persistence {
            p.lock()
                .expect("persistence poisoned")
                .append(record)
                .expect("wal append failed");
        }
    }

    /// Compact the log into a snapshot when the tail has outgrown the
    /// persistence's interval. The compacted sequence reproduces the full
    /// live state: the answer store in canonical order, then an `Admit`
    /// (+ latest `Budget` watermark) per live session. Closed sessions
    /// need no recovery and are dropped by compaction.
    fn maybe_snapshot(&mut self) {
        let Some(p) = &self.persistence else {
            return;
        };
        if !p.lock().expect("persistence poisoned").wants_snapshot() {
            return;
        }
        let mut compacted = self.store.to_records();
        for slot in &self.slots {
            if slot.finished.is_some() {
                continue;
            }
            if let Some(admit) = &slot.admit_record {
                compacted.push(admit.clone());
                if slot.budget.is_some() && slot.crowd_questions > 0 {
                    compacted.push(WalRecord::Budget {
                        session: slot.id.0,
                        spent: slot.crowd_questions as u64,
                    });
                }
            }
        }
        p.lock()
            .expect("persistence poisoned")
            .snapshot(&compacted)
            .expect("snapshot failed");
    }
}

/// Rebuild a [`SessionSpec`] from a durable `Admit` record. Only the
/// scalar config subset is durable; everything else is defaulted.
fn spec_from_admit(admit: AdmitSpec) -> SessionSpec {
    let mut config = EngineConfig::builder()
        .seed(admit.seed)
        .aggregator_sample(admit.aggregator_sample)
        .specialization_ratio(admit.specialization_ratio)
        .pruning_ratio(admit.pruning_ratio)
        .max_questions(admit.max_questions)
        .use_indexes(admit.use_indexes);
    if let Some(k) = admit.top_k {
        config = config.top_k(k);
    }
    SessionSpec {
        query: admit.query,
        threshold: admit.threshold,
        config: config.build(),
        roster: admit.roster,
        priority: admit.priority,
        budget: admit.budget.map(|b| b as usize),
    }
}

/// What `handle_ask` did with a staged question.
enum AskFlow {
    /// Answered inline (store hit or exclusion); keep pumping the session.
    Served,
    /// Dispatched to the crowd; the session waits for the answer.
    Dispatched,
    /// The seat was busy; the question stays staged for the next cycle.
    Stalled,
    /// The slot was finalized (budget exhausted).
    Finished,
}
