//! [`OassisService`] — the multi-query service layer: many concurrent
//! [`MiningSession`]s multiplexed over **one** shared crowd.
//!
//! The service admits queries ([`submit`](OassisService::submit)) against a
//! single [`SessionRuntime`] worker pool and schedules them in
//! priority-then-round-robin cycles ([`run`](OassisService::run)). Each
//! cycle gives every live session at most one *committed* crowd dispatch;
//! answers are routed back as they arrive, so sessions overlap their crowd
//! latency instead of queueing behind one another.
//!
//! ## Question waves
//!
//! With [`set_wave_size`](OassisService::set_wave_size) above 1, each
//! session additionally keeps a *wave* of up to `wave_size` questions in
//! flight per cycle: beyond its one committed dispatch, the service
//! predicts the session's next concrete questions
//! ([`MiningSession::predict_questions`] — a read-only walk of the same
//! selection logic the commit loop runs) and dispatches them
//! speculatively across the pool's member shards. Speculative answers
//! land in the pool's shared cache; when the commit loop stages such a
//! question, it is served from the cache and **accounted exactly like a
//! crowd dispatch** (`crowd_questions`, budget spend, WAL watermark,
//! `service.question.dispatched/resolved`, plus `wave.hit`) — it *was*
//! one, just paid earlier. That accounting is what keeps the valid-MSP
//! sets and question counts identical across wave sizes (the `wave-sweep`
//! sim oracle enforces it). Sessions that ask specialization or pruning
//! questions (RNG-driven kinds prediction cannot see) never join waves.
//! The wave size is a runtime tuning knob, not part of a session's spec:
//! it is not persisted, and a recovered service starts back at 1.
//!
//! Cross-query reuse flows through the [`AnswerStore`]:
//!
//! * at **admission**, a new session's `CrowdCache` is seeded with every
//!   stored answer from its roster members ([`MiningSession::seed_answers`]),
//!   so already-answered questions are never staged;
//! * at **dispatch**, a staged concrete question is first looked up in the
//!   store and, on a hit, answered without touching the crowd
//!   (`answerstore.hit[serve]`);
//! * at **completion**, the session's collected answers are absorbed back
//!   into the store for every later query.
//!
//! With an empty store and a single session, the service reproduces
//! [`MultiUserMiner::run`](super::MultiUserMiner::run) exactly — same MSP
//! set, same question count (the differential tests in `tests/service.rs`
//! enforce this).
//!
//! ## Durability
//!
//! A service started with [`start_with_persistence`]
//! (OassisService::start_with_persistence) appends one [`WalRecord`] per
//! state change — a committed crowd answer, an admission, a budget spend,
//! a close — to a [`Persistence`] log, and periodically compacts it into
//! a snapshot. [`recover`](OassisService::recover) /
//! [`recover_with`](OassisService::recover_with) replay the log on
//! startup: the cross-query [`AnswerStore`] is rebuilt in full, and every
//! session that was admitted but had not closed comes back as a
//! re-admittable [`RecoveredSession`] — [`resume`](OassisService::resume)
//! re-admits it, re-seeding it from the recovered answers so only the
//! questions whose answers were lost in flight are asked again. The crash
//! oracle in `oassis-simtest` sweeps exactly this contract: kill at any
//! log index, recover, and the final valid-MSP sets (and, for disjoint
//! rosters, the per-query crowd-question totals) match the uninterrupted
//! run.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use oassis_crowd::{AnswerStore, FixedSampleAggregator, MemberId};
use oassis_obs::{names, EventSink, SinkExt};
use oassis_ql::Query;
use oassis_store_durable::{
    shared, AdmitSpec, CloseStatus, FileBacked, SharedPersistence, WalRecord,
};
use oassis_vocab::FactSet;

use crate::config::EngineConfig;
use crate::runtime::{AskPayload, AskValue, Pool, QuestionId, SessionRuntime};
use crate::space::{AssignSpace, SpaceCache};

use super::session::{
    Answer, CrowdView, MiningSession, PendingQuestion, QuestionPayload, SessionEvent,
};
use super::single::Oassis;
use super::{Handle, OassisError, QueryAnswer, QueryResult};

/// Service-assigned identifier of an admitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Mined to completion (or the crowd had nothing more to give).
    Completed,
    /// Cancelled via [`OassisService::cancel`]; the result holds whatever
    /// was classified up to that point.
    Cancelled,
    /// The per-session crowd-question budget ran out; partial result.
    BudgetExhausted,
}

/// An admission request for [`OassisService::submit`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// OASSIS-QL query source.
    pub query: String,
    /// Support threshold override; defaults to the query's own
    /// `WITH SUPPORT` value.
    pub threshold: Option<f64>,
    /// Engine configuration for this session (seed, aggregator sample,
    /// question ratios, ...).
    pub config: EngineConfig,
    /// Pool seat indices this session may ask. `None` = the whole crowd.
    pub roster: Option<Vec<usize>>,
    /// Scheduling priority: higher goes first within a cycle; equal
    /// priorities rotate round-robin across cycles.
    pub priority: u8,
    /// Cap on *crowd* dispatches for this session (store-served and
    /// cache-served questions are free). `None` = unlimited.
    pub budget: Option<usize>,
}

impl SessionSpec {
    /// A spec with default config, full roster, priority 0 and no budget.
    #[deprecated(note = "use the fluent `SessionSpec::builder(query)` instead")]
    pub fn new(query: impl Into<String>) -> Self {
        Self::base(query)
    }

    fn base(query: impl Into<String>) -> Self {
        SessionSpec {
            query: query.into(),
            threshold: None,
            config: EngineConfig::default(),
            roster: None,
            priority: 0,
            budget: None,
        }
    }

    /// Fluent construction, mirroring [`EngineConfig::builder`]:
    ///
    /// ```
    /// use oassis_core::{EngineConfig, SessionSpec};
    ///
    /// let spec = SessionSpec::builder("SELECT FACT-SETS WHERE ...")
    ///     .threshold(0.4)
    ///     .roster(vec![0, 1, 2])
    ///     .priority(5)
    ///     .budget(200)
    ///     .config(EngineConfig::builder().seed(7).build())
    ///     .build();
    /// assert_eq!(spec.priority, 5);
    /// ```
    pub fn builder(query: impl Into<String>) -> SessionSpecBuilder {
        SessionSpecBuilder {
            spec: Self::base(query),
        }
    }

    /// The durable/wire shape of this spec: the scalar subset that an
    /// `Admit` WAL record (and the `oassis-net` `Submit` frame) carries.
    /// `token` is the client idempotency token, if any.
    pub fn to_admit(&self, token: Option<u64>) -> AdmitSpec {
        AdmitSpec {
            query: self.query.clone(),
            threshold: self.threshold,
            roster: self.roster.clone(),
            priority: self.priority,
            budget: self.budget.map(|b| b as u64),
            seed: self.config.seed,
            aggregator_sample: self.config.aggregator_sample,
            specialization_ratio: self.config.specialization_ratio,
            pruning_ratio: self.config.pruning_ratio,
            max_questions: self.config.max_questions,
            top_k: self.config.top_k,
            use_indexes: self.config.use_indexes,
            token,
        }
    }

    /// Rebuild a spec from its durable/wire shape. Only the scalar config
    /// subset survives the trip; runtime-only config (sink, clock, curve
    /// tracking) is defaulted.
    pub fn from_admit(admit: AdmitSpec) -> SessionSpec {
        let mut config = EngineConfig::builder()
            .seed(admit.seed)
            .aggregator_sample(admit.aggregator_sample)
            .specialization_ratio(admit.specialization_ratio)
            .pruning_ratio(admit.pruning_ratio)
            .max_questions(admit.max_questions)
            .use_indexes(admit.use_indexes);
        if let Some(k) = admit.top_k {
            config = config.top_k(k);
        }
        SessionSpec {
            query: admit.query,
            threshold: admit.threshold,
            config: config.build(),
            roster: admit.roster,
            priority: admit.priority,
            budget: admit.budget.map(|b| b as usize),
        }
    }
}

/// Fluent builder for [`SessionSpec`] — see [`SessionSpec::builder`].
#[derive(Debug, Clone)]
pub struct SessionSpecBuilder {
    spec: SessionSpec,
}

impl SessionSpecBuilder {
    /// Override the query's own `WITH SUPPORT` threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.spec.threshold = Some(threshold);
        self
    }

    /// Engine configuration for the session.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Restrict the session to these pool seats.
    pub fn roster(mut self, seats: Vec<usize>) -> Self {
        self.spec.roster = Some(seats);
        self
    }

    /// Scheduling priority (higher goes first within a cycle).
    pub fn priority(mut self, priority: u8) -> Self {
        self.spec.priority = priority;
        self
    }

    /// Cap on crowd dispatches for the session.
    pub fn budget(mut self, budget: usize) -> Self {
        self.spec.budget = Some(budget);
        self
    }

    /// Finish building.
    pub fn build(self) -> SessionSpec {
        self.spec
    }
}

/// The outcome of one admitted session, returned by
/// [`OassisService::run`] in admission order.
#[derive(Debug)]
pub struct SessionReport {
    /// The session's id (as returned by [`OassisService::submit`]).
    pub id: SessionId,
    /// How the session ended.
    pub status: SessionStatus,
    /// The finalized query result (SELECT-form post-processing applied).
    pub result: QueryResult,
    /// Questions actually dispatched to the crowd for this session.
    pub crowd_questions: usize,
    /// Concrete questions served from the cross-query [`AnswerStore`]
    /// at dispatch time.
    pub store_hits: usize,
}

/// A question handed to the pool whose answer has not come back yet.
struct InFlight {
    /// The session-local question id to `absorb` with.
    session_q: QuestionId,
    /// The pool-side question id to match in `take_completed`.
    pool_q: QuestionId,
    /// The pool seat the question went to.
    pool_idx: usize,
    /// For concrete questions: what to log into the [`AnswerStore`] when
    /// the answer arrives.
    concrete: Option<(FactSet, MemberId)>,
}

/// One admitted session plus its scheduling state.
struct SessionSlot {
    id: SessionId,
    session: MiningSession<'static>,
    query: Query,
    space: Arc<AssignSpace>,
    /// Pool seat index per session seat (session seat `i` asks pool seat
    /// `roster[i]`).
    roster: Vec<usize>,
    priority: u8,
    budget: Option<usize>,
    crowd_questions: usize,
    store_hits: usize,
    in_flight: Option<InFlight>,
    /// Whether this session may participate in question waves: only
    /// sessions whose question mix is fully predictable (no RNG-driven
    /// specialization/pruning questions) can be speculated for.
    wave_eligible: bool,
    /// The pool seat this session's staged question is stalled on (busy
    /// with someone else's question). Wave staging never speculates onto
    /// a claimed seat, so a stalled session acquires it as soon as the
    /// current occupant drains — the starvation bound survives waves.
    stall_claim: Option<usize>,
    /// Pool seats this session last staged prefetches onto. Kept so wave
    /// top-up costs O(wave) — drained seats are retired by re-checking
    /// just these, never by scanning the (possibly 100k-member) roster.
    wave_seats: Vec<usize>,
    /// Whether this session's prediction inputs changed since the last
    /// staging attempt (an answer absorbed, a turn taken). Staging also
    /// re-runs when one of `wave_seats` drains; otherwise a repeat
    /// attempt would walk the assignment space only to re-derive the
    /// same (already staged or empty) candidates, and with a thousand
    /// sessions those no-op walks dwarf the crowd work being hidden.
    wave_dirty: bool,
    cancel_requested: bool,
    finished: Option<SessionStatus>,
    result: Option<QueryResult>,
    /// MSP answers confirmed since the last [`OassisService::take_partials`]
    /// call — the stream a networked front-end forwards to its client as
    /// the session mines.
    partials: Vec<QueryAnswer>,
    /// The `Admit` record as appended to the WAL (durable services only);
    /// re-embedded into snapshots while the session is live so a recovery
    /// from the compacted log can still resume it.
    admit_record: Option<WalRecord>,
}

/// An interrupted session reconstructed from the durability log by
/// [`OassisService::recover`]: admitted before the crash, never closed.
/// Pass it to [`OassisService::resume`] to re-admit it — the new session
/// is seeded from the recovered [`AnswerStore`], so it re-asks only the
/// questions whose answers were lost in flight.
#[derive(Debug, Clone)]
pub struct RecoveredSession {
    /// The session's id in the interrupted run (the resumption gets a
    /// fresh id; the log links them).
    pub original: SessionId,
    /// The re-admittable spec, rebuilt from the `Admit` record. The
    /// budget is the *original* grant; [`OassisService::resume`] deducts
    /// [`spent`](Self::spent). Runtime-only config (sink, clock, curve
    /// tracking) is reset to defaults — adjust before resuming if needed.
    pub spec: SessionSpec,
    /// Crowd questions the interrupted run already dispatched (from the
    /// last `Budget` watermark; includes any question that was in flight
    /// when the process died, so budget accounting stays conservative).
    pub spent: usize,
    /// The client idempotency token the interrupted admission carried, if
    /// any; the resumption re-admits under the same token.
    pub token: Option<u64>,
}

/// The durable outcome of a session that closed *before* a crash,
/// reconstructed from its `Close` WAL record by
/// [`OassisService::recover`]. A client resuming such a session is
/// answered from this — its report was final; nothing needs re-mining.
#[derive(Debug, Clone)]
pub struct ClosedOutcome {
    /// How the session ended.
    pub status: SessionStatus,
    /// Crowd dispatches it paid for.
    pub crowd_questions: usize,
    /// Its final rendered valid MSPs.
    pub msps: Vec<String>,
}

/// A session's view of the shared pool, restricted to its roster.
///
/// `gone` *blocks* (via [`Pool::sync`]) until the seat's member is home:
/// a seat busy with another session's question is waited out, never
/// mistaken for an exhausted member — that would end the waiting session's
/// round with false "no progress" and truncate its results.
struct PoolView<'p> {
    pool: &'p mut Pool,
    roster: &'p [usize],
}

impl CrowdView for PoolView<'_> {
    fn gone(&mut self, seat: usize) -> bool {
        let idx = self.roster[seat];
        self.pool.sync(idx);
        self.pool.excluded(idx)
    }

    fn willing(&mut self, seat: usize) -> bool {
        self.pool
            .member(self.roster[seat])
            .is_some_and(|m| m.willing())
    }

    fn can_answer(&mut self, seat: usize, fs: &FactSet) -> bool {
        self.pool
            .member(self.roster[seat])
            .is_some_and(|m| m.can_answer(fs))
    }
}

/// The multi-query OASSIS service: one crowd, many concurrent mining
/// sessions, cross-query answer reuse.
///
/// ```no_run
/// use oassis_core::{OassisService, SessionSpec, SessionRuntime};
/// use oassis_core::Oassis;
/// use oassis_store::ontology::figure1_ontology;
/// # let members = Vec::new();
///
/// let mut service = OassisService::start(
///     Oassis::new(figure1_ontology()),
///     SessionRuntime::new(members),
/// );
/// let q = "SELECT FACT-SETS WHERE $y subClassOf* Activity \
///          SATISFYING $y doAt <Central Park> WITH SUPPORT = 0.4";
/// service.submit(SessionSpec::builder(q).build()).unwrap();
/// service.submit(SessionSpec::builder(q).priority(5).build()).unwrap();
/// for report in service.run() {
///     println!("session {:?}: {} answers", report.id, report.result.answers.len());
/// }
/// ```
pub struct OassisService {
    engine: Oassis,
    pool: Pool,
    store: AnswerStore,
    sink: Arc<dyn EventSink>,
    slots: Vec<SessionSlot>,
    next_id: u64,
    cycle: u64,
    /// Per-session in-flight question target (1 = classic one-at-a-time
    /// dispatch; above 1 enables speculative question waves).
    wave_size: usize,
    /// Refcounted union of every live slot's `stall_claim`, so wave
    /// staging checks "is this seat claimed?" in O(1) instead of scanning
    /// all slots per staged seat. Counted because overlapping rosters let
    /// two sessions stall on the same seat.
    wave_claims: HashMap<usize, u32>,
    /// Durability log shared with the answer store (`None` = volatile).
    persistence: Option<SharedPersistence>,
    /// Interrupted sessions recovered from the log and not yet resumed,
    /// keyed by original id — [`resume_by_id`](Self::resume_by_id) serves
    /// a client's `Resume(session-id)` from here.
    recoverable: BTreeMap<u64, RecoveredSession>,
    /// Final outcomes of closed sessions, keyed by id — both those whose
    /// `Close` record predates a crash and those closed by this
    /// incarnation (with every superseded ancestor id aliased to the same
    /// outcome). A `Resume` of any of them is answered from here, never
    /// re-mined, and compaction re-emits them as `Close` records so the
    /// answer survives snapshots.
    recovered_closed: BTreeMap<u64, ClosedOutcome>,
    /// Resumption links (original id → successor id), so a retransmitted
    /// `Resume` lands on the successor instead of failing.
    superseded: BTreeMap<u64, u64>,
    /// Client idempotency tokens → the latest session id admitted under
    /// each, rebuilt from `Admit` records on recovery.
    tokens: BTreeMap<u64, u64>,
}

/// Snapshot interval (appended records) used by
/// [`OassisService::recover`]'s default file-backed persistence.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

impl OassisService {
    /// Start a service over `runtime`'s crowd with a fresh answer store
    /// and the engine's default (null) sink.
    pub fn start(engine: Oassis, runtime: SessionRuntime) -> Self {
        Self::start_with_sink(engine, runtime, oassis_obs::null_sink())
    }

    /// Start a service reporting `service.*` events to `sink`.
    pub fn start_with_sink(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        let vocab = Arc::new(engine.ontology().vocabulary().clone());
        let pool = Pool::start(runtime, vocab, Arc::clone(&sink));
        OassisService {
            engine,
            pool,
            store: AnswerStore::new().with_sink(Arc::clone(&sink)),
            sink,
            slots: Vec::new(),
            next_id: 0,
            cycle: 0,
            wave_size: 1,
            wave_claims: HashMap::new(),
            persistence: None,
            recoverable: BTreeMap::new(),
            recovered_closed: BTreeMap::new(),
            superseded: BTreeMap::new(),
            tokens: BTreeMap::new(),
        }
    }

    /// Set the per-session wave size (clamped to ≥ 1): how many questions
    /// each session keeps in flight per cycle — one committed dispatch
    /// plus up to `n - 1` speculative prefetches fanned out across the
    /// pool's shards. 1 (the default) restores strict one-at-a-time
    /// dispatch. See the module docs for the determinism contract.
    pub fn set_wave_size(&mut self, n: usize) {
        self.wave_size = n.max(1);
    }

    /// Builder-style [`set_wave_size`](Self::set_wave_size).
    pub fn with_wave_size(mut self, n: usize) -> Self {
        self.set_wave_size(n);
        self
    }

    /// The configured wave size.
    pub fn wave_size(&self) -> usize {
        self.wave_size
    }

    /// Start a *durable* service: every committed crowd answer, session
    /// admission, budget spend and session close is appended to
    /// `persistence`, and the log is compacted into snapshots at the
    /// persistence's configured interval. Use
    /// [`recover_with`](Self::recover_with) on the same persistence after
    /// a restart.
    pub fn start_with_persistence(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
        persistence: SharedPersistence,
    ) -> Self {
        let mut service = Self::start_with_sink(engine, runtime, sink);
        service.store = AnswerStore::new()
            .with_sink(Arc::clone(&service.sink))
            .with_persistence(Arc::clone(&persistence));
        service.persistence = Some(persistence);
        service
    }

    /// Recover a durable service from the file-backed log under `dir`
    /// (see [`FileBacked`]): load the latest snapshot, replay the WAL
    /// tail, rebuild the answer store, and return the service plus every
    /// interrupted session as a re-admittable [`RecoveredSession`] (in
    /// admission order) — [`resume`](Self::resume) each to continue it.
    /// Opening a fresh directory yields an empty durable service, so this
    /// is also the normal way to *start* a file-backed service.
    pub fn recover(
        engine: Oassis,
        runtime: SessionRuntime,
        dir: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<RecoveredSession>), OassisError> {
        let file = FileBacked::open(dir)?.with_snapshot_every(DEFAULT_SNAPSHOT_EVERY);
        Self::recover_with(engine, runtime, oassis_obs::null_sink(), shared(file))
    }

    /// [`recover`](Self::recover) over any [`Persistence`] (and sink):
    /// replays `persistence` into a fresh service. The persistence stays
    /// attached — the recovered service keeps appending to the same log.
    pub fn recover_with(
        engine: Oassis,
        runtime: SessionRuntime,
        sink: Arc<dyn EventSink>,
        persistence: SharedPersistence,
    ) -> Result<(Self, Vec<RecoveredSession>), OassisError> {
        let records = persistence
            .lock()
            .expect("persistence poisoned")
            .replay()?;
        let mut service = Self::start_with_sink(engine, runtime, sink);

        // Rebuild the answer store from the log *before* attaching the
        // persistence, so replay does not re-append what is already there.
        let store = AnswerStore::new().with_sink(Arc::clone(&service.sink));
        store.replay_records(&records);
        service.store = store.with_persistence(Arc::clone(&persistence));
        service.persistence = Some(persistence);

        // Fold session lifecycles: admitted, budget watermark, closed,
        // superseded by a later resumption.
        #[derive(Default)]
        struct Lifecycle {
            spec: Option<AdmitSpec>,
            spent: u64,
            closed: Option<ClosedOutcome>,
            superseded: bool,
        }
        let mut sessions: BTreeMap<u64, Lifecycle> = BTreeMap::new();
        for record in &records {
            match record {
                WalRecord::Admit {
                    session,
                    resumes,
                    spec,
                } => {
                    if let Some(old) = resumes {
                        sessions.entry(*old).or_default().superseded = true;
                        service.superseded.insert(*old, *session);
                    }
                    if let Some(token) = spec.token {
                        service.tokens.insert(token, *session);
                    }
                    sessions.entry(*session).or_default().spec = Some(spec.clone());
                }
                WalRecord::Budget { session, spent } => {
                    sessions.entry(*session).or_default().spent = *spent;
                }
                WalRecord::Close {
                    session,
                    status,
                    crowd_questions,
                    msps,
                } => {
                    sessions.entry(*session).or_default().closed = Some(ClosedOutcome {
                        status: match status {
                            CloseStatus::Completed => SessionStatus::Completed,
                            CloseStatus::Cancelled => SessionStatus::Cancelled,
                            CloseStatus::BudgetExhausted => SessionStatus::BudgetExhausted,
                        },
                        crowd_questions: *crowd_questions as usize,
                        msps: msps.clone(),
                    });
                }
                WalRecord::Answer { .. } => {}
            }
        }
        service.next_id = sessions.keys().next_back().map_or(0, |id| id + 1);
        let recovered: Vec<RecoveredSession> = sessions
            .into_iter()
            .filter_map(|(id, l)| match (l.closed, l.superseded) {
                (Some(outcome), _) => {
                    service.recovered_closed.insert(id, outcome);
                    None
                }
                (None, true) => None,
                (None, false) => l.spec.map(|admit| RecoveredSession {
                    original: SessionId(id),
                    token: admit.token,
                    spec: SessionSpec::from_admit(admit),
                    spent: l.spent as usize,
                }),
            })
            .collect();
        for session in &recovered {
            service
                .recoverable
                .insert(session.original.0, session.clone());
        }
        Ok((service, recovered))
    }

    /// Re-admit an interrupted session recovered by
    /// [`recover`](Self::recover). The resumption gets a fresh id, is
    /// seeded from the recovered answer store (so paid-for answers are
    /// not re-asked), has any already-spent budget deducted, and is
    /// logged as superseding the original — a second crash recovers the
    /// resumption, not both.
    pub fn resume(&mut self, recovered: RecoveredSession) -> Result<SessionId, OassisError> {
        let RecoveredSession {
            original,
            mut spec,
            spent,
            token,
        } = recovered;
        spec.budget = spec.budget.map(|b| b.saturating_sub(spent));
        self.admit(spec, Some(original), token)
    }

    /// [`resume`](Self::resume) by the interrupted session's id — how a
    /// networked client resumes after a server restart. Idempotent across
    /// retransmits: a live or finished session id returns itself, an
    /// already-resumed id returns its successor, an unresumed recovered id
    /// is re-admitted. Sessions that closed before the crash are *not*
    /// resumable (their outcome is final — see
    /// [`recovered_closed`](Self::recovered_closed)); unknown ids error.
    pub fn resume_by_id(&mut self, original: SessionId) -> Result<SessionId, OassisError> {
        if self.slots.iter().any(|s| s.id == original) {
            return Ok(original);
        }
        if let Some(&successor) = self.superseded.get(&original.0) {
            return Ok(SessionId(successor));
        }
        match self.recoverable.remove(&original.0) {
            Some(recovered) => self.resume(recovered),
            None => Err(OassisError::Session(format!(
                "session {} is not resumable (unknown, or closed before the crash)",
                original.0
            ))),
        }
    }

    /// The latest session admitted under client idempotency token `token`
    /// (live, recoverable, or closed) — how the networked front-end dedupes
    /// a retransmitted `Submit` across reconnects and restarts.
    pub fn session_for_token(&self, token: u64) -> Option<SessionId> {
        self.tokens.get(&token).map(|&id| SessionId(id))
    }

    /// The durable outcome of a session that closed before the last crash,
    /// if `id` is one (reconstructed from its `Close` WAL record).
    pub fn recovered_closed(&self, id: SessionId) -> Option<&ClosedOutcome> {
        self.recovered_closed.get(&id.0)
    }

    /// Whether `id` is an interrupted session awaiting
    /// [`resume_by_id`](Self::resume_by_id).
    pub fn is_recoverable(&self, id: SessionId) -> bool {
        self.recoverable.contains_key(&id.0)
    }

    /// Number of crowd seats in the shared pool.
    pub fn crowd_len(&self) -> usize {
        self.pool.len()
    }

    /// The cross-query answer store (e.g. for persistence via
    /// [`AnswerStore::export_text`]).
    pub fn store(&self) -> &AnswerStore {
        &self.store
    }

    /// Number of admitted, not-yet-reported sessions.
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.finished.is_none()).count()
    }

    /// Admit a session: parse the query, build its space, seed its cache
    /// from the answer store. The session does no crowd work until
    /// [`run`](Self::run).
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId, OassisError> {
        self.admit(spec, None, None)
    }

    /// [`submit`](Self::submit) with a client idempotency token: the token
    /// is written into the durable `Admit` record, so a retransmitted
    /// `Submit` — on a new connection, or after a server crash — maps back
    /// to this admission via [`session_for_token`](Self::session_for_token)
    /// instead of admitting a duplicate.
    pub fn submit_with_token(
        &mut self,
        spec: SessionSpec,
        token: u64,
    ) -> Result<SessionId, OassisError> {
        self.admit(spec, None, Some(token))
    }

    /// The shared admission path behind [`submit`](Self::submit) and
    /// [`resume`](Self::resume); `resumes` carries the superseded
    /// session's id into the durable `Admit` record, `token` the client's
    /// idempotency token.
    fn admit(
        &mut self,
        spec: SessionSpec,
        resumes: Option<SessionId>,
        token: Option<u64>,
    ) -> Result<SessionId, OassisError> {
        // Capture the durable shape of the spec before its pieces are
        // moved out below (only when a log is attached).
        let admit_spec = self.persistence.as_ref().map(|_| spec.to_admit(token));
        let query = self.engine.parse(&spec.query)?;
        let threshold = spec.threshold.unwrap_or(query.satisfying.support);
        // Waves predict concrete questions only; a session that may draw
        // RNG-driven specialization/pruning questions cannot be speculated
        // for without diverging from the one-at-a-time path.
        let wave_eligible =
            spec.config.specialization_ratio == 0.0 && spec.config.pruning_ratio == 0.0;
        let config = Arc::new(spec.config);
        let space = Arc::new(self.engine.space(&query, &config)?);
        let scache = if config.use_indexes {
            Arc::new(SpaceCache::with_capacity(
                config.space_cache_capacity,
                Arc::clone(&config.sink),
            ))
        } else {
            Arc::new(SpaceCache::disabled())
        };
        let roster = match spec.roster {
            Some(roster) => {
                for &idx in &roster {
                    if idx >= self.pool.len() {
                        return Err(OassisError::Query(oassis_ql::QlError::Invalid(format!(
                            "roster seat {idx} out of range (crowd has {} members)",
                            self.pool.len()
                        ))));
                    }
                }
                roster
            }
            None => (0..self.pool.len()).collect(),
        };
        let member_ids: Vec<MemberId> = roster.iter().map(|&i| self.pool.member_id(i)).collect();
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let aggregator = Box::new(FixedSampleAggregator {
            sample_size: config.aggregator_sample,
        });
        let mut session = MiningSession::from_parts(
            Handle::Shared(Arc::clone(&space)),
            scache,
            threshold,
            aggregator,
            Handle::Shared(Arc::clone(&config)),
            member_ids.clone(),
            format!("multiuser.s{}", id.0),
        );
        let seeded = session.seed_answers(&self.store.seed_for(&member_ids));
        if seeded > 0 {
            self.sink
                .count_labeled(names::ANSWERSTORE_HIT, "seed", seeded as u64);
        }
        let admit_record = admit_spec.map(|admit| WalRecord::Admit {
            session: id.0,
            resumes: resumes.map(|s| s.0),
            spec: admit,
        });
        if let Some(record) = &admit_record {
            self.append_wal(record);
        }
        self.slots.push(SessionSlot {
            id,
            session,
            query,
            space,
            roster,
            priority: spec.priority,
            budget: spec.budget,
            crowd_questions: 0,
            store_hits: 0,
            in_flight: None,
            wave_eligible,
            stall_claim: None,
            wave_seats: Vec::new(),
            wave_dirty: true,
            cancel_requested: false,
            finished: None,
            result: None,
            partials: Vec::new(),
            admit_record,
        });
        if let Some(token) = token {
            self.tokens.insert(token, id.0);
        }
        // Record the resumption link immediately (not only on WAL replay):
        // a client that loses its connection right after resuming retries
        // `Resume(original)` and must land on the successor.
        if let Some(original) = resumes {
            self.superseded.insert(original.0, id.0);
        }
        self.sink.gauge(
            names::SERVICE_SESSIONS_ACTIVE,
            self.active_sessions() as f64,
        );
        self.maybe_snapshot();
        Ok(id)
    }

    /// Request cancellation of `id`. Takes effect at the session's next
    /// scheduling slot (after any in-flight answer is routed back); its
    /// report carries [`SessionStatus::Cancelled`] and the partial result.
    /// Returns whether the session exists and was still live.
    pub fn cancel(&mut self, id: SessionId) -> bool {
        match self
            .slots
            .iter_mut()
            .find(|s| s.id == id && s.finished.is_none())
        {
            Some(slot) => {
                slot.cancel_requested = true;
                true
            }
            None => false,
        }
    }

    /// Drive every admitted session to an end state and return their
    /// reports in admission order. Each scheduling cycle visits live
    /// sessions in priority order (ties rotate round-robin) and gives each
    /// at most one crowd dispatch; store-served answers and question-free
    /// turns are processed inline.
    pub fn run(&mut self) -> Vec<SessionReport> {
        while self.run_cycle() {}
        self.slots
            .drain(..)
            .map(|slot| SessionReport {
                id: slot.id,
                status: slot.finished.expect("loop exits only when all finished"),
                result: slot.result.expect("finalized with its status"),
                crowd_questions: slot.crowd_questions,
                store_hits: slot.store_hits,
            })
            .collect()
    }

    /// Drive **one** scheduling cycle and return whether any session is
    /// still live (i.e. another cycle would make progress). This is the
    /// incremental form of [`run`](Self::run), for drivers that interleave
    /// mining with other work — the `oassis-net` server pumps one cycle
    /// between protocol reads, streaming
    /// [`take_partials`](Self::take_partials) and serving
    /// [`take_report`](Self::take_report) as sessions finish.
    pub fn run_cycle(&mut self) -> bool {
        if self.active_sessions() == 0 {
            return false;
        }
        self.route_completed();
        let order = self.cycle_order();
        let mut any_inflight = false;
        for i in order {
            self.route_completed();
            if self.slots[i].finished.is_some() {
                continue;
            }
            if self.slots[i].cancel_requested && self.slots[i].in_flight.is_none() {
                self.finalize_slot(i, SessionStatus::Cancelled);
                continue;
            }
            if self.slots[i].in_flight.is_some() {
                // Waiting on the crowd; top the wave back up and
                // revisit once the answer lands.
                self.stage_wave(i);
                any_inflight = true;
                continue;
            }
            if self.pump_slot(i) {
                // Pumping advanced the session's state machine, so
                // its predictions may have changed.
                self.slots[i].wave_dirty = true;
                self.stage_wave(i);
                any_inflight = true;
            }
        }
        // Every live session is either finished or waiting on the
        // crowd: block for one answer so the next cycle can progress.
        if any_inflight && self.pool.pump_one() {
            self.route_completed();
        }
        self.cycle += 1;
        self.maybe_snapshot();
        self.active_sessions() > 0
    }

    /// MSP answers confirmed for `id` since the last call — the stream a
    /// networked front-end forwards to its client as the session mines.
    /// Empty for unknown (or already-reported) sessions.
    pub fn take_partials(&mut self, id: SessionId) -> Vec<QueryAnswer> {
        match self.slots.iter_mut().find(|s| s.id == id) {
            Some(slot) => std::mem::take(&mut slot.partials),
            None => Vec::new(),
        }
    }

    /// The end state of `id`: `None` while it is still mining (or unknown,
    /// or its report was already taken).
    pub fn session_status(&self, id: SessionId) -> Option<SessionStatus> {
        self.slots.iter().find(|s| s.id == id).and_then(|s| s.finished)
    }

    /// Whether `id` currently holds a slot (live, or finished with its
    /// report not yet taken).
    pub fn is_admitted(&self, id: SessionId) -> bool {
        self.slots.iter().any(|s| s.id == id)
    }

    /// `(crowd_questions, store_hits)` so far for an admitted session.
    pub fn session_progress(&self, id: SessionId) -> Option<(usize, usize)> {
        self.slots
            .iter()
            .find(|s| s.id == id)
            .map(|s| (s.crowd_questions, s.store_hits))
    }

    /// Remove a *finished* session's slot and return its report — `None`
    /// while it is still live (or unknown, or already taken).
    /// [`run`](Self::run) drains reports in admission order; a networked
    /// front-end takes them per session as clients poll.
    pub fn take_report(&mut self, id: SessionId) -> Option<SessionReport> {
        let i = self
            .slots
            .iter()
            .position(|s| s.id == id && s.finished.is_some())?;
        let slot = self.slots.remove(i);
        Some(SessionReport {
            id: slot.id,
            status: slot.finished.expect("filtered on finished"),
            result: slot.result.expect("finalized with its status"),
            crowd_questions: slot.crowd_questions,
            store_hits: slot.store_hits,
        })
    }

    /// Live slot indices for this cycle: priority descending, equal
    /// priorities rotated by cycle number for round-robin fairness.
    fn cycle_order(&self) -> Vec<usize> {
        let mut live: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].finished.is_none())
            .collect();
        live.sort_by_key(|&i| std::cmp::Reverse(self.slots[i].priority));
        let rot = self.cycle as usize;
        let mut ordered = Vec::with_capacity(live.len());
        let mut j = 0;
        while j < live.len() {
            let p = self.slots[live[j]].priority;
            let mut k = j;
            while k < live.len() && self.slots[live[k]].priority == p {
                k += 1;
            }
            let group = &live[j..k];
            for t in 0..group.len() {
                ordered.push(group[(t + rot) % group.len()]);
            }
            j = k;
        }
        ordered
    }

    /// Advance slot `i` until it finishes, dispatches one crowd question,
    /// or exhausts its budget. Returns whether it now has a question in
    /// flight.
    fn pump_slot(&mut self, i: usize) -> bool {
        loop {
            let event = {
                let Self { pool, slots, .. } = self;
                let SessionSlot {
                    session, roster, ..
                } = &mut slots[i];
                let mut view = PoolView { pool, roster };
                session.poll(&mut view)
            };
            match event {
                SessionEvent::Finished => {
                    self.finalize_slot(i, SessionStatus::Completed);
                    return false;
                }
                SessionEvent::TurnEnded { .. } => {
                    // Buffer freshly confirmed MSPs for streaming delivery
                    // ([`take_partials`](Self::take_partials)); the final
                    // report still carries the complete result.
                    let fresh = self.slots[i].session.take_new_answers();
                    self.slots[i].partials.extend(fresh);
                }
                SessionEvent::Ask(q) => {
                    // `gone()`'s sync may have absorbed other sessions'
                    // answers while this one was polling.
                    self.route_completed();
                    match self.handle_ask(i, q) {
                        AskFlow::Served => {}
                        AskFlow::Dispatched => return true,
                        AskFlow::Stalled => return true,
                        AskFlow::Finished => return false,
                    }
                }
            }
        }
    }

    /// Record slot `i` stalling on pool seat `idx` (see
    /// [`SessionSlot::stall_claim`]).
    fn claim_seat(&mut self, i: usize, idx: usize) {
        self.release_claim(i);
        self.slots[i].stall_claim = Some(idx);
        *self.wave_claims.entry(idx).or_insert(0) += 1;
    }

    /// Drop slot `i`'s stall claim, if any.
    fn release_claim(&mut self, i: usize) {
        if let Some(idx) = self.slots[i].stall_claim.take() {
            if let Some(n) = self.wave_claims.get_mut(&idx) {
                *n -= 1;
                if *n == 0 {
                    self.wave_claims.remove(&idx);
                }
            }
        }
    }

    /// Top up slot `i`'s question wave: while the session has fewer than
    /// `wave_size` questions outstanding (its committed dispatch plus
    /// speculative prefetches on its roster seats), predict its next
    /// concrete questions and dispatch them speculatively. Seats claimed
    /// by a stalled committed question are never speculated onto — the
    /// stalled session gets the seat as soon as its occupant drains, so
    /// waves cannot starve committed work.
    fn stage_wave(&mut self, i: usize) {
        let wave_size = self.wave_size;
        if wave_size <= 1
            || !self.slots[i].wave_eligible
            || self.slots[i].finished.is_some()
            || self.slots[i].cancel_requested
        {
            return;
        }
        let Self {
            pool,
            slots,
            sink,
            wave_claims,
            ..
        } = self;
        let slot = &mut slots[i];
        // Retire drained prefetches by re-checking only the seats we
        // staged — O(wave), independent of roster size. A seat another
        // session re-speculated onto stays counted as ours; that only
        // under-stages, never over-fills the wave.
        let staged_before = slot.wave_seats.len();
        slot.wave_seats.retain(|&idx| pool.pending_speculative(idx));
        let drained = slot.wave_seats.len() != staged_before;
        if !slot.wave_dirty && !drained {
            return;
        }
        let mut outstanding = usize::from(slot.in_flight.is_some()) + slot.wave_seats.len();
        if outstanding >= wave_size {
            return;
        }
        slot.wave_dirty = false;
        // Unlike the single-session runtime, the service never publishes a
        // classification border to the pool: its sessions mine different
        // query spaces, and workers would test one session's border against
        // another's prefetch targets. Staleness is bounded instead by
        // `predict_questions` filtering against both caches at stage time;
        // the leftovers are counted as wasted speculation.
        //
        // Only the seats the session's round-robin scheduler visits next
        // are predicted for — a prediction costs a walk of the assignment
        // space, and on 100k-member rosters predicting for every seat per
        // cycle would dwarf the crowd work being hidden.
        for seat in slot.session.upcoming_seats(wave_size) {
            if outstanding >= wave_size {
                break;
            }
            let idx = slot.roster[seat];
            if wave_claims.contains_key(&idx) || !pool.can_speculate(idx) {
                continue;
            }
            let candidates = match pool.member(idx).filter(|m| m.willing()) {
                Some(member) => slot.session.predict_questions(seat, pool.shared(), member),
                None => continue,
            };
            if candidates.is_empty() {
                // Predictions are nearly member-independent; once one seat
                // has nothing left to prefetch the rest of the rotation
                // won't either — stop paying for space walks this cycle.
                break;
            }
            let staged = candidates.len() as u64;
            pool.speculate(idx, candidates);
            slot.wave_seats.push(idx);
            sink.count_labeled(names::WAVE_STAGED, &format!("s{}", slot.id.0), staged);
            outstanding += 1;
        }
    }

    /// Resolve one staged question: serve from the store, absorb an
    /// exclusion, serve a wave-prefetched answer, or dispatch to the
    /// crowd.
    fn handle_ask(&mut self, i: usize, q: PendingQuestion) -> AskFlow {
        let pool_idx = self.slots[i].roster[q.seat];
        self.release_claim(i);
        // Dispatch-time reuse: a concrete question another query already
        // answered is served from the store without any crowd traffic.
        if let QuestionPayload::Concrete { factset, .. } = &q.payload {
            if let Some(s) = self.store.lookup(factset, q.member) {
                self.slots[i].store_hits += 1;
                self.slots[i].session.absorb(q.id, Answer::Support(s));
                return AskFlow::Served;
            }
        }
        if self.pool.excluded(pool_idx) {
            self.slots[i].session.absorb(q.id, Answer::Unavailable);
            return AskFlow::Served;
        }
        if let Some(b) = self.slots[i].budget {
            if self.slots[i].crowd_questions >= b {
                self.finalize_slot(i, SessionStatus::BudgetExhausted);
                return AskFlow::Finished;
            }
        }
        // Wave reuse: a prefetch already paid the crowd for this answer.
        // Account it exactly like a dispatch + immediate response — the
        // budget check above, the question count, the spend watermark and
        // the dispatched/resolved events all match the one-at-a-time
        // path, which is the wave determinism contract.
        if let QuestionPayload::Concrete { factset, .. } = &q.payload {
            if let Some(s) = self.pool.shared().lookup(factset, q.member) {
                let slot = &mut self.slots[i];
                slot.crowd_questions += 1;
                let session = slot.id.0;
                let spend_mark = slot.budget.map(|_| slot.crowd_questions as u64);
                self.pool.note_speculation_hit();
                self.store.record_tagged(factset, q.member, s, Some(session));
                let label = format!("s{session}");
                self.sink
                    .count_labeled(names::SERVICE_QUESTION_DISPATCHED, &label, 1);
                self.sink
                    .count_labeled(names::SERVICE_QUESTION_RESOLVED, &label, 1);
                self.sink.count_labeled(names::WAVE_HIT, &label, 1);
                if let Some(spent) = spend_mark {
                    self.append_wal(&WalRecord::Budget { session, spent });
                }
                self.slots[i].session.absorb(q.id, Answer::Support(s));
                return AskFlow::Served;
            }
        }
        let payload = match &q.payload {
            QuestionPayload::Concrete {
                assignment,
                factset,
            } => AskPayload::Concrete {
                assignment: assignment.clone(),
                factset: factset.clone(),
            },
            QuestionPayload::Specialization { base, candidates } => AskPayload::Specialization {
                base: base.clone(),
                candidates: candidates.clone(),
            },
            QuestionPayload::Pruning { factset } => AskPayload::Pruning {
                factset: factset.clone(),
            },
        };
        match self.pool.dispatch_committed(pool_idx, payload) {
            None => {
                // The seat is busy with another question; the staged
                // question is re-offered next cycle. Claim the seat so
                // wave staging cannot re-occupy it, and make the waste
                // visible.
                self.claim_seat(i, pool_idx);
                self.sink.count_labeled(
                    names::SERVICE_DISPATCH_STALLED,
                    &format!("s{}", self.slots[i].id.0),
                    1,
                );
                AskFlow::Stalled
            }
            Some(pool_q) => {
                let concrete = match &q.payload {
                    QuestionPayload::Concrete { factset, .. } => {
                        Some((factset.clone(), q.member))
                    }
                    _ => None,
                };
                let slot = &mut self.slots[i];
                slot.in_flight = Some(InFlight {
                    session_q: q.id,
                    pool_q,
                    pool_idx,
                    concrete,
                });
                slot.crowd_questions += 1;
                let session = slot.id.0;
                // Budgeted sessions log a spend watermark per dispatch, so
                // recovery deducts everything paid for (or lost in flight).
                let spend_mark = slot.budget.map(|_| slot.crowd_questions as u64);
                self.sink.count_labeled(
                    names::SERVICE_QUESTION_DISPATCHED,
                    &format!("s{session}"),
                    1,
                );
                if let Some(spent) = spend_mark {
                    self.append_wal(&WalRecord::Budget { session, spent });
                }
                AskFlow::Dispatched
            }
        }
    }

    /// Route every buffered pool answer to the session that asked it.
    fn route_completed(&mut self) {
        for (pool_q, pool_idx, value) in self.pool.take_completed() {
            let Some(i) = self.slots.iter().position(|s| {
                s.in_flight
                    .as_ref()
                    .is_some_and(|f| f.pool_q == pool_q && f.pool_idx == pool_idx)
            }) else {
                // A response for a question whose session already ended
                // (e.g. cancelled mid-flight after exclusion); drop it.
                continue;
            };
            let inflight = self.slots[i].in_flight.take().expect("matched just above");
            let answer = match value {
                None => Answer::Unavailable,
                Some(AskValue::Support(s)) => Answer::Support(s),
                Some(AskValue::Choice(c)) => Answer::Choice(c),
                Some(AskValue::Irrelevant(elems)) => Answer::Irrelevant(elems),
                // Prefetch answers drain into the shared cache, never the
                // completed buffer; one here is a stray — treat it as lost.
                Some(AskValue::Prefetched(_)) => Answer::Unavailable,
            };
            if let (Some((fs, member)), Answer::Support(s)) = (&inflight.concrete, &answer) {
                // Log committed concrete answers immediately so sessions
                // later in the same cycle can already reuse them. The
                // durable record is attributed to the paying session.
                self.store
                    .record_tagged(fs, *member, *s, Some(self.slots[i].id.0));
            }
            self.sink.count_labeled(
                names::SERVICE_QUESTION_RESOLVED,
                &format!("s{}", self.slots[i].id.0),
                1,
            );
            self.slots[i].session.absorb(inflight.session_q, answer);
            self.slots[i].wave_dirty = true;
        }
    }

    /// End slot `i` with `status`: close its session, absorb its answers
    /// into the store, finalize the result for the query's SELECT form.
    fn finalize_slot(&mut self, i: usize, status: SessionStatus) {
        self.release_claim(i);
        let fresh = self.slots[i].session.take_new_answers();
        self.slots[i].partials.extend(fresh);
        let (result, cache) = self.slots[i].session.finish();
        self.store.absorb_cache(&cache);
        let result = self
            .engine
            .finalize(result, &self.slots[i].query, &self.slots[i].space);
        // The durable Close record carries the final valid MSPs (sorted for
        // a canonical encoding), so a post-crash `Resume` of this session
        // is answered from the log without re-mining.
        let mut msps: Vec<String> = result
            .answers
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.rendered.clone())
            .collect();
        msps.sort();
        self.slots[i].result = Some(result);
        self.slots[i].finished = Some(status);
        let outcome = ClosedOutcome {
            status,
            crowd_questions: self.slots[i].crowd_questions,
            msps,
        };
        if self.persistence.is_some() {
            self.append_wal(&WalRecord::Close {
                session: self.slots[i].id.0,
                status: close_status(status),
                crowd_questions: outcome.crowd_questions as u64,
                msps: outcome.msps.clone(),
            });
        }
        // Remember the final outcome under this id *and* every superseded
        // ancestor id, so a post-restart `Resume` by any id in the
        // resumption chain is answered from here even after compaction
        // drops the chain's `Admit` records.
        let mut chain = vec![self.slots[i].id.0];
        let mut grew = true;
        while grew {
            grew = false;
            for (&original, &successor) in &self.superseded {
                if chain.contains(&successor) && !chain.contains(&original) {
                    chain.push(original);
                    grew = true;
                }
            }
        }
        for id in chain {
            self.recovered_closed.insert(id, outcome.clone());
        }
        self.sink.gauge(
            names::SERVICE_SESSIONS_ACTIVE,
            self.active_sessions() as f64,
        );
    }

    /// Append one record to the durability log (no-op when volatile).
    fn append_wal(&self, record: &WalRecord) {
        if let Some(p) = &self.persistence {
            p.lock()
                .expect("persistence poisoned")
                .append(record)
                .expect("wal append failed");
        }
    }

    /// Compact the log into a snapshot when the tail has outgrown the
    /// persistence's interval. The compacted sequence reproduces the full
    /// live state: the answer store in canonical order, a `Close` per
    /// closed session (a post-restart `Resume` is answered from that
    /// outcome — dropping it would make the outcome unrecoverable), then
    /// an `Admit` (+ latest `Budget` watermark) per live session.
    fn maybe_snapshot(&mut self) {
        let Some(p) = &self.persistence else {
            return;
        };
        if !p.lock().expect("persistence poisoned").wants_snapshot() {
            return;
        }
        let mut compacted = self.store.to_records();
        for (id, outcome) in &self.recovered_closed {
            compacted.push(WalRecord::Close {
                session: *id,
                status: close_status(outcome.status),
                crowd_questions: outcome.crowd_questions as u64,
                msps: outcome.msps.clone(),
            });
        }
        for slot in &self.slots {
            if slot.finished.is_some() {
                continue;
            }
            if let Some(admit) = &slot.admit_record {
                compacted.push(admit.clone());
                if slot.budget.is_some() && slot.crowd_questions > 0 {
                    compacted.push(WalRecord::Budget {
                        session: slot.id.0,
                        spent: slot.crowd_questions as u64,
                    });
                }
            }
        }
        p.lock()
            .expect("persistence poisoned")
            .snapshot(&compacted)
            .expect("snapshot failed");
    }
}

/// The durable encoding of a terminal [`SessionStatus`].
fn close_status(status: SessionStatus) -> CloseStatus {
    match status {
        SessionStatus::Completed => CloseStatus::Completed,
        SessionStatus::Cancelled => CloseStatus::Cancelled,
        SessionStatus::BudgetExhausted => CloseStatus::BudgetExhausted,
    }
}

/// What `handle_ask` did with a staged question.
enum AskFlow {
    /// Answered inline (store hit or exclusion); keep pumping the session.
    Served,
    /// Dispatched to the crowd; the session waits for the answer.
    Dispatched,
    /// The seat was busy; the question stays staged for the next cycle.
    Stalled,
    /// The slot was finalized (budget exhausted).
    Finished,
}
