//! The pull-based mining session (the §4.2 algorithm as a state machine).
//!
//! [`MiningSession`] holds the *entire* multi-user mining state — the
//! per-member descent sessions, the overall classification border, the
//! per-run [`CrowdCache`], the statistics recorder and the question-type
//! RNG — but owns **no crowd access**. Instead of calling members, it
//! *stages* at most one [`PendingQuestion`] at a time and suspends; the
//! driver (the single-query [`MultiUserMiner`](super::MultiUserMiner), the
//! multi-query [`OassisService`](super::OassisService), or a test harness)
//! obtains the answer however it likes and resumes the session with
//! [`absorb`](MiningSession::absorb).
//!
//! The protocol, as a state machine:
//!
//! ```text
//!            poll()                    poll()
//!   Idle ───────────────► Asking ◄──────────────┐ (staged question is
//!     ▲    SessionEvent::Ask(q)                 │  re-offered until
//!     │                     │ absorb(q.id, ans) │  absorbed)
//!     │                     ▼                   │
//!     │                  applying ──────────────┘  may re-stage (a pruning
//!     │                     │                      answer flows into the
//!     │     poll() ⇒        ▼                      concrete question)
//!     └──────── SessionEvent::TurnEnded{seat}
//!                           │
//!                           ▼ (all seats exhausted, question budget spent,
//!                  SessionEvent::Finished   or top-k reached)
//! ```
//!
//! One *turn* is one scheduling step of the original commit loop: the seat
//! either advances question-free (cursor moves, MSP confirmations) or asks
//! at most one pruning interaction followed by at most one concrete /
//! specialization question. Seats take turns round-robin, exactly like the
//! paper's sequential emulation — which is what keeps a pulled session
//! bit-identical to the legacy push loop (the differential tests in
//! `tests/service.rs` enforce this).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use oassis_crowd::{
    Aggregator, CrowdCache, CrowdMember, Decision, MemberId, SharedCrowdCache,
};
use oassis_obs::{names, Event, EventKind, EventSink, SinkExt};
use oassis_vocab::{ElementId, FactSet, Vocabulary};

use crate::assignment::Assignment;
use crate::border::{ClassificationState, Status};
use crate::config::EngineConfig;
use crate::runtime::QuestionId;
use crate::space::{AssignSpace, SpaceCache};
use crate::stats::{QuestionKind, Recorder};
use crate::value::AValue;

use super::{Handle, QueryAnswer, QueryResult, NODES_TOTAL_CAP};

/// How far ahead [`MiningSession::predict_questions`] simulates
/// question-free transitions (cursor moves into significant successors,
/// MSP confirmations) before giving up on finding the member's next
/// concrete question.
const PREDICT_HORIZON: usize = 64;

/// How many candidate questions a single speculative dispatch carries. The
/// batch is answered in one simulated round-trip (a multi-question form), so
/// a wider slate raises the prefetch hit rate without extra latency; answers
/// beyond the first are kept in the shared cache for later turns.
pub(crate) const PREFETCH_WIDTH: usize = 8;

/// What the session needs to know about the crowd *without* asking it:
/// seat liveness and question routability. Implemented by the engine's
/// crowd links and by the service's pool view; a bare member slice also
/// implements it for tests and embedders driving a session by hand.
pub trait CrowdView {
    /// Whether the seat is permanently gone (the runtime excluded the
    /// member). Implementations may block here to drain the seat's
    /// in-flight work first.
    fn gone(&mut self, seat: usize) -> bool;

    /// Whether the member currently accepts questions at all.
    fn willing(&mut self, seat: usize) -> bool;

    /// Whether the member can answer a question about `fs`.
    fn can_answer(&mut self, seat: usize, fs: &FactSet) -> bool;
}

impl CrowdView for [Box<dyn CrowdMember>] {
    fn gone(&mut self, _seat: usize) -> bool {
        false
    }

    fn willing(&mut self, seat: usize) -> bool {
        self[seat].willing()
    }

    fn can_answer(&mut self, seat: usize, fs: &FactSet) -> bool {
        self[seat].can_answer(fs)
    }
}

/// A question the session wants answered before it can take the staging
/// seat's next scheduling step.
#[derive(Debug, Clone)]
pub struct PendingQuestion {
    /// Session-local question id; echo it back to
    /// [`MiningSession::absorb`].
    pub id: QuestionId,
    /// The seat (session-local member index) the question belongs to.
    pub seat: usize,
    /// The member that should answer.
    pub member: MemberId,
    /// What to ask.
    pub payload: QuestionPayload,
}

/// The crowd-facing content of a [`PendingQuestion`].
#[derive(Debug, Clone)]
pub enum QuestionPayload {
    /// "Do you do `factset`, and how often?" — answer with
    /// [`Answer::Support`].
    Concrete {
        /// The assignment being asked about.
        assignment: Assignment,
        /// Its instantiated fact-set.
        factset: FactSet,
    },
    /// "When you do `base`, which of these do you also do?" — answer with
    /// [`Answer::Choice`].
    Specialization {
        /// The already-significant base pattern.
        base: FactSet,
        /// Candidate specializations, in scheduling order.
        candidates: Vec<FactSet>,
    },
    /// "Is anything here irrelevant to you?" (user-guided pruning) —
    /// answer with [`Answer::Irrelevant`].
    Pruning {
        /// The fact-set whose elements are offered for pruning.
        factset: FactSet,
    },
}

/// The driver's answer to a [`PendingQuestion`].
#[derive(Debug, Clone)]
pub enum Answer {
    /// Support value for a [`QuestionPayload::Concrete`] question.
    Support(f64),
    /// Choice for a [`QuestionPayload::Specialization`] question:
    /// `Some((candidate index, support))` or `None` for "none of these".
    Choice(Option<(usize, f64)>),
    /// Elements declared irrelevant for a [`QuestionPayload::Pruning`]
    /// interaction (may be empty).
    Irrelevant(Vec<ElementId>),
    /// The member could not be reached (the runtime excluded it). The
    /// seat is retired; mining continues with the remaining seats.
    Unavailable,
}

/// What [`MiningSession::poll`] observed.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// The session needs this question answered ([`MiningSession::absorb`])
    /// before it can continue. Re-polling without absorbing re-offers the
    /// same question.
    Ask(PendingQuestion),
    /// One seat's scheduling turn completed; newly confirmed MSPs (if any)
    /// are waiting in [`MiningSession::take_new_answers`].
    TurnEnded {
        /// The seat whose turn ended.
        seat: usize,
    },
    /// The run is over; call [`MiningSession::finish`].
    Finished,
}

/// The continuation for a staged question — what to do with its answer.
#[derive(Debug)]
enum Pending {
    /// A pruning interaction for `phi`; its answer flows into the concrete
    /// question about `phi` (which may resolve from the cache instead).
    Pruning {
        /// The assignment the follow-up concrete question targets.
        phi: Assignment,
    },
    /// A concrete question about `phi`.
    Concrete {
        /// The assignment asked about.
        phi: Assignment,
    },
    /// A specialization question below the cursor.
    Specialization {
        /// The base pattern (for statistics labeling).
        base: FactSet,
        /// The candidate assignments, aligned with the payload's
        /// `candidates` fact-sets.
        askable: Vec<Assignment>,
    },
}

/// Control flow of one scheduling step.
enum StepFlow {
    /// A question was staged; the driver must answer it.
    Asked,
    /// The step completed without crowd input; the payload is the
    /// "progressed" verdict of the legacy loop.
    Done(bool),
}

/// One member's descent state (Section 4.2's per-user outer loop).
struct SeatState {
    /// The member seated here.
    id: MemberId,
    /// Current descend position (an overall- and member-positive node).
    cursor: Option<Assignment>,
    /// This member's own classification knowledge. Their "No" answers stop
    /// only their *descent* (§4.2 modification 4); the outer loop may still
    /// ask them about any unclassified assignment.
    personal: ClassificationState,
    /// Values the member declared irrelevant (user-guided pruning): these
    /// genuinely imply support 0, so covered questions are auto-answered.
    pruned: ClassificationState,
    /// Set when the member has nothing left to contribute.
    exhausted: bool,
}

impl SeatState {
    fn new(id: MemberId, use_indexes: bool) -> Self {
        let state = if use_indexes {
            ClassificationState::new
        } else {
            ClassificationState::unindexed
        };
        SeatState {
            id,
            cursor: None,
            personal: state(),
            pruned: state(),
            exhausted: false,
        }
    }
}

/// The pull-based multi-user mining state machine. See the module docs for
/// the protocol; see [`MultiUserMiner`](super::MultiUserMiner) for the
/// batteries-included driver.
pub struct MiningSession<'a> {
    space: Handle<'a, AssignSpace>,
    /// Interned memo over `space`'s derivations; pass-through when
    /// [`EngineConfig::use_indexes`] is off.
    scache: Arc<SpaceCache>,
    threshold: f64,
    aggregator: Box<dyn Aggregator + 'a>,
    config: Handle<'a, EngineConfig>,
    sink: Arc<dyn EventSink>,
    vocab: Arc<Vocabulary>,
    seats: Vec<SeatState>,
    overall: ClassificationState,
    crowd: CrowdCache,
    recorder: Recorder,
    rng: SmallRng,
    msps: Vec<Assignment>,
    confirmed: HashSet<Assignment>,
    generated: HashSet<Assignment>,
    /// How many of `msps` have been rendered into `fresh` already.
    delivered: usize,
    valid_confirmed: usize,
    /// Rendered-but-not-yet-collected MSP answers (see
    /// [`take_new_answers`](Self::take_new_answers)).
    fresh: Vec<QueryAnswer>,
    /// Round-robin position within `seats`.
    seat_cursor: usize,
    /// Whether any seat progressed in the current round (the legacy
    /// loop's fixpoint test).
    progressed: bool,
    /// The question currently offered to the driver, if any.
    staged: Option<PendingQuestion>,
    /// The continuation for `staged`.
    pending: Option<Pending>,
    /// A completed turn waiting to be reported on the next poll.
    turn_done: Option<usize>,
    next_qid: u64,
    done: bool,
    /// `engine.run` span bookkeeping (the session outlives any borrowed
    /// `Span` guard, so enter/exit are emitted manually).
    span_start: Option<Instant>,
}

impl<'a> MiningSession<'a> {
    /// Create a session over borrowed space and config, seating `seats`
    /// members, with the paper's fixed-sample aggregation rule.
    pub fn new(
        space: &'a AssignSpace,
        threshold: f64,
        config: &'a EngineConfig,
        seats: Vec<MemberId>,
    ) -> Self {
        let scache = if config.use_indexes {
            Arc::new(SpaceCache::with_capacity(
                config.space_cache_capacity,
                Arc::clone(&config.sink),
            ))
        } else {
            Arc::new(SpaceCache::disabled())
        };
        let aggregator = Box::new(oassis_crowd::FixedSampleAggregator {
            sample_size: config.aggregator_sample,
        });
        Self::from_parts(
            Handle::Borrowed(space),
            scache,
            threshold,
            aggregator,
            Handle::Borrowed(config),
            seats,
            "multiuser".to_string(),
        )
    }

    /// Assemble a session from externally owned parts. `algo` labels this
    /// session's `algo.questions` counter (the service appends the session
    /// id, e.g. `"multiuser.s3"`).
    pub(crate) fn from_parts(
        space: Handle<'a, AssignSpace>,
        scache: Arc<SpaceCache>,
        threshold: f64,
        aggregator: Box<dyn Aggregator + 'a>,
        config: Handle<'a, EngineConfig>,
        seats: Vec<MemberId>,
        algo: String,
    ) -> Self {
        let sink = Arc::clone(&config.sink);
        let span_start = if sink.enabled() {
            sink.emit(&Event {
                name: names::SPAN_RUN,
                kind: EventKind::SpanEnter,
                label: None,
            });
            Some(Instant::now())
        } else {
            None
        };
        if sink.enabled() {
            // The full DAG size turns the lazy generator's node counter into
            // the paper's "<1% of nodes generated" ratio. Counting requires
            // an exhaustive traversal, so only do it for an attached sink
            // and give up on astronomically large spaces.
            if let Some(total) = space.count_nodes_up_to(NODES_TOTAL_CAP) {
                sink.gauge(names::DAG_NODES_TOTAL, total as f64);
            }
        }
        let vocab = Arc::new(space.ontology().vocabulary().clone());
        let crowd = CrowdCache::new().with_sink(Arc::clone(&sink));
        let overall = if config.use_indexes {
            ClassificationState::new()
        } else {
            ClassificationState::unindexed()
        };
        let mut recorder = Recorder::new()
            .with_sink(Arc::clone(&sink))
            .with_algo(algo);
        if config.track_curve {
            recorder = recorder.with_curve();
        }
        if let Some(u) = &config.curve_universe {
            recorder = recorder.with_universe(u.clone());
        }
        if let Some(t) = &config.targets {
            recorder = recorder.with_targets(t.clone());
        }
        let rng = SmallRng::seed_from_u64(config.seed);
        let use_indexes = config.use_indexes;
        MiningSession {
            space,
            scache,
            threshold,
            aggregator,
            config,
            sink,
            vocab,
            seats: seats
                .into_iter()
                .map(|id| SeatState::new(id, use_indexes))
                .collect(),
            overall,
            crowd,
            recorder,
            rng,
            msps: Vec::new(),
            confirmed: HashSet::new(),
            generated: HashSet::new(),
            delivered: 0,
            valid_confirmed: 0,
            fresh: Vec::new(),
            seat_cursor: 0,
            progressed: false,
            staged: None,
            pending: None,
            turn_done: None,
            next_qid: 0,
            done: false,
            span_start,
        }
    }

    /// Advance the state machine by at most one externally visible event.
    /// With a question staged, re-offers it; with a turn pending, reports
    /// it; otherwise runs scheduling steps until a question must be asked,
    /// a turn ends, or the run finishes.
    pub fn poll(&mut self, view: &mut dyn CrowdView) -> SessionEvent {
        if self.done {
            return SessionEvent::Finished;
        }
        if let Some(q) = &self.staged {
            return SessionEvent::Ask(q.clone());
        }
        if let Some(seat) = self.turn_done.take() {
            return self.end_turn(seat);
        }
        self.advance(view)
    }

    /// The questions the session needs answered right now — `[q]` while a
    /// question is staged, `[]` once the run has finished. Question-free
    /// turns are stepped through internally.
    pub fn next_questions(&mut self, view: &mut dyn CrowdView) -> Vec<PendingQuestion> {
        loop {
            match self.poll(view) {
                SessionEvent::Ask(q) => return vec![q],
                SessionEvent::TurnEnded { .. } => continue,
                SessionEvent::Finished => return Vec::new(),
            }
        }
    }

    /// Resume the session with the answer to the staged question `id`.
    ///
    /// # Panics
    ///
    /// If no question is staged, `id` is not the staged question, or the
    /// answer kind does not match the question kind.
    pub fn absorb(&mut self, id: QuestionId, answer: Answer) {
        let staged = self
            .staged
            .take()
            .expect("absorb called with no staged question");
        assert_eq!(staged.id, id, "absorb answered a different question");
        let pending = self
            .pending
            .take()
            .expect("a staged question always has a continuation");
        let seat = staged.seat;
        let vocab = Arc::clone(&self.vocab);
        match (pending, answer) {
            (_, Answer::Unavailable) => {
                // The runtime excluded the member mid-question.
                self.seats[seat].exhausted = true;
                self.turn_done = Some(seat);
            }
            (Pending::Pruning { phi }, Answer::Irrelevant(elems)) => {
                if !elems.is_empty() {
                    let fs = FactSet::clone(&self.scache.instantiate(&self.space, &phi));
                    self.recorder.on_question(QuestionKind::Pruning, &fs);
                    for e in elems {
                        self.seats[seat].pruned.mark_pruned(AValue::Elem(e));
                    }
                }
                // The pruning interaction precedes the concrete question
                // about the same assignment; continue into it.
                match self.ask_or_resolve(seat, phi) {
                    StepFlow::Asked => {}
                    StepFlow::Done(_) => self.turn_done = Some(seat),
                }
            }
            (Pending::Concrete { phi }, Answer::Support(s)) => {
                self.complete_concrete(seat, phi, s);
                self.turn_done = Some(seat);
            }
            (Pending::Specialization { base, askable }, Answer::Choice(choice)) => {
                match choice {
                    Some((chosen, s)) => {
                        self.recorder.on_question(QuestionKind::Specialization, &base);
                        let phi = askable[chosen].clone();
                        let positive = self.record_answer(seat, &phi, s);
                        self.recorder.on_state_change(&self.overall, &vocab);
                        if positive {
                            self.seats[seat].cursor = Some(phi);
                        }
                    }
                    None => {
                        self.recorder.on_question(QuestionKind::NoneOfThese, &base);
                        for c in &askable {
                            self.record_answer(seat, c, 0.0);
                        }
                        self.recorder.on_state_change(&self.overall, &vocab);
                    }
                }
                self.turn_done = Some(seat);
            }
            (pending, answer) => panic!(
                "answer kind does not match the staged question: {pending:?} vs {answer:?}"
            ),
        }
    }

    /// Run scheduling steps until something externally visible happens.
    fn advance(&mut self, view: &mut dyn CrowdView) -> SessionEvent {
        loop {
            if self.recorder.stats.total_questions >= self.config.max_questions {
                return self.finish_run();
            }
            if self.seat_cursor >= self.seats.len() {
                if !self.progressed {
                    return self.finish_run();
                }
                self.seat_cursor = 0;
                self.progressed = false;
                continue;
            }
            let seat = self.seat_cursor;
            // `gone` may block to bring the member home (absorbing its
            // in-flight speculative answer) before its committed turn.
            if view.gone(seat) {
                if !self.seats[seat].exhausted {
                    self.seats[seat].exhausted = true;
                    self.progressed = true;
                }
                self.seat_cursor += 1;
                continue;
            }
            if self.seats[seat].exhausted || !view.willing(seat) {
                self.seat_cursor += 1;
                continue;
            }
            match self.step_begin(view, seat) {
                StepFlow::Asked => {
                    let q = self.staged.clone().expect("stage() set the question");
                    return SessionEvent::Ask(q);
                }
                StepFlow::Done(progress) => {
                    if progress {
                        self.progressed = true;
                    }
                    return self.end_turn(seat);
                }
            }
        }
    }

    /// Close out `seat`'s turn: render newly confirmed MSPs, check top-k,
    /// move the round-robin cursor.
    fn end_turn(&mut self, seat: usize) -> SessionEvent {
        while self.delivered < self.msps.len() {
            let next = self.msps[self.delivered].clone();
            let answers = self.render_answers(std::slice::from_ref(&next));
            for a in answers {
                if a.valid {
                    self.valid_confirmed += 1;
                }
                self.fresh.push(a);
            }
            self.delivered += 1;
        }
        if let Some(k) = self.config.top_k {
            if self.valid_confirmed >= k {
                return self.finish_run();
            }
        }
        self.seat_cursor += 1;
        SessionEvent::TurnEnded { seat }
    }

    fn finish_run(&mut self) -> SessionEvent {
        self.done = true;
        SessionEvent::Finished
    }

    /// One scheduling step for `seat`, up to (but not through) its first
    /// crowd question.
    fn step_begin(&mut self, view: &mut dyn CrowdView, seat: usize) -> StepFlow {
        let vocab = Arc::clone(&self.vocab);

        if self.seats[seat].cursor.is_none() {
            // Outer loop: find a minimal overall-unclassified assignment
            // this member can still help with.
            let found = self.find_askable(view, seat);
            let Some(phi) = found else {
                self.seats[seat].exhausted = true;
                return StepFlow::Done(false);
            };
            return self.begin_ask(seat, phi);
        }

        let phi = self.seats[seat].cursor.clone().expect("checked above");
        let succs = self.scache.successors(&self.space, &phi);
        let fresh = succs
            .iter()
            .filter(|s| self.generated.insert((*s).clone()))
            .count();
        self.recorder.on_nodes_generated(fresh);

        // Move freely into an overall-significant successor.
        if let Some(s) = succs
            .iter()
            .find(|s| self.overall.status(s, &vocab) == Status::Significant)
        {
            self.seats[seat].cursor = Some(s.clone());
            return StepFlow::Done(true);
        }

        // Candidate successors: overall-unclassified, not ruled out for this
        // member personally.
        let member_id = self.seats[seat].id;
        let candidates: Vec<Assignment> = succs
            .iter()
            .filter(|s| self.overall.status(s, &vocab) == Status::Unclassified)
            .filter(|s| self.seats[seat].personal.status(s, &vocab) != Status::Insignificant)
            .cloned()
            .collect();
        let askable: Vec<Assignment> = candidates
            .iter()
            .filter(|s| {
                let fs = self.scache.instantiate(&self.space, s);
                !self.crowd.has_answer_from(&fs, member_id) && view.can_answer(seat, &fs)
            })
            .cloned()
            .collect();

        if askable.is_empty() {
            // Inner loop over: MSP confirmation (modification 5 of §4.2).
            let is_msp = self.overall.status(&phi, &vocab) == Status::Significant
                && succs
                    .iter()
                    .all(|s| self.overall.status(s, &vocab) != Status::Significant);
            if is_msp && self.confirmed.insert(phi.clone()) {
                self.msps.push(phi.clone());
                self.recorder.on_msp(self.scache.is_valid(&self.space, &phi));
            }
            self.seats[seat].cursor = None;
            return StepFlow::Done(true);
        }

        // Specialization question, with the configured probability.
        if self.config.specialization_ratio > 0.0
            && self.rng.random::<f64>() < self.config.specialization_ratio
        {
            let base_fs = FactSet::clone(&self.scache.instantiate(&self.space, &phi));
            let cand_fs: Vec<FactSet> = askable
                .iter()
                .map(|c| FactSet::clone(&self.scache.instantiate(&self.space, c)))
                .collect();
            return self.stage(
                seat,
                Pending::Specialization {
                    base: base_fs.clone(),
                    askable,
                },
                QuestionPayload::Specialization {
                    base: base_fs,
                    candidates: cand_fs,
                },
            );
        }

        // Concrete question about the first askable successor.
        let target = askable[0].clone();
        self.begin_ask(seat, target)
    }

    /// Begin asking `seat` about `phi`: a pruning interaction first (with
    /// the configured probability), then the concrete question.
    fn begin_ask(&mut self, seat: usize, phi: Assignment) -> StepFlow {
        // User-guided pruning: the member's single click is the answer when
        // the question involves a value irrelevant to them (Section 6.2).
        if self.config.pruning_ratio > 0.0 && self.rng.random::<f64>() < self.config.pruning_ratio
        {
            let fs = FactSet::clone(&self.scache.instantiate(&self.space, &phi));
            return self.stage(
                seat,
                Pending::Pruning { phi },
                QuestionPayload::Pruning { factset: fs },
            );
        }
        self.ask_or_resolve(seat, phi)
    }

    /// The concrete question about `phi`: auto-answered when covered by the
    /// member's own pruning, served from the cache when already answered,
    /// staged for the driver otherwise.
    fn ask_or_resolve(&mut self, seat: usize, phi: Assignment) -> StepFlow {
        let vocab = Arc::clone(&self.vocab);
        let member_id = self.seats[seat].id;
        if self.seats[seat].pruned.status(&phi, &vocab) == Status::Insignificant {
            // Covered by the member's own pruning: inferred support 0 at no
            // question cost (Section 6.2).
            self.complete_concrete(seat, phi, 0.0);
            return StepFlow::Done(true);
        }
        let fs = FactSet::clone(&self.scache.instantiate(&self.space, &phi));
        if let Some(s) = self.crowd.cached_answer(&fs, member_id) {
            self.complete_concrete(seat, phi, s);
            return StepFlow::Done(true);
        }
        self.recorder.on_question(QuestionKind::Concrete, &fs);
        self.stage(
            seat,
            Pending::Concrete { phi: phi.clone() },
            QuestionPayload::Concrete {
                assignment: phi,
                factset: fs,
            },
        )
    }

    /// Stage a question for the driver. Every question-bearing path of the
    /// legacy loop counted as progress, so staging does too.
    fn stage(&mut self, seat: usize, pending: Pending, payload: QuestionPayload) -> StepFlow {
        self.next_qid += 1;
        self.staged = Some(PendingQuestion {
            id: QuestionId(self.next_qid),
            seat,
            member: self.seats[seat].id,
            payload,
        });
        self.pending = Some(pending);
        self.progressed = true;
        StepFlow::Asked
    }

    /// Apply a concrete answer: record, aggregate, and descend on a
    /// member-positive verdict.
    fn complete_concrete(&mut self, seat: usize, phi: Assignment, s: f64) {
        let vocab = Arc::clone(&self.vocab);
        let positive = self.record_answer(seat, &phi, s);
        self.recorder.on_state_change(&self.overall, &vocab);
        if positive {
            self.seats[seat].cursor = Some(phi);
        }
    }

    /// Record `s` as the seat's answer for `phi`, update the member's
    /// personal state, run the aggregator and update the overall state.
    /// Returns the member-positive verdict.
    fn record_answer(&mut self, seat: usize, phi: &Assignment, s: f64) -> bool {
        let vocab = Arc::clone(&self.vocab);
        let fs = FactSet::clone(&self.scache.instantiate(&self.space, phi));
        self.crowd.record(&fs, self.seats[seat].id, s);
        if s >= self.threshold {
            self.seats[seat].personal.mark_significant(phi, &vocab);
        } else {
            self.seats[seat].personal.mark_insignificant(phi, &vocab);
        }
        let supports = self.crowd.supports(&fs);
        let decision = self.aggregator.decide(&supports, self.threshold);
        if decision != Decision::Undecided && self.sink.enabled() {
            // How many answers the aggregator needed before committing —
            // the crowd cost of one border update.
            self.sink
                .observe(names::CROWD_QUORUM_SIZE, supports.len() as f64);
        }
        match decision {
            Decision::Significant => {
                self.sink
                    .count_labeled(names::BORDER_UPDATED, "significant", 1);
                self.overall.mark_significant(phi, &vocab);
            }
            Decision::Insignificant => {
                self.sink
                    .count_labeled(names::BORDER_UPDATED, "insignificant", 1);
                self.overall.mark_insignificant(phi, &vocab);
            }
            Decision::Undecided => {}
        }
        let positive = s >= self.threshold && self.overall.status(phi, &vocab) != Status::Insignificant;
        if self.sink.enabled() {
            let pruned =
                self.overall.take_index_pruned() + self.seats[seat].personal.take_index_pruned();
            if pruned > 0 {
                self.sink.count(names::BORDER_INDEX_PRUNED, pruned);
            }
        }
        positive
    }

    /// Find a minimal overall-unclassified assignment that the seat's
    /// member has not yet answered (directly or through pruning).
    fn find_askable(&self, view: &mut dyn CrowdView, seat: usize) -> Option<Assignment> {
        let vocab = &self.vocab;
        let member_id = self.seats[seat].id;
        let mut askable = |a: &Assignment| {
            let fs = self.scache.instantiate(&self.space, a);
            !self.crowd.has_answer_from(&fs, member_id) && view.can_answer(seat, &fs)
        };
        let mut stack: Vec<Assignment> = Vec::new();
        let mut seen: HashSet<Assignment> = HashSet::new();
        for root in self.space.roots() {
            match self.overall.status(&root, vocab) {
                Status::Unclassified if askable(&root) => return Some(root),
                Status::Insignificant => {}
                _ => {
                    if seen.insert(root.clone()) {
                        stack.push(root);
                    }
                }
            }
        }
        while let Some(n) = stack.pop() {
            for s in self.scache.successors(&self.space, &n).iter() {
                match self.overall.status(s, vocab) {
                    Status::Unclassified if askable(s) => return Some(s.clone()),
                    Status::Insignificant => {}
                    _ => {
                        if seen.insert(s.clone()) {
                            stack.push(s.clone());
                        }
                    }
                }
            }
        }
        None
    }

    /// Like [`find_askable`](Self::find_askable) but collects up to `width`
    /// candidates in the same traversal order, descending *through* askable
    /// nodes so the slate also covers the questions that become minimal once
    /// the first picks are classified. Prediction-only: the commit loop keeps
    /// using the single-result variant.
    fn find_askable_many(
        &self,
        member: &dyn CrowdMember,
        width: usize,
    ) -> Vec<Assignment> {
        let vocab = &self.vocab;
        let askable = |a: &Assignment| {
            let fs = self.scache.instantiate(&self.space, a);
            !self.crowd.has_answer_from(&fs, member.id()) && member.can_answer(&fs)
        };
        let mut found: Vec<Assignment> = Vec::new();
        let mut stack: Vec<Assignment> = Vec::new();
        let mut seen: HashSet<Assignment> = HashSet::new();
        for root in self.space.roots() {
            if self.overall.status(&root, vocab) == Status::Unclassified && askable(&root) {
                found.push(root.clone());
                if found.len() >= width {
                    return found;
                }
            }
            if self.overall.status(&root, vocab) != Status::Insignificant
                && seen.insert(root.clone())
            {
                stack.push(root);
            }
        }
        while let Some(n) = stack.pop() {
            for s in self.scache.successors(&self.space, &n).iter() {
                if self.overall.status(s, vocab) == Status::Insignificant {
                    continue;
                }
                if self.overall.status(s, vocab) == Status::Unclassified
                    && askable(s)
                    && !found.contains(s)
                {
                    found.push(s.clone());
                    if found.len() >= width {
                        return found;
                    }
                }
                if seen.insert(s.clone()) {
                    stack.push(s.clone());
                }
            }
        }
        found
    }

    /// Predict the seat's next *concrete* questions by replaying the
    /// selection logic of [`step_begin`](Self::step_begin) read-only.
    /// Cursor moves into significant successors and MSP confirmations are
    /// question-free, so the simulation walks through them (bounded by
    /// `PREDICT_HORIZON`).
    ///
    /// Returns up to `PREFETCH_WIDTH` candidates: the question the commit
    /// loop would ask *right now*, plus the fallbacks it would move to if
    /// other members' answers classify the first picks before this member's
    /// next turn. Prefetching the whole slate keeps the hit rate high even
    /// while the border moves quickly.
    pub(crate) fn predict_questions(
        &self,
        seat: usize,
        shared: &SharedCrowdCache,
        member: &dyn CrowdMember,
    ) -> Vec<(Assignment, FactSet)> {
        let vocab = &self.vocab;
        let member_id = self.seats[seat].id;
        let fresh = |fs: &FactSet| !shared.has_answer_from(fs, member_id);
        let mut cursor = self.seats[seat].cursor.clone();
        for _ in 0..PREDICT_HORIZON {
            match cursor.take() {
                None => {
                    // Outer loop: the next questions are the first minimal
                    // overall-unclassified assignments the member can answer.
                    return self
                        .find_askable_many(member, PREFETCH_WIDTH)
                        .into_iter()
                        .map(|phi| {
                            let fs =
                                FactSet::clone(&self.scache.instantiate(&self.space, &phi));
                            (phi, fs)
                        })
                        .filter(|(_, fs)| fresh(fs))
                        .collect();
                }
                Some(phi) => {
                    let succs = self.scache.successors(&self.space, &phi);
                    if let Some(s) = succs
                        .iter()
                        .find(|s| self.overall.status(s, vocab) == Status::Significant)
                    {
                        cursor = Some(s.clone());
                        continue;
                    }
                    let targets: Vec<(Assignment, FactSet)> = succs
                        .iter()
                        .filter(|s| self.overall.status(s, vocab) == Status::Unclassified)
                        .filter(|s| {
                            self.seats[seat].personal.status(s, vocab) != Status::Insignificant
                        })
                        .filter_map(|s| {
                            let fs = self.scache.instantiate(&self.space, s);
                            (!self.crowd.has_answer_from(&fs, member_id)
                                && member.can_answer(&fs))
                            .then(|| (s.clone(), FactSet::clone(&fs)))
                        })
                        .take(PREFETCH_WIDTH)
                        .collect();
                    if targets.is_empty() {
                        // Inner loop over: MSP confirmation is question-free
                        // and resets the cursor to the outer loop.
                        cursor = None;
                        continue;
                    }
                    return targets.into_iter().filter(|(_, fs)| fresh(fs)).collect();
                }
            }
        }
        Vec::new()
    }

    /// Seed the session's [`CrowdCache`] with answers carried over from
    /// previous queries (the service's cross-query
    /// [`AnswerStore`](oassis_crowd::AnswerStore)), then eagerly classify
    /// every assignment the seeded answers already decide — exactly what an
    /// earlier run's aggregator concluded from the same answers. Answers
    /// from members not seated here are ignored; returns how many answers
    /// were absorbed. Seeding an empty slice is a no-op, which is what
    /// keeps a store-less service session bit-identical to a direct run.
    pub fn seed_answers(&mut self, answers: &[(FactSet, MemberId, f64)]) -> usize {
        let mut n = 0usize;
        for (fs, m, s) in answers {
            if self.seats.iter().any(|seat| seat.id == *m) {
                self.crowd.seed(fs, *m, *s);
                n += 1;
            }
        }
        if n > 0 {
            self.classify_from_cache();
        }
        n
    }

    /// Replay the aggregator over every cached answer set reachable in the
    /// space, marking the overall and per-seat personal states. Decisions
    /// are order-independent (each looks only at its own answer set and
    /// border marks are monotone), so this reproduces the decisions of the
    /// run(s) the answers came from.
    fn classify_from_cache(&mut self) {
        let vocab = Arc::clone(&self.vocab);
        let mut stack: Vec<Assignment> = Vec::new();
        let mut seen: HashSet<Assignment> = HashSet::new();
        for root in self.space.roots() {
            if seen.insert(root.clone()) {
                stack.push(root);
            }
        }
        while let Some(n) = stack.pop() {
            if self.overall.status(&n, &vocab) == Status::Insignificant {
                continue;
            }
            let fs = FactSet::clone(&self.scache.instantiate(&self.space, &n));
            let answers: Vec<(MemberId, f64)> = self.crowd.answers(&fs).to_vec();
            if !answers.is_empty() {
                for &(m, s) in &answers {
                    if let Some(seat) = self.seats.iter_mut().find(|seat| seat.id == m) {
                        if s >= self.threshold {
                            seat.personal.mark_significant(&n, &vocab);
                        } else {
                            seat.personal.mark_insignificant(&n, &vocab);
                        }
                    }
                }
                if self.overall.status(&n, &vocab) == Status::Unclassified {
                    let supports: Vec<f64> = answers.iter().map(|&(_, s)| s).collect();
                    let decision = self.aggregator.decide(&supports, self.threshold);
                    if decision != Decision::Undecided && self.sink.enabled() {
                        self.sink
                            .observe(names::CROWD_QUORUM_SIZE, supports.len() as f64);
                    }
                    match decision {
                        Decision::Significant => {
                            self.sink
                                .count_labeled(names::BORDER_UPDATED, "significant", 1);
                            self.overall.mark_significant(&n, &vocab);
                        }
                        Decision::Insignificant => {
                            self.sink
                                .count_labeled(names::BORDER_UPDATED, "insignificant", 1);
                            self.overall.mark_insignificant(&n, &vocab);
                            // A freshly pruned region: don't descend.
                            continue;
                        }
                        Decision::Undecided => {}
                    }
                }
            }
            for s in self.scache.successors(&self.space, &n).iter() {
                if seen.insert(s.clone()) {
                    stack.push(s.clone());
                }
            }
        }
        if self.sink.enabled() {
            let mut pruned = self.overall.take_index_pruned();
            for seat in &mut self.seats {
                pruned += seat.personal.take_index_pruned();
            }
            if pruned > 0 {
                self.sink.count(names::BORDER_INDEX_PRUNED, pruned);
            }
        }
    }

    fn render_answers(&self, msps: &[Assignment]) -> Vec<QueryAnswer> {
        msps.iter()
            .map(|a| {
                let factset = self.scache.instantiate(&self.space, a);
                let answers = self.crowd.supports(&factset);
                let support = if answers.is_empty() {
                    None
                } else {
                    Some(answers.iter().sum::<f64>() / answers.len() as f64)
                };
                QueryAnswer {
                    assignment: a.clone(),
                    factset: FactSet::clone(&factset),
                    valid: self.scache.is_valid(&self.space, a),
                    support,
                    rendered: self.vocab.factset_to_string(&factset),
                }
            })
            .collect()
    }

    /// Whether the run has finished ([`poll`](Self::poll) returned
    /// [`SessionEvent::Finished`]).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Total questions asked so far (the statistics counter backing the
    /// [`EngineConfig::max_questions`] budget).
    pub fn question_count(&self) -> usize {
        self.recorder.stats.total_questions
    }

    /// Number of member seats.
    pub fn seat_count(&self) -> usize {
        self.seats.len()
    }

    /// Drain the MSP answers confirmed since the last call (incremental
    /// delivery, in confirmation order).
    pub fn take_new_answers(&mut self) -> Vec<QueryAnswer> {
        std::mem::take(&mut self.fresh)
    }

    /// The current overall classification border (for speculation).
    pub(crate) fn overall(&self) -> &ClassificationState {
        &self.overall
    }

    pub(crate) fn seat_exhausted(&self, seat: usize) -> bool {
        self.seats[seat].exhausted
    }

    /// The next `n` seats the round-robin scheduler will visit (exhausted
    /// seats skipped), starting from the current turn's seat. The service's
    /// wave staging prefetches for exactly these seats — predicting for the
    /// whole roster would cost a space walk per seat on large crowds while
    /// only the seats about to take a turn can produce cache hits.
    pub(crate) fn upcoming_seats(&self, n: usize) -> Vec<usize> {
        let len = self.seats.len();
        if len == 0 {
            return Vec::new();
        }
        let start = self.seat_cursor.min(len - 1);
        (0..len)
            .map(|k| (start + k) % len)
            .filter(|&s| !self.seats[s].exhausted)
            .take(n)
            .collect()
    }

    /// Close the session, yielding the final result and the reusable
    /// answer cache. The final MSP set is the positive border of the
    /// overall knowledge (not just the incrementally confirmed ones).
    pub fn finish(&mut self) -> (QueryResult, CrowdCache) {
        self.done = true;
        let border_msps: Vec<Assignment> = self.overall.significant_border().to_vec();
        let answers = self.render_answers(&border_msps);
        let stats = std::mem::take(&mut self.recorder.stats);
        let cache = std::mem::take(&mut self.crowd);
        let state = std::mem::replace(
            &mut self.overall,
            if self.config.use_indexes {
                ClassificationState::new()
            } else {
                ClassificationState::unindexed()
            },
        );
        let result = QueryResult {
            answers,
            stats,
            cache: cache.clone(),
            state,
        };
        self.exit_span();
        (result, cache)
    }

    /// Emit the matching `engine.run` span exit (idempotent).
    fn exit_span(&mut self) {
        if let Some(start) = self.span_start.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.sink.emit(&Event {
                name: names::SPAN_RUN,
                kind: EventKind::SpanExit { nanos },
                label: None,
            });
        }
    }
}

impl Drop for MiningSession<'_> {
    fn drop(&mut self) {
        self.exit_span();
    }
}
