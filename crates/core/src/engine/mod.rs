//! The OASSIS engine: multi-user evaluation (Section 4.2) and the
//! system facade (Section 6.1).
//!
//! The engine is organized in four layers (see `docs/engine.md`):
//!
//! * [`session`] — the pull-based [`MiningSession`] state machine: the
//!   complete §4.2 algorithm with the crowd inverted out. A session never
//!   talks to a crowd; it *emits* [`PendingQuestion`]s and the driver
//!   feeds [`Answer`]s back via [`MiningSession::absorb`].
//! * [`multi`] — [`MultiUserMiner`], the single-query driver: it runs one
//!   session to completion over a borrowed member slice or the concurrent
//!   session runtime (with speculative prefetch).
//! * [`single`] — the [`Oassis`] system facade: parse → SPARQL → mine →
//!   answers, plus the Section 6.3 cache-replay methodology.
//! * [`service`] — [`OassisService`], the multi-query layer: many
//!   concurrent sessions multiplexed over one shared crowd, with
//!   cross-query answer reuse through an
//!   [`AnswerStore`](oassis_crowd::AnswerStore).
//!
//! Every name that used to live in the monolithic `engine` module is
//! re-exported here, so `oassis_core::engine::MultiUserMiner` (and the
//! crate-root re-exports) keep working unchanged.

pub mod multi;
pub mod service;
pub mod session;
pub mod single;

pub use multi::MultiUserMiner;
pub use service::{
    ClosedOutcome, OassisService, RecoveredSession, SessionId, SessionReport, SessionSpec,
    SessionSpecBuilder, SessionStatus,
};
pub use session::{Answer, CrowdView, MiningSession, PendingQuestion, QuestionPayload, SessionEvent};
pub use single::{replay_members, Oassis};

pub use crate::config::{EngineConfig, EngineConfigBuilder};

use std::sync::Arc;

use oassis_crowd::CrowdCache;
use oassis_ql::QlError;
use oassis_vocab::FactSet;

use crate::assignment::Assignment;
use crate::border::ClassificationState;
use crate::runtime::RuntimeError;
use crate::space::SpaceError;
use crate::stats::ExecutionStats;

/// Errors surfaced by [`Oassis::execute`] and the session runtime.
#[derive(Debug)]
pub enum OassisError {
    /// Query parsing/validation failed.
    Query(QlError),
    /// Assignment-space construction failed.
    Space(SpaceError),
    /// The concurrent session runtime failed (timeouts, poisoned workers,
    /// exhausted crowd).
    Runtime(RuntimeError),
    /// The durability layer failed (log I/O or a corrupt record) while
    /// persisting or recovering service state.
    Durability(oassis_store_durable::DurableError),
    /// A service session operation referenced a session that does not
    /// exist (or is not in the required state), e.g. resuming an unknown
    /// session id.
    Session(String),
}

impl std::fmt::Display for OassisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OassisError::Query(e) => write!(f, "{e}"),
            OassisError::Space(e) => write!(f, "{e}"),
            OassisError::Runtime(e) => write!(f, "{e}"),
            OassisError::Durability(e) => write!(f, "{e}"),
            OassisError::Session(detail) => write!(f, "session error: {detail}"),
        }
    }
}

impl std::error::Error for OassisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OassisError::Query(e) => Some(e),
            OassisError::Space(e) => Some(e),
            OassisError::Runtime(e) => Some(e),
            OassisError::Durability(e) => Some(e),
            OassisError::Session(_) => None,
        }
    }
}

impl From<QlError> for OassisError {
    fn from(e: QlError) -> Self {
        OassisError::Query(e)
    }
}

impl From<SpaceError> for OassisError {
    fn from(e: SpaceError) -> Self {
        OassisError::Space(e)
    }
}

impl From<RuntimeError> for OassisError {
    fn from(e: RuntimeError) -> Self {
        OassisError::Runtime(e)
    }
}

impl From<oassis_store_durable::DurableError> for OassisError {
    fn from(e: oassis_store_durable::DurableError) -> Self {
        OassisError::Durability(e)
    }
}

/// One answer of a query result.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The MSP assignment.
    pub assignment: Assignment,
    /// Its instantiated fact-set `φ(A_SAT)`.
    pub factset: FactSet,
    /// Whether the assignment is valid w.r.t. the query.
    pub valid: bool,
    /// The aggregated support estimate, if answers were collected for it.
    pub support: Option<f64>,
    /// Human-readable rendering (per the query's `SELECT` form).
    pub rendered: String,
}

/// The result of executing a query.
#[derive(Debug)]
pub struct QueryResult {
    /// The MSP answers (most specific significant patterns).
    pub answers: Vec<QueryAnswer>,
    /// Execution statistics.
    pub stats: ExecutionStats,
    /// All collected crowd answers (reusable for threshold replay).
    pub cache: CrowdCache,
    /// The final classification state.
    pub state: ClassificationState,
}

/// Receives each MSP answer the moment it is confirmed during a run
/// (see [`MultiUserMiner::run_with_observer`]). Any `FnMut(&QueryAnswer)`
/// closure implements it.
pub trait AnswerObserver {
    /// Called once per confirmed MSP, in confirmation order.
    fn on_answer(&mut self, answer: &QueryAnswer);
}

impl<F: FnMut(&QueryAnswer)> AnswerObserver for F {
    fn on_answer(&mut self, answer: &QueryAnswer) {
        self(answer)
    }
}

/// The no-op observer behind [`MultiUserMiner::run`].
pub(crate) struct IgnoreAnswers;

impl AnswerObserver for IgnoreAnswers {
    fn on_answer(&mut self, _answer: &QueryAnswer) {}
}

/// Give up on the `engine.dag.nodes_total` gauge beyond this many nodes:
/// the exhaustive count exists to contextualize the lazy generator's
/// savings, and past this size "huge" is all an observer needs to know.
pub const NODES_TOTAL_CAP: usize = 20_000;

/// Either a borrowed or a shared (reference-counted) handle to `T`.
///
/// [`MiningSession`] borrows its space and config when driven by the
/// single-query [`MultiUserMiner`] (which outlives the session), but the
/// multi-query [`OassisService`] admits sessions with independent
/// lifetimes, where both must be `Arc`-shared.
pub(crate) enum Handle<'a, T: ?Sized> {
    /// Borrowed from a longer-lived owner.
    Borrowed(&'a T),
    /// Shared ownership.
    Shared(Arc<T>),
}

impl<T: ?Sized> std::ops::Deref for Handle<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            Handle::Borrowed(t) => t,
            Handle::Shared(t) => t,
        }
    }
}
